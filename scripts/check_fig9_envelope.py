#!/usr/bin/env python3
"""Check that SB_METRICS=off fig9 throughput stays within the noise
envelope of the instrumented run.

The observability layer's promise is that a disabled instrument costs one
relaxed atomic load — so running the fig9 ladder with SB_METRICS=off must
land within (generous, CI-noise-sized) bounds of the default run.  A
violation means an instrument got onto a per-element path or span/trace
recording stopped honoring the enable gate.

Usage:
    check_fig9_envelope.py BENCH_on.json BENCH_off.json [--floor 0.125]

Both files are fig9_component_throughput JsonReport outputs.  For every
throughput metric the off/on median ratio must lie in [floor, 1/floor].
Exit status 1 on any violation.  stdlib only.
"""

import argparse
import json
import sys


def load_medians(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("results", []):
        if row["metric"].endswith("_kb_per_proc_per_sec"):
            out[(row["config"], row["metric"])] = row["median"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("on_json", help="fig9 report with metrics enabled")
    ap.add_argument("off_json", help="fig9 report run under SB_METRICS=off")
    ap.add_argument(
        "--floor",
        type=float,
        default=0.125,
        help="minimum allowed off/on median ratio; ceiling is its inverse "
        "(default 0.125 — single-run benches on shared CI runners are noisy, "
        "this only catches order-of-magnitude regressions)",
    )
    args = ap.parse_args()

    on = load_medians(args.on_json)
    off = load_medians(args.off_json)
    if not on or not off:
        print("error: no *_kb_per_proc_per_sec metrics found", file=sys.stderr)
        return 1
    missing = sorted(set(on) ^ set(off))
    if missing:
        print(f"error: reports disagree on configs/metrics: {missing}",
              file=sys.stderr)
        return 1

    ceiling = 1.0 / args.floor
    failures = 0
    print(f"{'config':8s} {'metric':32s} {'on':>12s} {'off':>12s} {'off/on':>8s}")
    for key in sorted(on):
        config, metric = key
        ratio = off[key] / on[key] if on[key] > 0 else float("inf")
        ok = args.floor <= ratio <= ceiling
        flag = "" if ok else "  <-- outside envelope"
        print(f"{config:8s} {metric:32s} {on[key]:12.0f} {off[key]:12.0f} "
              f"{ratio:8.2f}{flag}")
        if not ok:
            failures += 1
    if failures:
        print(f"\n{failures} metric(s) outside the [{args.floor:g}, "
              f"{ceiling:g}] envelope", file=sys.stderr)
        return 1
    print(f"\nall {len(on)} metrics within the [{args.floor:g}, {ceiling:g}] "
          "envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
