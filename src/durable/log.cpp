#include "durable/log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "ffs/crc32c.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace sb::durable {

namespace {

namespace fs = std::filesystem;

// Frame constants.  The fixed header is magic(4) kind(1) step(8)
// layout_gen(8) meta_len(4) payload_len(8) crc_head(4) = 37 bytes; the tail
// is crc_payload(4) commit(4) = 8.  crc_head covers kind..payload_len plus
// the meta bytes (everything the reader must trust before sizing the
// payload); crc_payload covers the payload alone.
constexpr std::uint32_t kMagic = 0x474C4253u;   // "SBLG" little-endian
constexpr std::uint32_t kCommit = 0x31544D43u;  // "CMT1" little-endian
constexpr std::size_t kHeadBytes = 37;
constexpr std::size_t kTailBytes = 8;
constexpr std::uint8_t kKindStep = 1;
constexpr std::uint8_t kKindAck = 2;
constexpr std::uint8_t kKindEos = 3;

void put_u32(ffs::Bytes& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(std::byte((v >> (8 * i)) & 0xFFu));
    }
}

void put_u64(ffs::Bytes& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(std::byte((v >> (8 * i)) & 0xFFu));
    }
}

std::uint32_t get_u32(std::span<const std::byte> buf, std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= std::uint32_t(std::to_integer<std::uint8_t>(buf[at + i])) << (8 * i);
    }
    return v;
}

std::uint64_t get_u64(std::span<const std::byte> buf, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= std::uint64_t(std::to_integer<std::uint8_t>(buf[at + i])) << (8 * i);
    }
    return v;
}

std::string safe_name(const std::string& stream) {
    std::string safe = stream;
    for (char& c : safe) {
        if (c == '/' || c == '\\') c = '_';
    }
    return safe;
}

std::string seg_path(const std::string& dir, const std::string& safe,
                     std::uint64_t seg) {
    return dir + "/" + safe + "." + std::to_string(seg) + ".sblog";
}

/// Segment ids present for `safe` in `dir`, ascending.
std::vector<std::uint64_t> find_segments(const std::string& dir,
                                         const std::string& safe) {
    std::vector<std::uint64_t> ids;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string fname = entry.path().filename().string();
        const std::string prefix = safe + ".";
        const std::string suffix = ".sblog";
        if (fname.size() <= prefix.size() + suffix.size()) continue;
        if (fname.compare(0, prefix.size(), prefix) != 0) continue;
        if (fname.compare(fname.size() - suffix.size(), suffix.size(), suffix) != 0)
            continue;
        const std::string mid = fname.substr(
            prefix.size(), fname.size() - prefix.size() - suffix.size());
        if (mid.empty() ||
            mid.find_first_not_of("0123456789") != std::string::npos)
            continue;
        ids.push_back(std::stoull(mid));
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

// What the scanner reconstructs (shared by Log recovery and scan_dir).
struct FrameInfo {
    std::uint64_t segment = 0;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t layout_gen = 0;
    bool bad = false;      // payload (or commit) corrupt; meta intact
    ffs::Bytes meta;       // kept only when bad (the ZeroFill material)
};

struct SegInfo {
    std::uint64_t id = 0;
    std::uint64_t bytes = 0;
    std::uint64_t max_step = 0;
    bool has_steps = false;
};

struct ScanResult {
    std::map<std::uint64_t, FrameInfo> steps;
    std::vector<SegInfo> segments;
    std::uint64_t acked = 0;
    bool complete = false;
    std::uint64_t max_layout_gen = 0;
    std::uint64_t torn_bytes = 0;
    std::uint64_t log_bytes = 0;
    std::vector<std::string> notes;
};

ffs::Bytes read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return {};
    const auto size = in.tellg();
    ffs::Bytes buf(static_cast<std::size_t>(size));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    return buf;
}

/// Validates every frame of every segment, last-wins on duplicate steps.
/// With `repair` set, a torn tail of the *last* segment is truncated back
/// to its last committed frame (the crash-recovery contract); without it
/// the tear is only reported (--recover must not mutate the log).
ScanResult scan_stream(const std::string& dir, const std::string& safe,
                       const std::vector<std::uint64_t>& seg_ids, bool repair) {
    ScanResult out;
    for (std::size_t si = 0; si < seg_ids.size(); ++si) {
        const std::uint64_t id = seg_ids[si];
        const bool last = si + 1 == seg_ids.size();
        const std::string path = seg_path(dir, safe, id);
        ffs::Bytes buf = read_file(path);
        SegInfo seg;
        seg.id = id;
        seg.bytes = buf.size();
        std::size_t off = 0;

        // Handles an unparseable region starting at `at` that runs to EOF:
        // a torn tail on the last segment (truncatable), garbage otherwise.
        const auto tail = [&](std::size_t at) {
            const std::uint64_t torn = buf.size() - at;
            if (last) {
                out.torn_bytes += torn;
                if (repair) {
                    std::error_code ec;
                    fs::resize_file(path, at, ec);
                    seg.bytes = at;
                    out.notes.push_back("segment " + std::to_string(id) +
                                        ": truncated torn tail (" +
                                        std::to_string(torn) + " bytes)");
                } else {
                    out.notes.push_back("segment " + std::to_string(id) +
                                        ": torn tail (" + std::to_string(torn) +
                                        " bytes past last commit)");
                }
            } else {
                out.notes.push_back("segment " + std::to_string(id) +
                                    ": unparseable tail (" +
                                    std::to_string(torn) + " bytes)");
            }
        };

        while (off < buf.size()) {
            const std::size_t rem = buf.size() - off;
            // A frame header that can't fit, a bad magic, or a corrupt
            // header resyncs on the next magic (quarantining the gap) —
            // or ends the segment if none follows.
            const auto resync = [&](std::size_t from) -> bool {
                std::size_t at = from;
                while (at + 4 <= buf.size() && get_u32(buf, at) != kMagic) ++at;
                if (at + 4 > buf.size()) {
                    tail(off);
                    return false;
                }
                out.notes.push_back("segment " + std::to_string(id) +
                                    ": skipped " + std::to_string(at - off) +
                                    " corrupt bytes at offset " +
                                    std::to_string(off));
                off = at;
                return true;
            };

            if (rem < kHeadBytes) {
                tail(off);
                break;
            }
            if (get_u32(buf, off) != kMagic) {
                if (!resync(off + 1)) break;
                continue;
            }
            const std::uint8_t kind = std::to_integer<std::uint8_t>(buf[off + 4]);
            const std::uint64_t step = get_u64(buf, off + 5);
            const std::uint64_t layout_gen = get_u64(buf, off + 13);
            const std::uint64_t meta_len = get_u32(buf, off + 21);
            const std::uint64_t payload_len = get_u64(buf, off + 25);
            const std::uint32_t crc_head = get_u32(buf, off + 33);
            if (kHeadBytes + meta_len > rem) {
                // Header claims more metadata than the file holds: either a
                // torn append or garbage lengths — indistinguishable until
                // the header CRC could be checked, which it can't be.
                tail(off);
                break;
            }
            std::uint32_t c = ffs::crc32c_init();
            c = ffs::crc32c_update(
                c, std::span<const std::byte>(buf).subspan(off + 4, 29));
            c = ffs::crc32c_update(c, std::span<const std::byte>(buf).subspan(
                                          off + kHeadBytes, meta_len));
            if (ffs::crc32c_final(c) != crc_head) {
                if (!resync(off + 4)) break;
                continue;
            }
            // Header is trustworthy: the frame extent is known.
            const std::uint64_t frame_bytes =
                kHeadBytes + meta_len + payload_len + kTailBytes;
            if (frame_bytes > rem) {
                tail(off);  // payload torn mid-append
                break;
            }
            const std::size_t payload_at = off + kHeadBytes + meta_len;
            const std::uint32_t crc_payload =
                get_u32(buf, payload_at + payload_len);
            const std::uint32_t commit =
                get_u32(buf, payload_at + payload_len + 4);
            const bool committed = commit == kCommit;
            const bool payload_ok =
                ffs::crc32c(std::span<const std::byte>(buf).subspan(
                    payload_at, payload_len)) == crc_payload;
            if (!committed && last && off + frame_bytes == buf.size()) {
                tail(off);  // commit marker never landed: classic torn tail
                break;
            }
            if (kind == kKindStep) {
                FrameInfo info;
                info.segment = id;
                info.offset = off;
                info.bytes = frame_bytes;
                info.layout_gen = layout_gen;
                info.bad = !payload_ok || !committed;
                if (info.bad) {
                    const auto* m = buf.data() + off + kHeadBytes;
                    info.meta.assign(m, m + meta_len);
                    out.notes.push_back(
                        "segment " + std::to_string(id) + ": quarantined step " +
                        std::to_string(step) + " at offset " +
                        std::to_string(off) +
                        (payload_ok ? " (missing commit)" : " (payload CRC)"));
                }
                out.steps[step] = std::move(info);
                out.max_layout_gen = std::max(out.max_layout_gen, layout_gen);
                seg.max_step = std::max(seg.max_step, step);
                seg.has_steps = true;
            } else if (kind == kKindAck) {
                out.acked = std::max(out.acked, step);
            } else if (kind == kKindEos) {
                out.complete = true;
            } else {
                out.notes.push_back("segment " + std::to_string(id) +
                                    ": unknown frame kind " +
                                    std::to_string(kind) + " at offset " +
                                    std::to_string(off));
            }
            off += frame_bytes;
        }
        out.log_bytes += seg.bytes;
        out.segments.push_back(seg);
    }
    return out;
}

std::atomic<int> g_durable_override{-1};  // -1 env, 0 forced off, 1 forced on

}  // namespace

bool durable_enabled_from_env() {
    const int forced = g_durable_override.load(std::memory_order_relaxed);
    if (forced >= 0) return forced != 0;
    const char* v = std::getenv("SB_DURABLE");
    if (!v) return true;
    const std::string s(v);
    return !(s == "off" || s == "0" || s == "false");
}

void set_durable_enabled(bool on) {
    g_durable_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool resolve_enabled(const Options& o) {
    if (o.dir.empty()) return false;
    switch (o.mode) {
        case Mode::On: return true;
        case Mode::Off: return false;
        case Mode::Auto: break;
    }
    return durable_enabled_from_env();
}

bool parse_fsync_policy(const std::string& text, Options& into) {
    if (text == "never") {
        into.fsync = FsyncPolicy::Never;
        return true;
    }
    if (text == "commit") {
        into.fsync = FsyncPolicy::Commit;
        return true;
    }
    if (text.rfind("interval:", 0) == 0) {
        try {
            std::size_t used = 0;
            const double ms = std::stod(text.substr(9), &used);
            if (used != text.size() - 9 || ms <= 0.0) return false;
            into.fsync = FsyncPolicy::Interval;
            into.fsync_interval_ms = ms;
            return true;
        } catch (const std::exception&) {
            return false;
        }
    }
    return false;
}

std::string RecoveryReport::to_string() const {
    std::ostringstream os;
    os << "stream '" << stream << "': " << steps_recovered
       << " step(s) recovered, " << steps_quarantined << " quarantined, acked "
       << acked << ", next step " << next_step
       << (complete ? ", complete" : ", open") << ", " << segments
       << " segment(s), " << log_bytes << " bytes";
    if (torn_bytes > 0) os << ", torn tail " << torn_bytes << " bytes";
    for (const std::string& n : notes) os << "\n  - " << n;
    return os.str();
}

// ---- Log -------------------------------------------------------------------

Log::Log(std::string stream, Options opts)
    : stream_(std::move(stream)),
      opts_(std::move(opts)),
      mu_("durable.Log('" + stream_ + "').mu") {
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"stream", stream_}};
    ins_.steps_appended = &reg.counter("durable.steps_appended", labels);
    ins_.acks_appended = &reg.counter("durable.acks_appended", labels);
    ins_.bytes_appended = &reg.counter("durable.bytes_appended", labels);
    ins_.bytes_read = &reg.counter("durable.bytes_read", labels);
    ins_.steps_recovered = &reg.counter("durable.steps_recovered", labels);
    ins_.steps_quarantined = &reg.counter("durable.steps_quarantined", labels);
    ins_.torn_bytes = &reg.counter("durable.torn_bytes", labels);
    ins_.fsyncs = &reg.counter("durable.fsyncs", labels);
    ins_.segments_collected = &reg.counter("durable.segments_collected", labels);
    ins_.log_bytes = &reg.gauge("durable.log_bytes", labels);
    ins_.append_seconds = &reg.histogram("durable.append_seconds", labels);
    ins_.fsync_seconds = &reg.histogram("durable.fsync_seconds", labels);
    ins_.recovery_seconds = &reg.histogram("durable.recovery_seconds", labels);

    fs::create_directories(opts_.dir);
    const std::string safe = safe_name(stream_);

    const double t0 = obs::steady_seconds();
    fault::hit("durable.scan", stream_);
    ScanResult scan =
        scan_stream(opts_.dir, safe, find_segments(opts_.dir, safe), true);
    for (auto& [step, info] : scan.steps) {
        index_[step] = Frame{info.segment, info.offset, info.bytes,
                             info.layout_gen,
                             info.bad ? RecoveredStep::State::BadPayload
                                      : RecoveredStep::State::Ok};
    }
    for (const SegInfo& s : scan.segments) {
        segments_.push_back(Segment{s.id, s.bytes, s.max_step, s.has_steps});
    }
    max_layout_gen_ = scan.max_layout_gen;
    last_ack_ = scan.acked;

    report_.stream = stream_;
    report_.acked = scan.acked;
    report_.complete = scan.complete;
    report_.torn_bytes = scan.torn_bytes;
    report_.log_bytes = scan.log_bytes;
    report_.segments = scan.segments.size();
    report_.notes = std::move(scan.notes);
    report_.next_step = scan.acked;
    for (const auto& [step, info] : scan.steps) {
        if (info.bad) {
            ++report_.steps_quarantined;
        } else {
            ++report_.steps_recovered;
        }
        report_.next_step = std::max(report_.next_step, step + 1);
    }
    // The window the stream re-exposes: everything not yet acknowledged —
    // or the whole surviving history for a late-joining replay reader.
    const std::uint64_t base = opts_.replay_history ? 0 : scan.acked;
    for (auto& [step, info] : scan.steps) {
        if (step < base) continue;
        RecoveredStep rs;
        rs.step = step;
        rs.layout_gen = info.layout_gen;
        rs.state = info.bad ? RecoveredStep::State::BadPayload
                            : RecoveredStep::State::Ok;
        rs.meta = std::move(info.meta);
        recovered_.push_back(std::move(rs));
    }
    const double t1 = obs::steady_seconds();
    report_.seconds = t1 - t0;

    ins_.steps_recovered->add(report_.steps_recovered);
    ins_.steps_quarantined->add(report_.steps_quarantined);
    ins_.torn_bytes->add(report_.torn_bytes);
    ins_.log_bytes->set(static_cast<double>(report_.log_bytes));
    ins_.recovery_seconds->observe(report_.seconds);
    if (obs::enabled() && (report_.steps_recovered > 0 ||
                           report_.steps_quarantined > 0 ||
                           report_.torn_bytes > 0 || report_.acked > 0)) {
        obs::TraceLog::global().slice("recovery", stream_, "restart", t0, t1,
                                      report_.acked);
        SB_LOG(Info) << "durable: " << report_.to_string();
    }

    std::lock_guard lock(mu_);
    last_fsync_ = obs::steady_seconds();
    open_active_locked();
}

Log::~Log() {
    std::lock_guard lock(mu_);
    if (fd_ >= 0) {
        // Best-effort flush on clean close; Never means the caller accepted
        // page-cache durability.
        if (dirty_ && opts_.fsync != FsyncPolicy::Never) ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

std::string Log::segment_path(std::uint64_t seg) const {
    return seg_path(opts_.dir, safe_name(stream_), seg);
}

void Log::open_active_locked() {
    if (segments_.empty()) segments_.push_back(Segment{});
    const std::string path = segment_path(segments_.back().id);
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        throw SpoolError(std::string("durable log open failed: ") +
                             std::strerror(errno),
                         path, 0, 0);
    }
}

void Log::roll_if_needed_locked(std::size_t frame_bytes) {
    Segment& active = segments_.back();
    if (active.bytes == 0 || active.bytes + frame_bytes <= opts_.segment_bytes)
        return;
    ::close(fd_);
    fd_ = -1;
    segments_.push_back(Segment{active.id + 1, 0, 0, false});
    open_active_locked();
}

void Log::write_frame_locked(const ffs::Bytes& head,
                             const std::vector<std::span<const std::byte>>& body,
                             const ffs::Bytes& tail) {
    // A torn-write fault makes the frame land short by N bytes and then
    // crashes the rank — the next incarnation's scanner must find exactly
    // the tear a power cut would leave.
    std::uint64_t frame_bytes = head.size() + tail.size();
    for (const auto& s : body) frame_bytes += s.size();
    std::uint64_t budget = frame_bytes;
    try {
        fault::hit("durable.append", stream_);
    } catch (const fault::TornWrite& torn) {
        budget -= std::min<std::uint64_t>(torn.bytes(), frame_bytes);
        ins_.torn_bytes->add(frame_bytes - budget);
        std::vector<std::span<const std::byte>> spans;
        spans.emplace_back(head);
        for (const auto& s : body) spans.push_back(s);
        spans.emplace_back(tail);
        for (const auto& s : spans) {
            const std::size_t n =
                std::min<std::uint64_t>(s.size(), budget);
            if (n > 0) {
                [[maybe_unused]] const auto written =
                    ::write(fd_, s.data(), n);
            }
            budget -= n;
            if (budget == 0) break;
        }
        throw fault::InjectedCrash(torn.what());
    }
    std::vector<std::span<const std::byte>> spans;
    spans.emplace_back(head);
    for (const auto& s : body) spans.push_back(s);
    spans.emplace_back(tail);
    const std::string path = segment_path(segments_.back().id);
    for (const auto& s : spans) {
        const std::byte* p = s.data();
        std::size_t left = s.size();
        while (left > 0) {
            const auto n = ::write(fd_, p, left);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw SpoolError(std::string("durable log write failed: ") +
                                     std::strerror(errno),
                                 path, segments_.back().bytes, 0);
            }
            p += n;
            left -= static_cast<std::size_t>(n);
        }
    }
    segments_.back().bytes += frame_bytes;
    dirty_ = true;
}

void Log::maybe_fsync_locked() {
    switch (opts_.fsync) {
        case FsyncPolicy::Never:
            return;
        case FsyncPolicy::Commit:
            fsync_now_locked();
            return;
        case FsyncPolicy::Interval:
            if ((obs::steady_seconds() - last_fsync_) * 1000.0 >=
                opts_.fsync_interval_ms) {
                fsync_now_locked();
            }
            return;
    }
}

void Log::fsync_now_locked() {
    fault::hit("durable.fsync", stream_);
    const double t0 = obs::steady_seconds();
    ::fsync(fd_);
    const double t1 = obs::steady_seconds();
    ins_.fsyncs->inc();
    ins_.fsync_seconds->observe(t1 - t0);
    last_fsync_ = t1;
    dirty_ = false;
}

void Log::append_step(std::uint64_t step, std::uint64_t layout_gen,
                      std::span<const std::byte> meta,
                      const ffs::EncodedSegments& payload) {
    const double t0 = obs::steady_seconds();
    std::lock_guard lock(mu_);
    const std::size_t frame_bytes =
        kHeadBytes + meta.size() + payload.total + kTailBytes;
    roll_if_needed_locked(frame_bytes);

    ffs::Bytes head;
    head.reserve(kHeadBytes + meta.size());
    put_u32(head, kMagic);
    head.push_back(std::byte{kKindStep});
    put_u64(head, step);
    put_u64(head, layout_gen);
    put_u32(head, static_cast<std::uint32_t>(meta.size()));
    put_u64(head, payload.total);
    std::uint32_t c = ffs::crc32c_init();
    c = ffs::crc32c_update(c,
                           std::span<const std::byte>(head).subspan(4));
    c = ffs::crc32c_update(c, meta);
    put_u32(head, ffs::crc32c_final(c));
    head.insert(head.end(), meta.begin(), meta.end());

    // EncodedSegments::segments is the *complete* scatter-gather list
    // (header spans interleaved with borrowed payload spans; `header` is
    // only their backing storage), so the segments alone are the payload.
    std::vector<std::span<const std::byte>> body;
    body.reserve(payload.segments.size());
    std::uint32_t pc = ffs::crc32c_init();
    for (const auto& s : payload.segments) {
        body.push_back(s);
        pc = ffs::crc32c_update(pc, s);
    }
    ffs::Bytes tail;
    tail.reserve(kTailBytes);
    put_u32(tail, ffs::crc32c_final(pc));
    put_u32(tail, kCommit);

    const std::uint64_t offset = segments_.back().bytes;
    write_frame_locked(head, body, tail);
    Segment& active = segments_.back();
    active.max_step = std::max(active.max_step, step);
    active.has_steps = true;
    index_[step] = Frame{active.id, offset,
                         static_cast<std::uint64_t>(frame_bytes), layout_gen,
                         RecoveredStep::State::Ok};
    max_layout_gen_ = std::max(max_layout_gen_, layout_gen);
    report_.next_step = std::max(report_.next_step, step + 1);
    maybe_fsync_locked();

    ins_.steps_appended->inc();
    ins_.bytes_appended->add(frame_bytes);
    std::uint64_t total = 0;
    for (const Segment& s : segments_) total += s.bytes;
    ins_.log_bytes->set(static_cast<double>(total));
    ins_.append_seconds->observe(obs::steady_seconds() - t0);
}

void Log::append_ack(std::uint64_t upto) {
    std::lock_guard lock(mu_);
    if (upto <= last_ack_) return;
    last_ack_ = upto;

    ffs::Bytes head;
    head.reserve(kHeadBytes);
    put_u32(head, kMagic);
    head.push_back(std::byte{kKindAck});
    put_u64(head, upto);
    put_u64(head, 0);  // layout_gen unused
    put_u32(head, 0);  // meta_len
    put_u64(head, 0);  // payload_len
    put_u32(head, ffs::crc32c(std::span<const std::byte>(head).subspan(4)));
    ffs::Bytes tail;
    tail.reserve(kTailBytes);
    put_u32(tail, ffs::crc32c({}));  // empty payload
    put_u32(tail, kCommit);

    roll_if_needed_locked(head.size() + tail.size());
    write_frame_locked(head, {}, tail);
    maybe_fsync_locked();
    ins_.acks_appended->inc();
    ins_.bytes_appended->add(head.size() + tail.size());
}

void Log::append_eos() {
    std::lock_guard lock(mu_);
    if (report_.complete) return;
    report_.complete = true;

    ffs::Bytes head;
    head.reserve(kHeadBytes);
    put_u32(head, kMagic);
    head.push_back(std::byte{kKindEos});
    put_u64(head, 0);
    put_u64(head, 0);
    put_u32(head, 0);
    put_u64(head, 0);
    put_u32(head, ffs::crc32c(std::span<const std::byte>(head).subspan(4)));
    ffs::Bytes tail;
    tail.reserve(kTailBytes);
    put_u32(tail, ffs::crc32c({}));
    put_u32(tail, kCommit);

    write_frame_locked(head, {}, tail);
    // The closing marker is always flushed (unless durability is Never):
    // a replayed reader must not spin waiting for a writer that finished.
    if (opts_.fsync != FsyncPolicy::Never) fsync_now_locked();
    ins_.bytes_appended->add(head.size() + tail.size());
}

LoadedStep Log::load_step(std::uint64_t step) {
    Frame frame;
    std::string path;
    {
        std::lock_guard lock(mu_);
        const auto it = index_.find(step);
        if (it == index_.end()) {
            throw SpoolError("durable log has no frame for step",
                             segment_path(segments_.empty() ? 0
                                                            : segments_.back().id),
                             0, step);
        }
        frame = it->second;
        path = segment_path(frame.segment);
        if (frame.state != RecoveredStep::State::Ok) {
            throw SpoolError("durable log frame quarantined", path,
                             frame.offset, step);
        }
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw SpoolError("durable log segment missing", path, frame.offset,
                         step);
    }
    in.seekg(static_cast<std::streamoff>(frame.offset));
    ffs::Bytes buf(frame.bytes);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (static_cast<std::uint64_t>(in.gcount()) != frame.bytes) {
        throw SpoolError("durable log frame truncated on reload", path,
                         frame.offset, step);
    }
    // Re-verify both checksums on every reload: the log is the only copy of
    // the step now, so bit rot between recovery and reload must not decode.
    if (get_u32(buf, 0) != kMagic ||
        std::to_integer<std::uint8_t>(buf[4]) != kKindStep ||
        get_u64(buf, 5) != step) {
        throw SpoolError("durable log frame header mismatch on reload", path,
                         frame.offset, step);
    }
    const std::uint64_t meta_len = get_u32(buf, 21);
    const std::uint64_t payload_len = get_u64(buf, 25);
    if (kHeadBytes + meta_len + payload_len + kTailBytes != frame.bytes) {
        throw SpoolError("durable log frame size mismatch on reload", path,
                         frame.offset, step);
    }
    std::uint32_t c = ffs::crc32c_init();
    c = ffs::crc32c_update(c, std::span<const std::byte>(buf).subspan(4, 29));
    c = ffs::crc32c_update(
        c, std::span<const std::byte>(buf).subspan(kHeadBytes, meta_len));
    const std::size_t payload_at = kHeadBytes + meta_len;
    if (ffs::crc32c_final(c) != get_u32(buf, 33) ||
        ffs::crc32c(std::span<const std::byte>(buf).subspan(
            payload_at, payload_len)) != get_u32(buf, payload_at + payload_len)) {
        throw SpoolError("durable log frame failed CRC on reload", path,
                         frame.offset, step);
    }
    LoadedStep out;
    out.step = step;
    out.layout_gen = get_u64(buf, 13);
    out.meta.assign(buf.begin() + kHeadBytes, buf.begin() + payload_at);
    out.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(payload_at),
                       buf.begin() + static_cast<std::ptrdiff_t>(payload_at +
                                                                 payload_len));
    ins_.bytes_read->add(frame.bytes);
    return out;
}

void Log::collect(std::uint64_t pinned_below) {
    if (opts_.retain_steps == 0 && opts_.retain_bytes == 0) return;  // keep all
    std::lock_guard lock(mu_);
    std::uint64_t floor = std::min(last_ack_, pinned_below);
    if (opts_.retain_steps > 0) {
        floor = floor > opts_.retain_steps ? floor - opts_.retain_steps : 0;
    }
    std::uint64_t total = 0;
    for (const Segment& s : segments_) total += s.bytes;
    // Delete oldest-first, stopping at the first segment still holding a
    // live (or retained) step so the surviving log stays contiguous.  The
    // active segment is never a candidate.
    while (segments_.size() > 1) {
        const Segment& victim = segments_.front();
        if (!victim.has_steps || victim.max_step >= floor) break;
        if (opts_.retain_bytes > 0 && total <= opts_.retain_bytes) break;
        std::error_code ec;
        fs::remove(segment_path(victim.id), ec);
        total -= victim.bytes;
        std::erase_if(index_, [&](const auto& kv) {
            return kv.second.segment == victim.id;
        });
        segments_.erase(segments_.begin());
        ins_.segments_collected->inc();
    }
    ins_.log_bytes->set(static_cast<double>(total));
}

std::uint64_t Log::log_bytes() const {
    std::lock_guard lock(mu_);
    std::uint64_t total = 0;
    for (const Segment& s : segments_) total += s.bytes;
    return total;
}

std::vector<RecoveryReport> scan_dir(const std::string& dir) {
    std::vector<RecoveryReport> reports;
    std::vector<std::string> streams;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string fname = entry.path().filename().string();
        const std::string suffix = ".sblog";
        if (fname.size() <= suffix.size() ||
            fname.compare(fname.size() - suffix.size(), suffix.size(),
                          suffix) != 0)
            continue;
        // <stream>.<seg>.sblog -> strip the trailing ".<seg>.sblog".
        const std::string stem = fname.substr(0, fname.size() - suffix.size());
        const auto dot = stem.rfind('.');
        if (dot == std::string::npos) continue;
        const std::string stream = stem.substr(0, dot);
        if (std::find(streams.begin(), streams.end(), stream) == streams.end())
            streams.push_back(stream);
    }
    std::sort(streams.begin(), streams.end());
    for (const std::string& stream : streams) {
        fault::hit("durable.scan", stream);
        const double t0 = obs::steady_seconds();
        ScanResult scan =
            scan_stream(dir, stream, find_segments(dir, stream), false);
        RecoveryReport r;
        r.stream = stream;
        r.acked = scan.acked;
        r.complete = scan.complete;
        r.torn_bytes = scan.torn_bytes;
        r.log_bytes = scan.log_bytes;
        r.segments = scan.segments.size();
        r.notes = std::move(scan.notes);
        r.next_step = scan.acked;
        for (const auto& [step, info] : scan.steps) {
            if (info.bad) {
                ++r.steps_quarantined;
            } else {
                ++r.steps_recovered;
            }
            r.next_step = std::max(r.next_step, step + 1);
        }
        r.seconds = obs::steady_seconds() - t0;
        reports.push_back(std::move(r));
    }
    return reports;
}

bool history_exists(const std::string& dir, const std::string& stream) {
    if (dir.empty()) return false;
    return !find_segments(dir, safe_name(stream)).empty();
}

}  // namespace sb::durable
