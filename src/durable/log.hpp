// sb::durable — a crash-consistent, checksummed step log.
//
// The volatile spool (flexpath::StreamOptions::spool_dir) parks buffered
// steps in one throwaway file each, with no integrity protection: if the
// process hosting the stream dies, the buffered history is gone, and a torn
// or bit-rotted file poisons the reader with a raw decode error.  This
// module promotes the spool into an *addressable, replayable step log*
// (ROADMAP item 5): every published step is appended as a framed record —
//
//   +-------+------+------+------------+----------+-------------+----------+
//   | magic | kind | step | layout_gen | meta_len | payload_len | crc_head |
//   | "SBLG"| u8   | u64  | u64        | u32      | u64         | u32      |
//   +-------+------+------+------------+----------+-------------+----------+
//   | meta bytes ... | payload bytes ... | crc_payload | commit "CMT1"     |
//   +----------------+-------------------+-------------+-------------------+
//
// (all integers little-endian; crc_head is CRC32C over kind..payload_len +
// meta, crc_payload over the payload, so a frame whose payload rotted still
// yields intact metadata for OnDataLoss::ZeroFill).  The payload is the
// existing scatter-gather spool packet (ffs::encode_segments), spliced into
// the frame without an intermediate copy.  Kind=Ack frames record the
// reader group's retirement frontier; kind=Eos marks a cleanly closed
// writer group, so a late-joining reader of a finished stream terminates
// after replay.
//
// On open, a recovery scanner validates every frame: a torn tail (the
// process died mid-append) is truncated back to the last committed frame; a
// mid-log corrupt frame is quarantined — surfaced through the stream's
// OnDataLoss policy (Skip / ZeroFill / Fail) — and scanning resyncs on the
// next magic.  The rebuilt step index lets a whole-process relaunch resume
// bit-identically from the last durable step (Workflow cold restart) and
// lets a fresh reader attach at step 0 and replay history before going
// live (Options::replay_history).
//
// Durability is configurable per workflow: fsync policy never | commit |
// interval:<ms>, segment roll size, and retention/GC by step count or bytes
// — GC only ever deletes whole segments whose every step is both
// acknowledged and unpinned.  Everything is observable (durable.* metrics,
// a "recovery" trace slice) and chaos-testable (fault points
// durable.append / durable.fsync / durable.scan, plus the torn:<bytes>
// action that truncates a frame mid-write).  See docs/RESILIENCE.md.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/mutex.hpp"
#include "ffs/encode.hpp"

namespace sb::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace sb::obs

namespace sb::durable {

/// Stream-level durability knob: Auto follows the SB_DURABLE environment
/// gate (unset -> on; "off"/"0"/"false" -> off), On/Off pin it regardless
/// of the environment (tests pin semantics this way, mirroring the
/// SB_READ_AHEAD / SB_POOL A/B gates).  A log only opens when the mode
/// resolves on *and* Options::dir is non-empty.
enum class Mode { Auto, On, Off };

/// When appended frames are flushed to stable storage.
enum class FsyncPolicy {
    Never,     // leave it to the page cache (volatile-spool durability)
    Commit,    // fsync after every appended frame (strongest, slowest)
    Interval,  // fsync at most once per fsync_interval_ms
};

struct Options {
    Options() = default;

    /// Log directory; empty disables the durable log entirely.
    std::string dir;

    /// See Mode.  Auto resolves the SB_DURABLE environment gate.
    Mode mode = Mode::Auto;

    FsyncPolicy fsync = FsyncPolicy::Never;
    double fsync_interval_ms = 50.0;  // FsyncPolicy::Interval cadence

    /// Active segment rolls to a new file past this size.
    std::size_t segment_bytes = 8ull << 20;

    /// Retention of *acknowledged* history (for late-joining readers):
    /// keep at least this many acked steps / bytes before GC may delete a
    /// segment.  0 = keep everything (late-join from step 0 always works;
    /// disk use is unbounded).  Unacknowledged or pinned steps are never
    /// collected regardless.
    std::size_t retain_steps = 0;
    std::uint64_t retain_bytes = 0;

    /// Recovery exposes every surviving step from 0 instead of resuming at
    /// the acknowledged frontier — the late-join replay mode.
    bool replay_history = false;
};

/// Whether the SB_DURABLE environment gate is on (unset -> on).
bool durable_enabled_from_env();
/// Programmatic override of the environment gate (benches A/B this way).
void set_durable_enabled(bool on);
/// Whether `o` resolves to an open durable log (dir set + gate on).
bool resolve_enabled(const Options& o);

/// Parses "never" | "commit" | "interval:<ms>" into `into`; returns false
/// on malformed input.
bool parse_fsync_policy(const std::string& text, Options& into);

/// Typed replacement for the raw reload errors: names the exact file,
/// byte offset, and step of the frame that could not be read back, so
/// recovery reports (and the poisoned stream's error) identify the frame.
class SpoolError : public std::runtime_error {
public:
    SpoolError(const std::string& what, std::string file, std::uint64_t offset,
               std::uint64_t step)
        : std::runtime_error(what + " [" + file + " @" + std::to_string(offset) +
                             ", step " + std::to_string(step) + "]"),
          file_(std::move(file)),
          offset_(offset),
          step_(step) {}

    const std::string& file() const noexcept { return file_; }
    std::uint64_t offset() const noexcept { return offset_; }
    std::uint64_t step() const noexcept { return step_; }

private:
    std::string file_;
    std::uint64_t offset_;
    std::uint64_t step_;
};

/// One step frame surviving recovery, in step order.
struct RecoveredStep {
    enum class State {
        Ok,          // both checksums verified
        BadPayload,  // header+meta intact, payload corrupt (ZeroFill-able)
    };
    std::uint64_t step = 0;
    std::uint64_t layout_gen = 0;
    State state = State::Ok;
    /// The frame's metadata packet — kept only for BadPayload frames, where
    /// it is the ZeroFill material (Ok frames reload lazily via load_step).
    ffs::Bytes meta;
};

/// What the recovery scanner found (also the --recover report).
struct RecoveryReport {
    std::string stream;
    std::uint64_t steps_recovered = 0;    // intact step frames
    std::uint64_t steps_quarantined = 0;  // corrupt frames with a known step
    std::uint64_t acked = 0;              // retirement frontier from Ack frames
    std::uint64_t next_step = 0;          // 1 + highest step seen
    bool complete = false;                // Eos frame present
    std::uint64_t torn_bytes = 0;         // truncated (or truncatable) tail bytes
    std::uint64_t log_bytes = 0;          // on-disk bytes after recovery
    std::size_t segments = 0;
    double seconds = 0.0;
    std::vector<std::string> notes;  // one line per quarantine/torn/resync event

    std::string to_string() const;
};

/// A loaded step frame (the reader-side reload currency).
struct LoadedStep {
    std::uint64_t step = 0;
    std::uint64_t layout_gen = 0;
    ffs::Bytes meta;
    ffs::Bytes payload;  // the encode_step_blocks packet
};

/// One stream's durable log: segmented files `<dir>/<stream>.<k>.sblog`.
/// Thread-safe.  Construction runs recovery (scan + torn-tail repair).
class Log {
public:
    Log(std::string stream, Options opts);
    ~Log();
    Log(const Log&) = delete;
    Log& operator=(const Log&) = delete;

    const Options& options() const noexcept { return opts_; }
    const RecoveryReport& recovery() const noexcept { return report_; }
    /// Surviving step frames in step order, starting at the acknowledged
    /// frontier (or step 0 under Options::replay_history).
    const std::vector<RecoveredStep>& recovered() const noexcept {
        return recovered_;
    }

    std::uint64_t next_step() const noexcept { return report_.next_step; }
    std::uint64_t acked() const noexcept { return report_.acked; }
    std::uint64_t max_layout_gen() const noexcept { return max_layout_gen_; }
    bool complete() const noexcept { return report_.complete; }

    // ---- writer side -----------------------------------------------------
    /// Appends one step frame; `payload` is the scatter-gather spool packet
    /// (segments are spliced, never concatenated).  Applies the fsync
    /// policy.  Fault point "durable.append" fires before the write; the
    /// torn:<bytes> action makes the frame land short and rethrows as a
    /// crash, modelling a power cut mid-append.
    void append_step(std::uint64_t step, std::uint64_t layout_gen,
                     std::span<const std::byte> meta,
                     const ffs::EncodedSegments& payload);

    /// Records the reader group's retirement frontier (steps below `upto`
    /// are fully released): the recovery resume point.  Regressions and
    /// repeats are dropped.
    void append_ack(std::uint64_t upto);

    /// Marks the stream cleanly closed (writer group closed after its last
    /// step): replayed readers terminate instead of waiting for a writer.
    void append_eos();

    // ---- reader side -----------------------------------------------------
    /// Reads step `step` back, re-verifying both checksums.  Throws
    /// SpoolError (file/offset/step context) for a quarantined, missing, or
    /// re-corrupted frame.
    LoadedStep load_step(std::uint64_t step);

    /// Garbage collection: deletes whole segments whose every step is below
    /// min(acked frontier, `pinned_below`) minus the retention window.
    /// Never touches the active segment.
    void collect(std::uint64_t pinned_below);

    /// Current on-disk size of all segments.
    std::uint64_t log_bytes() const;

private:
    struct Frame {
        std::uint64_t segment = 0;
        std::uint64_t offset = 0;
        std::uint64_t bytes = 0;
        std::uint64_t layout_gen = 0;
        RecoveredStep::State state = RecoveredStep::State::Ok;
    };
    struct Segment {
        std::uint64_t id = 0;
        std::uint64_t bytes = 0;
        std::uint64_t max_step = 0;
        bool has_steps = false;
    };

    std::string segment_path(std::uint64_t seg) const;
    void open_active_locked();
    void roll_if_needed_locked(std::size_t frame_bytes);
    void write_frame_locked(const ffs::Bytes& head,
                            const std::vector<std::span<const std::byte>>& body,
                            const ffs::Bytes& tail);
    void maybe_fsync_locked();
    void fsync_now_locked();

    const std::string stream_;
    const Options opts_;
    mutable check::CheckedMutex mu_;
    int fd_ = -1;                  // active segment, append-only
    std::vector<Segment> segments_;  // sorted by id; back() is active
    std::map<std::uint64_t, Frame> index_;  // step -> frame location
    std::vector<RecoveredStep> recovered_;
    RecoveryReport report_;
    std::uint64_t max_layout_gen_ = 0;
    std::uint64_t last_ack_ = 0;
    double last_fsync_ = 0.0;
    bool dirty_ = false;  // appended since the last fsync

    struct Instruments {
        obs::Counter* steps_appended = nullptr;
        obs::Counter* acks_appended = nullptr;
        obs::Counter* bytes_appended = nullptr;
        obs::Counter* bytes_read = nullptr;
        obs::Counter* steps_recovered = nullptr;
        obs::Counter* steps_quarantined = nullptr;
        obs::Counter* torn_bytes = nullptr;
        obs::Counter* fsyncs = nullptr;
        obs::Counter* segments_collected = nullptr;
        obs::Gauge* log_bytes = nullptr;
        obs::Histogram* append_seconds = nullptr;
        obs::Histogram* fsync_seconds = nullptr;
        obs::Histogram* recovery_seconds = nullptr;
    };
    Instruments ins_;
};

/// Non-destructive scan of every stream log found in `dir` (torn tails are
/// reported, not truncated): the `smartblock_run --recover` report.
std::vector<RecoveryReport> scan_dir(const std::string& dir);

/// True when `dir` holds at least one segment file for `stream` — a cheap
/// existence probe (no scan, no repair).  The fusion planner uses it to keep
/// a chain boundary wherever the interior stream has durable history a
/// late-joining or restarted reader would need to replay.
bool history_exists(const std::string& dir, const std::string& stream);

}  // namespace sb::durable
