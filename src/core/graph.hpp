// Workflow graph analysis (paper §VI: toward "a true Workflow Management
// System").
//
// In the paper, workflows are wired by hand-matching stream names across
// launch-script lines; a typo means a component blocks forever waiting for
// a stream nobody writes.  This module builds the dataflow graph from the
// components' declared ports (Component::ports) *before* anything launches
// and reports:
//
//   - DanglingInput     a stream read but never written (would block forever)
//   - UnconsumedOutput  a stream written but never read (writer stalls once
//                       its buffer fills) — a warning, not an error
//   - MultipleWriters   two component instances writing one stream (the
//                       transport supports exactly one writer group)
//   - MultipleReaders   two component instances reading one stream (ditto)
//   - Cycle             a dependency cycle (in situ pipelines must be DAGs)
//   - BadArguments      a component rejected its arguments outright
//
// A Graphviz rendering of the graph is available for documentation and
// debugging (`smartblock_run --dot`).
#pragma once

#include <string>
#include <vector>

#include "core/launch_script.hpp"

namespace sb::core {

struct GraphIssue {
    enum class Kind {
        DanglingInput,
        UnconsumedOutput,
        MultipleWriters,
        MultipleReaders,
        Cycle,
        BadArguments,
    };
    Kind kind;
    bool fatal;  // UnconsumedOutput is a warning; everything else is fatal
    std::string message;
};

const char* graph_issue_kind_name(GraphIssue::Kind k);

/// One node of the dataflow graph, resolved through the registry.
struct GraphNode {
    LaunchEntry entry;
    Ports ports;
};

/// Resolves every entry's ports.  Throws for unregistered components;
/// argument errors are captured per node (ports.known = false) and surface
/// as BadArguments issues in validate_graph.
std::vector<GraphNode> resolve_graph(const std::vector<LaunchEntry>& entries);

/// All issues with the workflow's wiring, fatal ones first.
std::vector<GraphIssue> validate_graph(const std::vector<LaunchEntry>& entries);

/// True if validate_graph found no fatal issue.
bool graph_is_runnable(const std::vector<GraphIssue>& issues);

/// Escapes a string for use inside a double-quoted Graphviz label: quotes,
/// backslashes, and newlines — arbitrary stream/component names stay valid.
std::string dot_escape(const std::string& s);

/// A finding overlay for graph_to_dot: colors node `index` and appends
/// `note` to its label (the lint analyzer renders errors red, warnings
/// yellow — see src/lint).
struct DotAnnotation {
    std::size_t index = 0;     // entry index
    std::string color;         // Graphviz color name ("red", "gold", ...)
    std::string note;          // extra label line, already human-readable
};

/// Graphviz (dot) rendering: components as boxes, streams as labelled edges.
std::string graph_to_dot(const std::vector<LaunchEntry>& entries);

/// Same, with per-node finding annotations overlaid.
std::string graph_to_dot(const std::vector<LaunchEntry>& entries,
                         const std::vector<DotAnnotation>& annotations);

}  // namespace sb::core
