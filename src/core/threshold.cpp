#include "core/threshold.hpp"

#include <optional>

#include "util/timer.hpp"

namespace sb::core {

ThresholdMode parse_threshold_mode(const std::string& s) {
    if (s == "above") return ThresholdMode::Above;
    if (s == "below") return ThresholdMode::Below;
    if (s == "band") return ThresholdMode::Band;
    throw util::ArgError("threshold: mode must be above|below|band, got '" + s + "'");
}

void Threshold::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(6, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const ThresholdMode mode = parse_threshold_mode(args.str(2, "mode"));
    const double lo = args.real(3, "lo");
    std::size_t next = 4;
    double hi = 0.0;
    if (mode == ThresholdMode::Band) {
        args.require_at_least(7, usage());
        hi = args.real(next++, "hi");
        if (hi < lo) throw util::ArgError("threshold: band requires lo <= hi");
    }
    const std::string out_stream = args.str(next++, "output-stream-name");
    const std::string out_array = args.str(next++, "output-array-name");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        if (info.shape.ndim() != 1) {
            throw std::runtime_error("threshold: '" + in_array + "' must be 1-D, got " +
                                     info.shape.to_string());
        }
        if (info.kind != adios::DataKind::Float64) {
            throw std::runtime_error("threshold: '" + in_array +
                                     "' must be double-precision");
        }

        const util::Box box = util::partition_along(info.shape, 0, rank, size);
        const std::vector<double> local = reader.read<double>(in_array, box);
        std::vector<double> kept(local.size());
        kept.resize(kernels::threshold_compact(local, mode, lo, hi, kept.data(),
                                               kernels::active_schedule()));

        // Settle the global output layout: each rank's offset is the
        // exclusive prefix sum of pass counts, the extent their total.
        const auto n = static_cast<std::uint64_t>(kept.size());
        const std::uint64_t offset = ctx.comm.exscan(n, mpi::ReduceOp::Sum);
        const std::uint64_t total = ctx.comm.allreduce(n, mpi::ReduceOp::Sum);

        if (!writer) {
            const std::vector<std::string> labels = {
                info.dim_labels.empty() ? std::string{} : info.dim_labels[0]};
            writer.emplace(ctx.fabric, out_stream,
                           output_group("threshold", out_array, labels), rank, size,
                           ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        writer->set_dimension(dim_names[0], total);
        propagate_attributes(reader, *writer, AttrRules{in_array, out_array, {0}, {}});
        writer->write_attribute(out_array + ".count", static_cast<double>(total));
        writer->write<double>(out_array, kept,
                              util::Box({offset}, {static_cast<std::uint64_t>(kept.size())}));
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), local.size() * sizeof(double),
                    kept.size() * sizeof(double));
        reader.end_step();
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream, output_group("threshold", out_array, {}),
                       rank, size, ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
