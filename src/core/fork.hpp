// The Fork component (paper §VI, future work).
//
//   fork input-stream-name input-array-name
//        output-stream-1 output-array-1 [output-stream-2 output-array-2 ...]
//
// Re-publishes one input stream onto any number of output streams, turning
// a linear pipeline into a directed acyclic graph: different analysis
// branches can consume the same data independently (each downstream branch
// has its own buffering and backpressure).  Dimension labels, headers, and
// attributes propagate to every branch unchanged.
#pragma once

#include "core/component.hpp"

namespace sb::core {

class Fork : public Component {
public:
    std::string name() const override { return "fork"; }
    std::string usage() const override {
        return "fork input-stream-name input-array-name "
               "output-stream-1 output-array-1 [output-stream-2 output-array-2 ...]";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        Ports p{{args.str(0, "input-stream-name")}, {}};
        for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
            p.outputs.push_back(args.str(i, "output-stream"));
        }
        return p;
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        Contract c;
        c.known = true;
        if ((args.size() - 2) % 2 != 0) {
            c.param_errors.push_back(
                "fork: outputs must come in stream/array pairs");
        }
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        c.inputs.push_back(std::move(in));
        for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
            OutputContract out;
            out.stream = args.str(i, "output-stream");
            out.array = args.str(i + 1, "output-array");
            out.rule = OutputContract::Shape::Identity;
            c.outputs.push_back(std::move(out));
        }
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
