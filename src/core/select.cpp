#include "core/select.hpp"

#include <algorithm>
#include <optional>
#include <span>

#include "util/timer.hpp"

namespace sb::core {

void Select::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(6, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::size_t dim = args.unsigned_integer(2, "dimension-index");
    const std::string out_stream = args.str(3, "output-stream-name");
    const std::string out_array = args.str(4, "output-array-name");
    const std::vector<std::string> wanted = args.rest(5);

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();

    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        const util::NdShape& shape = info.shape;
        if (dim >= shape.ndim()) {
            throw std::runtime_error("select: dimension-index " + std::to_string(dim) +
                                     " out of range for " + shape.to_string());
        }
        // The header names the rows of the dimension of interest; it must
        // have been maintained upstream (design guideline 3).
        const auto header = reader.attribute_strings(header_attr_key(in_array, dim));
        if (!header) {
            throw std::runtime_error("select: stream '" + in_stream +
                                     "' carries no header for dimension " +
                                     std::to_string(dim) + " of '" + in_array +
                                     "' (attribute '" + header_attr_key(in_array, dim) +
                                     "')");
        }
        if (header->size() != shape[dim]) {
            throw std::runtime_error("select: header length " +
                                     std::to_string(header->size()) +
                                     " != dimension extent " + std::to_string(shape[dim]));
        }

        // Resolve requested names to row indices, in request order.
        std::vector<std::uint64_t> rows;
        rows.reserve(wanted.size());
        for (const std::string& w : wanted) {
            const auto it = std::find(header->begin(), header->end(), w);
            if (it == header->end()) {
                std::string avail;
                for (const auto& h : *header) avail += (avail.empty() ? "" : ", ") + h;
                throw std::runtime_error("select: no row named '" + w +
                                         "' in dimension " + std::to_string(dim) +
                                         " (available: " + avail + ")");
            }
            rows.push_back(static_cast<std::uint64_t>(it - header->begin()));
        }

        util::NdShape out_shape = shape;
        out_shape[dim] = rows.size();

        // Auto-partition along the largest other dimension; on rank-1
        // input (no other dimension exists) partition the selection
        // itself, so every rank still gets ~equal work.
        util::Box in_box;           // this rank's slab, full in `dim`
        std::uint64_t j_begin = 0;  // this rank's share of the selection
        std::uint64_t j_count = rows.size();
        if (shape.ndim() > 1) {
            const std::size_t pdim = pick_partition_dim(shape, {dim});
            in_box = util::partition_along(shape, pdim, rank, size);
        } else {
            in_box = util::Box::whole(shape);
            const auto [off, cnt] = util::partition_range(rows.size(), rank, size);
            j_begin = off;
            j_count = cnt;
        }
        util::Box out_box = in_box;
        out_box.offset[dim] = j_begin;
        out_box.count[dim] = j_count;

        const std::size_t elem = ffs::kind_size(info.kind);

        // Writer first: the output buffer is the transport's pooled step
        // buffer (put_view), filled in place — no staging copy.
        if (!writer) {
            writer.emplace(ctx.fabric, out_stream,
                           output_group("select", out_array, info.dim_labels, info.kind),
                           rank, size, ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        for (std::size_t d = 0; d < out_shape.ndim(); ++d) {
            writer->set_dimension(dim_names[d], out_shape[d]);
        }
        propagate_attributes(reader, *writer,
                             AttrRules{in_array, out_array, {}, {dim}});
        writer->write_attribute(header_attr_key(out_array, dim), wanted);
        const std::span<std::byte> out_view = writer->put_view(out_array, out_box);

        // Gather each selected row with a bounding-box read, then place it
        // at its output position along `dim`.  The rows tile out_box, so
        // every byte of the pooled buffer is written.
        std::uint64_t bytes_in = 0;
        std::vector<std::byte> tmp;
        for (std::uint64_t j = j_begin; j < j_begin + j_count; ++j) {
            util::Box row_in = in_box;
            row_in.offset[dim] = rows[j];
            row_in.count[dim] = 1;
            // A row that is exactly one writer block is copied once,
            // straight from the transport payload into its output slot.
            std::span<const std::byte> row;
            if (const auto view = reader.try_read_view_bytes(in_array, row_in)) {
                row = *view;
            } else {
                tmp.resize(row_in.volume() * elem);
                reader.read_bytes(in_array, row_in, tmp);
                row = tmp;
            }
            bytes_in += row.size();

            util::Box row_out = out_box;
            row_out.offset[dim] = j;
            row_out.count[dim] = 1;
            util::copy_box(row, row_out, out_view, out_box, row_out, elem);
        }
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), bytes_in,
                    out_view.size());
        reader.end_step();
    }
    // Even on an empty input stream the writer group must attach and close,
    // so end-of-stream propagates and the downstream component terminates.
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream, output_group("select", out_array, {}),
                       rank, size, ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
