// The Histogram component (paper §III.E).
//
//   histogram input-stream-name input-array-name num-bins [output-file]
//
// The component's ranks partition a one-dimensional array among themselves,
// communicate to discover the global minimum and maximum, bin the values
// between those extremes, and combine the counts.  As in the paper, the
// component is a workflow endpoint: one process (rank 0) writes the
// per-timestep histogram to a file on disk — the output is tiny compared to
// the input, so a single writer suffices.
//
// Values are binned with an inclusive upper edge on the last bin; NaNs are
// ignored.  When every value is identical the single occupied bin is bin 0.
#pragma once

#include <iosfwd>
#include <optional>

#include "core/component.hpp"

namespace sb::core {

/// One timestep's histogram.
struct HistogramResult {
    std::uint64_t step = 0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> counts;

    std::uint64_t total() const noexcept {
        std::uint64_t n = 0;
        for (auto c : counts) n += c;
        return n;
    }

    /// Lower edge of bin `b`.
    double bin_lo(std::size_t b) const;
    double bin_hi(std::size_t b) const;

    bool operator==(const HistogramResult&) const = default;
};

/// Binning kernel: counts of `values` in `bins` equal-width bins over
/// [min, max], dispatched through core/kernels.hpp (scalar or per-lane
/// vectorized per SB_SIMD; identical counts either way).  Edge semantics:
///   - NaN values are dropped, not counted in any bin;
///   - out-of-range values are clamped into the edge bins: v <= min
///     (including -inf) counts in bin 0, v >= max (including +inf) in the
///     last bin — they can only arise from caller-supplied extremes, so
///     clamping keeps total() == non-NaN input size;
///   - a degenerate range (min == max, or inverted max < min) puts every
///     non-NaN value in bin 0.
/// Throws std::invalid_argument when bins == 0.
std::vector<std::uint64_t> histogram_counts(std::span<const double> values,
                                            double min, double max, std::size_t bins);

/// The collective histogram used by Histogram and by the all-in-one
/// baseline: allreduces min/max over the communicator, bins the local
/// values, and sums the counts.  Every rank returns the complete result.
HistogramResult distributed_histogram(const mpi::Communicator& comm,
                                      std::span<const double> local,
                                      std::size_t bins, std::uint64_t step);

/// Appends one histogram in the on-disk text format.
void write_histogram(std::ostream& os, const HistogramResult& h);

/// Parses a file of appended histograms (used by tests and benches).
std::vector<HistogramResult> read_histogram_file(const std::string& path);

/// Newest `# step N` marker in an existing histogram file, or nullopt when
/// the file is missing or holds no step yet.  Lenient (a torn tail never
/// throws): a resuming sink uses it to skip replayed steps whose rows the
/// previous incarnation already wrote, so an input acknowledgement lost in
/// a crash cannot duplicate output.
std::optional<std::uint64_t> last_histogram_step(const std::string& path);

class Histogram : public Component {
public:
    std::string name() const override { return "histogram"; }
    std::string usage() const override {
        return "histogram input-stream-name input-array-name num-bins [output-file]";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        return Ports{{args.str(0, "input-stream-name")}, {}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        Contract c;
        c.known = true;
        if (args.unsigned_integer(2, "num-bins") == 0) {
            c.param_errors.push_back("histogram: num-bins must be positive");
        }
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.exact_rank = 1;
        in.needs_float64 = true;
        c.inputs.push_back(std::move(in));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
