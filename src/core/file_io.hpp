// File endpoint components (paper §VI, future work).
//
// "Introducing new components that write and read from storage as part of a
// workflow can break [the all-components-simultaneous] dependency": these
// two components decouple a workflow in time.  FileWriter drains a stream
// to disk — one self-describing FFS packet per timestep — and FileReader
// replays such a packet sequence as a live stream later, with the original
// shapes, labels, and attributes intact.
//
//   file-writer input-stream-name input-array-name output-path-prefix
//   file-reader input-path-prefix output-stream-name output-array-name
//
// Files are named "<prefix>.<step>.ffs"; the reader replays steps 0,1,2,...
// until the next file is missing.
#pragma once

#include "core/component.hpp"

namespace sb::core {

class FileWriter : public Component {
public:
    std::string name() const override { return "file-writer"; }
    std::string usage() const override {
        return "file-writer input-stream-name input-array-name output-path-prefix";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        return Ports{{args.str(0, "input-stream-name")}, {}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        Contract c;
        c.known = true;
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        c.inputs.push_back(std::move(in));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

class FileReader : public Component {
public:
    std::string name() const override { return "file-reader"; }
    std::string usage() const override {
        return "file-reader input-path-prefix output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        return Ports{{}, {args.str(1, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        Contract c;
        c.known = true;
        OutputContract out;
        out.stream = args.str(1, "output-stream-name");
        out.array = args.str(2, "output-array-name");
        // The replayed packets carry whatever shape/kind/attributes the
        // original stream had — unknowable until the files exist.
        out.rule = OutputContract::Shape::Unknown;
        out.kind = OutputContract::Kind::Unknown;
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

/// Path of a step's packet file.
std::string step_file_path(const std::string& prefix, std::uint64_t step);

}  // namespace sb::core
