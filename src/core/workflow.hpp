// Workflow assembly and execution.
//
// In the paper a workflow is a set of MPI executables launched together by
// one job script (Fig. 8); the components find each other purely through
// stream names, block until their neighbours are ready, and the whole graph
// drains when the driving simulation closes its output stream.  Workflow
// reproduces that: each added instance is a component with a process count
// and its positional arguments; run() launches every instance at once (each
// rank a thread, each instance a communicator) and blocks until the whole
// graph has finished.
//
// If any rank of any instance throws, every stream in the fabric is aborted
// so the remaining components unwind instead of blocking forever, and the
// root-cause exception is rethrown from run().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/registry.hpp"

namespace sb::core {

class Workflow {
public:
    /// `default_options` applies to every output stream opened by the
    /// workflow's components (writer-side buffering depth etc.).
    explicit Workflow(flexpath::Fabric& fabric,
                      flexpath::StreamOptions default_options = {});

    /// Adds an instance of a registered component.  Returns the instance's
    /// stats sink (per-step timings, shared by its ranks), which remains
    /// valid after run().
    std::shared_ptr<StepStats> add(const std::string& component, int nprocs,
                                   std::vector<std::string> args);

    /// Number of instances added.
    std::size_t size() const noexcept { return instances_.size(); }

    /// Total processes across all instances (the paper's resource count).
    int total_procs() const noexcept;

    /// Launches everything, waits for the graph to drain, records the
    /// end-to-end wall time.  Throws the first root-cause failure.
    void run();

    /// End-to-end seconds of the last run() — "from the start of the
    /// simulation to the point when the last histogram of the last timestep
    /// is written" (paper §V.C).
    double elapsed_seconds() const noexcept { return elapsed_; }

    /// Stats sink of instance `i`, in add() order.
    const StepStats& stats(std::size_t i) const { return *instances_.at(i).stats; }

    /// Human-readable description of instance `i` ("select x16").
    std::string describe(std::size_t i) const;

    /// Writes a Chrome trace-event JSON timeline of the last run (one
    /// track per component instance, one lane per rank, one slice per
    /// timestep).  A final "transport" track carries per-stream queue-depth
    /// counter tracks and async slices for backpressure / acquire stalls
    /// recorded by the FlexPath layer during the run.  Load it in
    /// chrome://tracing or Perfetto to see how the stages of the in situ
    /// pipeline overlap — and why a lane is idle.  Call after run().
    void write_trace(const std::string& path) const;

    /// Writes a JSON snapshot of every obs::Registry metric (see
    /// docs/OBSERVABILITY.md for the schema and metric reference).  The
    /// registry is process-wide, so values accumulate across runs unless
    /// obs::Registry::global().reset() is called between them.
    void write_metrics(const std::string& path) const;

    /// The same snapshot as a human-readable aligned table.
    std::string metrics_summary() const;

private:
    struct Instance {
        std::string component;
        int nprocs;
        util::ArgList args;
        std::shared_ptr<StepStats> stats;
    };

    flexpath::Fabric& fabric_;
    flexpath::StreamOptions options_;
    std::vector<Instance> instances_;
    double elapsed_ = 0.0;
    double epoch_ = 0.0;  // steady-clock start of the last run
    bool ran_ = false;
};

}  // namespace sb::core
