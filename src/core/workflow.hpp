// Workflow assembly and execution.
//
// In the paper a workflow is a set of MPI executables launched together by
// one job script (Fig. 8); the components find each other purely through
// stream names, block until their neighbours are ready, and the whole graph
// drains when the driving simulation closes its output stream.  Workflow
// reproduces that: each added instance is a component with a process count
// and its positional arguments; run() launches every instance at once (each
// rank a thread, each instance a communicator) and blocks until the whole
// graph has finished.
//
// If any rank of any instance throws, every stream in the fabric is aborted
// so the remaining components unwind instead of blocking forever, and the
// root-cause exception is rethrown from run().
//
// Supervision (docs/RESILIENCE.md): each instance is its own failure
// domain.  Under RestartPolicy::on_failure a failed instance is relaunched
// in place — its input streams detach and replay un-acknowledged steps, its
// output streams roll back to the last fully assembled step — while the
// rest of the graph keeps running; only a non-restartable (or restart-
// exhausted) failure aborts the fabric.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/fusion.hpp"
#include "core/registry.hpp"
#include "obs/report.hpp"

namespace sb::obs {
class Sampler;
}  // namespace sb::obs

namespace sb::core {

/// Workflow-level static-lint knob: Auto follows the SB_LINT environment
/// gate (unset -> on; "off"/"0"/"false" -> off, the seed behaviour), On/Off
/// pin it for this workflow.  When enabled, run() fail-fasts on fatal
/// wiring defects (dangling inputs, double writers/readers, cycles) with
/// the same diagnostics smartblock_lint prints, instead of deadlocking.
enum class LintMode { Auto, On, Off };

/// Whether (and how often) the workflow relaunches a failed component
/// instance instead of aborting the whole graph.
struct RestartPolicy {
    enum class Mode {
        Never,      // any failure is fatal to the workflow (the seed behaviour)
        OnFailure,  // relaunch the instance, replaying un-acknowledged steps
    };
    Mode mode = Mode::Never;
    /// Restarts allowed per instance (not counting the initial run).
    int max_attempts = 2;
    /// Exponential backoff between relaunches, with deterministic jitter
    /// (0.5x-1.5x, hashed from instance and attempt — reproducible runs).
    double backoff_base_ms = 10.0;
    double backoff_factor = 2.0;
    double backoff_max_ms = 1000.0;

    static RestartPolicy never() { return {}; }
    static RestartPolicy on_failure(int max_attempts = 2) {
        RestartPolicy p;
        p.mode = Mode::OnFailure;
        p.max_attempts = max_attempts;
        return p;
    }
};

/// Thrown by Workflow::run() when several instances failed for distinct
/// reasons: carries the root cause in what() plus every suppressed
/// secondary error (a failure in one component unwinds its neighbours, and
/// those secondary unwinds used to be silently dropped).
class WorkflowError : public std::runtime_error {
public:
    WorkflowError(const std::string& what, std::vector<std::string> suppressed)
        : std::runtime_error(what), suppressed_(std::move(suppressed)) {}
    const std::vector<std::string>& suppressed() const noexcept {
        return suppressed_;
    }

private:
    std::vector<std::string> suppressed_;
};

class Workflow {
public:
    /// `default_options` applies to every output stream opened by the
    /// workflow's components (writer-side buffering depth etc.).
    explicit Workflow(flexpath::Fabric& fabric,
                      flexpath::StreamOptions default_options = {});

    /// Adds an instance of a registered component.  Returns the instance's
    /// stats sink (per-step timings, shared by its ranks), which remains
    /// valid after run().  `line` is the launch-script line the instance
    /// came from (0 = hand-built), used to anchor lint diagnostics.
    std::shared_ptr<StepStats> add(const std::string& component, int nprocs,
                                   std::vector<std::string> args,
                                   std::size_t line = 0);

    /// Number of instances added.
    std::size_t size() const noexcept { return instances_.size(); }

    /// Sets the workflow-wide restart policy (default: RestartPolicy::never,
    /// the fail-fast seed behaviour).  Call before run().
    void set_restart_policy(RestartPolicy policy) { policy_ = policy; }

    /// Per-instance override (instance `i` in add() order); unset instances
    /// use the workflow-wide policy.
    void set_restart_policy(std::size_t i, RestartPolicy policy) {
        instances_.at(i).policy = policy;
    }

    /// Times instance `i` was relaunched during the last run().
    int restarts(std::size_t i) const { return instances_.at(i).restarts; }

    /// Operator-fusion knob (core/fusion.hpp): Auto follows the SB_FUSE
    /// environment gate, On/Off pin it for this workflow.  Call before run().
    void set_fusion(FusionMode mode) { fusion_ = mode; }
    FusionMode fusion() const noexcept { return fusion_; }

    /// Static-lint knob (see LintMode): Auto follows SB_LINT, On/Off pin the
    /// fail-fast wiring check for this workflow.  Call before run().
    void set_lint(LintMode mode) { lint_ = mode; }
    LintMode lint() const noexcept { return lint_; }

    /// The fusion plan run() would execute right now: empty when fusion is
    /// disabled (seed per-component execution), otherwise the maximal fusible
    /// chains over the current instances.  Pure — streams are not touched.
    FusionPlan fusion_plan() const;

    /// Total processes across all instances (the paper's resource count).
    int total_procs() const noexcept;

    /// Launches everything, waits for the graph to drain, records the
    /// end-to-end wall time.  Throws the first root-cause failure.
    void run();

    /// End-to-end seconds of the last run() — "from the start of the
    /// simulation to the point when the last histogram of the last timestep
    /// is written" (paper §V.C).
    double elapsed_seconds() const noexcept { return elapsed_; }

    /// Stats sink of instance `i`, in add() order.
    const StepStats& stats(std::size_t i) const { return *instances_.at(i).stats; }

    /// Human-readable description of instance `i` ("select x16").
    std::string describe(std::size_t i) const;

    /// Writes a Chrome trace-event JSON timeline of the last run (one
    /// track per component instance, one lane per rank, one slice per
    /// timestep).  A final "transport" track carries per-stream queue-depth
    /// counter tracks and async slices for backpressure / acquire stalls
    /// recorded by the FlexPath layer during the run.  Load it in
    /// chrome://tracing or Perfetto to see how the stages of the in situ
    /// pipeline overlap — and why a lane is idle.  Call after run().
    void write_trace(const std::string& path) const;

    /// Writes a JSON snapshot of every obs::Registry metric (see
    /// docs/OBSERVABILITY.md for the schema and metric reference).  The
    /// registry is process-wide, so values accumulate across runs unless
    /// obs::Registry::global().reset() is called between them.
    void write_metrics(const std::string& path) const;

    /// The same snapshot as a human-readable aligned table, with process
    /// uptime and per-counter rates, followed by the critical-path
    /// summary when step spans were recorded.
    std::string metrics_summary() const;

    /// Walks the last run's step timelines (obs::SpanStore) across the
    /// workflow graph and names the limiting instance per step — see
    /// obs/report.hpp.  Call after run(); cached.
    obs::CriticalPathSummary critical_path() const;

    /// Human-readable critical-path report of the last run ("magnitude#0
    /// limits 10/12 steps (83%), median 12.4 ms compute" + per-step
    /// table).  Backs `smartblock_run --report`.
    std::string report() const;

    /// Attaches a metrics sampler whose time series are embedded as the
    /// "timeseries" block of write_metrics().  Not owned; must outlive
    /// write_metrics() calls.  Pass nullptr to detach.
    void attach_sampler(obs::Sampler* sampler) noexcept { sampler_ = sampler; }

    /// The instance label used for Compute spans and trace tracks
    /// ("magnitude#1": component name + '#' + add() index).
    std::string instance_label(std::size_t i) const;

private:
    struct Instance {
        std::string component;
        int nprocs;
        util::ArgList args;
        std::shared_ptr<StepStats> stats;
        std::optional<RestartPolicy> policy;  // overrides the workflow policy
        int restarts = 0;                     // relaunches during the last run
        std::size_t line = 0;                 // launch-script line (0 = none)
    };

    /// Whether the error behind `err` may be recovered by relaunching the
    /// unit (a fused chain's members, or a single instance), and if so, rolls
    /// its external streams back (detach + replay/skip).  Streams internal to
    /// a fused unit never materialize and need no rollback.
    bool try_recover(const std::vector<std::size_t>& members, int attempt,
                     const RestartPolicy& policy, const std::exception_ptr& err,
                     bool another_failed);

    /// Ports of instance `i` ({.known=false} when undeclared or throwing).
    Ports ports_of(std::size_t i) const;

    flexpath::Fabric& fabric_;
    flexpath::StreamOptions options_;
    RestartPolicy policy_;
    FusionMode fusion_ = FusionMode::Auto;
    LintMode lint_ = LintMode::Auto;
    std::vector<Instance> instances_;
    obs::Sampler* sampler_ = nullptr;
    mutable std::optional<obs::CriticalPathSummary> cpath_;  // critical_path() cache
    double elapsed_ = 0.0;
    double epoch_ = 0.0;  // steady-clock start of the last run
    bool ran_ = false;
};

}  // namespace sb::core
