#include "core/magnitude.hpp"

#include <cmath>
#include <optional>
#include <span>

#include "core/kernels.hpp"
#include "util/timer.hpp"

namespace sb::core {

void Magnitude::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(4, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::string out_stream = args.str(2, "output-stream-name");
    const std::string out_array = args.str(3, "output-array-name");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();

    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        if (info.shape.ndim() != 2) {
            throw std::runtime_error("magnitude: '" + in_array + "' must be 2-D, got " +
                                     info.shape.to_string());
        }
        if (info.kind != adios::DataKind::Float64) {
            throw std::runtime_error("magnitude: '" + in_array +
                                     "' must be double-precision");
        }
        const std::uint64_t npoints = info.shape[0];
        const std::uint64_t ncomp = info.shape[1];

        // Partition the data points among the ranks.  When the slab lines up
        // with a single writer block, compute straight off the transport's
        // payload (zero-copy); otherwise fall back to an assembled copy.
        const util::Box in_box = util::partition_along(info.shape, 0, rank, size);
        std::vector<double> owned;
        std::span<const double> vecs;
        if (const auto view = reader.try_read_view<double>(in_array, in_box)) {
            vecs = *view;
        } else {
            owned = reader.read<double>(in_array, in_box);
            vecs = owned;
        }

        const std::uint64_t local_n = in_box.count[0];

        if (!writer) {
            // The output keeps the data-point dimension's label.
            const std::vector<std::string> labels = {
                info.dim_labels.empty() ? std::string{} : info.dim_labels[0]};
            writer.emplace(ctx.fabric, out_stream,
                           output_group("magnitude", out_array, labels), rank, size,
                           ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        writer->set_dimension(dim_names[0], npoints);
        // The vector-component dimension is consumed; its header must not
        // propagate, and neither may the points dimension's header refer to
        // a dimension index that no longer exists.
        propagate_attributes(reader, *writer,
                             AttrRules{in_array, out_array, {0}, {1}});
        const util::Box out_box({in_box.offset[0]}, {local_n});
        // The kernel's output array *is* the transport's pooled step buffer:
        // no staging vector, no copy on publish.
        const std::span<double> mags = writer->put_span<double>(out_array, out_box);
        kernels::magnitude(vecs.data(), local_n, ncomp, mags.data());
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), vecs.size() * sizeof(double),
                    mags.size() * sizeof(double));
        reader.end_step();
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream, output_group("magnitude", out_array, {}),
                       rank, size, ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
