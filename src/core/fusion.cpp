#include "core/fusion.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>

#include "adios/reader.hpp"
#include "adios/writer.hpp"
#include "core/dim_reduce.hpp"
#include "core/histogram.hpp"
#include "core/kernels.hpp"
#include "core/moments.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/pool.hpp"
#include "util/timer.hpp"

namespace sb::core {

bool fusion_enabled_from_env() {
    static const bool enabled = [] {
        const char* v = std::getenv("SB_FUSE");
        if (v == nullptr) return true;
        const std::string s(v);
        return !(s == "off" || s == "0" || s == "false");
    }();
    return enabled;
}

bool fusion_enabled(FusionMode mode) {
    switch (mode) {
        case FusionMode::On:
            return true;
        case FusionMode::Off:
            return false;
        case FusionMode::Auto:
            break;
    }
    return fusion_enabled_from_env();
}

std::size_t FusionPlan::chain_of(std::size_t i) const {
    for (std::size_t c = 0; c < chains.size(); ++c) {
        for (const FusedStage& st : chains[c].stages) {
            if (st.instance == i) return c;
        }
    }
    return npos;
}

// ---- planner --------------------------------------------------------------

namespace {

using Kind = FusedStage::Kind;

bool is_sink(Kind k) { return k == Kind::Histogram || k == Kind::Moments; }

/// Parses one candidate's arguments into a FusedStage, exactly mirroring the
/// standalone component's validation.  Anything that does not parse (unknown
/// component, malformed arguments) simply stays unfused — the standalone run
/// then raises the same error the seed would.
std::optional<FusedStage> parse_stage(const FusionCandidate& c, std::size_t index) {
    FusedStage st;
    st.instance = index;
    st.component = c.component;
    const util::ArgList& a = c.args;
    try {
        if (c.component == "select") {
            st.kind = Kind::Select;
            a.require_at_least(6, "select");
            st.in_stream = a.str(0, "input-stream-name");
            st.in_array = a.str(1, "input-array-name");
            st.dim = a.unsigned_integer(2, "dimension-index");
            st.out_stream = a.str(3, "output-stream-name");
            st.out_array = a.str(4, "output-array-name");
            st.wanted = a.rest(5);
        } else if (c.component == "magnitude") {
            st.kind = Kind::Magnitude;
            a.require_at_least(4, "magnitude");
            st.in_stream = a.str(0, "input-stream-name");
            st.in_array = a.str(1, "input-array-name");
            st.out_stream = a.str(2, "output-stream-name");
            st.out_array = a.str(3, "output-array-name");
        } else if (c.component == "threshold") {
            st.kind = Kind::Threshold;
            a.require_at_least(6, "threshold");
            st.in_stream = a.str(0, "input-stream-name");
            st.in_array = a.str(1, "input-array-name");
            st.tmode = parse_threshold_mode(a.str(2, "mode"));
            st.lo = a.real(3, "lo");
            std::size_t next = 4;
            if (st.tmode == ThresholdMode::Band) {
                a.require_at_least(7, "threshold");
                st.hi = a.real(next++, "hi");
                if (st.hi < st.lo) return std::nullopt;  // run() raises ArgError
            }
            st.out_stream = a.str(next++, "output-stream-name");
            st.out_array = a.str(next++, "output-array-name");
        } else if (c.component == "dim-reduce") {
            st.kind = Kind::DimReduce;
            a.require_at_least(6, "dim-reduce");
            st.in_stream = a.str(0, "input-stream-name");
            st.in_array = a.str(1, "input-array-name");
            st.remove = a.unsigned_integer(2, "dim-to-remove");
            st.grow = a.unsigned_integer(3, "dim-to-grow");
            st.out_stream = a.str(4, "output-stream-name");
            st.out_array = a.str(5, "output-array-name");
        } else if (c.component == "downsample") {
            st.kind = Kind::Downsample;
            a.require_at_least(6, "downsample");
            st.in_stream = a.str(0, "input-stream-name");
            st.in_array = a.str(1, "input-array-name");
            st.dim = a.unsigned_integer(2, "dimension-index");
            st.stride = a.unsigned_integer(3, "stride");
            st.out_stream = a.str(4, "output-stream-name");
            st.out_array = a.str(5, "output-array-name");
            if (st.stride == 0) return std::nullopt;
        } else if (c.component == "histogram") {
            st.kind = Kind::Histogram;
            a.require_at_least(3, "histogram");
            st.in_stream = a.str(0, "input-stream-name");
            st.in_array = a.str(1, "input-array-name");
            st.bins = a.unsigned_integer(2, "num-bins");
            st.out_file = a.size() > 3 ? a.str(3, "output-file")
                                       : "histogram_" + st.in_array + ".txt";
            if (st.bins == 0) return std::nullopt;
        } else if (c.component == "moments") {
            st.kind = Kind::Moments;
            a.require_at_least(2, "moments");
            st.in_stream = a.str(0, "input-stream-name");
            st.in_array = a.str(1, "input-array-name");
            st.out_file = a.size() > 2 ? a.str(2, "output-file")
                                       : "moments_" + st.in_array + ".txt";
        } else {
            return std::nullopt;
        }
    } catch (const util::ArgError&) {
        return std::nullopt;
    }
    // Interior/tail stages read the elided stream as the upstream's output
    // array; the chain link check below enforces the array-name match.
    return st;
}

}  // namespace

FusionPlan plan_fusion(const std::vector<FusionCandidate>& candidates,
                       const std::set<std::string>& barrier_streams) {
    FusionPlan plan;
    const std::size_t n = candidates.size();

    // An opaque component could open any stream, so single-reader /
    // single-writer cannot be proven for anything: no fusion at all.
    for (const FusionCandidate& c : candidates) {
        if (!c.ports.known) {
            plan.notes.push_back("fusion disabled: component '" + c.component +
                                 "' has undeclared ports");
            return plan;
        }
    }

    // Stream endpoint maps over *all* instances (including unfusible ones):
    // a Fork or a second Histogram tapping a stream is a fusion boundary.
    std::map<std::string, std::vector<std::size_t>> writers;
    std::map<std::string, std::vector<std::size_t>> readers;
    for (std::size_t i = 0; i < n; ++i) {
        for (const std::string& s : candidates[i].ports.outputs) writers[s].push_back(i);
        for (const std::string& s : candidates[i].ports.inputs) readers[s].push_back(i);
    }

    std::vector<std::optional<FusedStage>> stage(n);
    for (std::size_t i = 0; i < n; ++i) stage[i] = parse_stage(candidates[i], i);

    // succ[i] = the unique fusible downstream stage of i, when legal.
    std::vector<std::optional<std::size_t>> succ(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!stage[i] || is_sink(stage[i]->kind)) continue;
        const std::string& s = stage[i]->out_stream;
        const auto wit = writers.find(s);
        if (wit == writers.end() || wit->second.size() != 1 || wit->second[0] != i) {
            plan.notes.push_back("stream '" + s + "' has multiple writers: not fused");
            continue;
        }
        const auto rit = readers.find(s);
        if (rit == readers.end() || rit->second.empty()) continue;  // dangling
        if (rit->second.size() != 1) {
            plan.notes.push_back("stream '" + s + "' fans out to " +
                                 std::to_string(rit->second.size()) +
                                 " readers: not fused");
            continue;
        }
        const std::size_t j = rit->second[0];
        if (j == i || !stage[j]) continue;
        if (stage[j]->in_stream != s) continue;
        if (barrier_streams.count(s)) {
            plan.notes.push_back("stream '" + s +
                                 "' has durable history to replay: not fused");
            continue;
        }
        if (candidates[i].nprocs != candidates[j].nprocs) {
            plan.notes.push_back("stream '" + s + "': " +
                                 std::to_string(candidates[i].nprocs) + " -> " +
                                 std::to_string(candidates[j].nprocs) +
                                 " ranks re-distribute: not fused");
            continue;
        }
        if (stage[j]->in_array != stage[i]->out_array) {
            plan.notes.push_back("stream '" + s + "': reader wants array '" +
                                 stage[j]->in_array + "', writer publishes '" +
                                 stage[i]->out_array + "': not fused");
            continue;
        }
        succ[i] = j;
    }

    std::vector<bool> has_pred(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        if (succ[i]) has_pred[*succ[i]] = true;
    }

    std::vector<bool> claimed(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        if (!stage[i] || is_sink(stage[i]->kind) || has_pred[i] || !succ[i]) continue;
        std::vector<std::size_t> members{i};
        bool all_magnitude = stage[i]->kind == Kind::Magnitude;
        std::size_t cur = i;
        while (succ[cur]) {
            const std::size_t j = *succ[cur];
            if (claimed[j]) break;
            const FusedStage& sj = *stage[j];
            if (sj.kind == Kind::Moments && !all_magnitude) {
                // Moments' floating-point sums are partition-order-sensitive;
                // only an all-Magnitude prefix reproduces the unfused
                // partitioning bit for bit (fusion.hpp).
                plan.notes.push_back("moments after non-magnitude stages: not fused");
                break;
            }
            members.push_back(j);
            if (is_sink(sj.kind)) break;
            all_magnitude = all_magnitude && sj.kind == Kind::Magnitude;
            cur = j;
        }
        if (members.size() < 2) continue;
        FusedChain chain;
        for (const std::size_t m : members) {
            chain.stages.push_back(*stage[m]);
            claimed[m] = true;
        }
        plan.chains.push_back(std::move(chain));
    }
    return plan;
}

// ---- executor -------------------------------------------------------------

namespace {

/// A rank's share of one intermediate array.  `box` may be partial along at
/// most the single dimension `partial` (full extent everywhere else); that
/// invariant is rank-uniform by construction, so every gather/repartition
/// decision is taken by all ranks together without a collective.  After
/// Threshold the boxes are rank-ordered ragged intervals of dimension 0 —
/// still "partial in 0".
struct Slab {
    util::NdShape shape;
    util::Box box;
    adios::DataKind kind = adios::DataKind::Float64;
    std::vector<std::string> dim_labels;
    std::size_t partial = 0;
    util::PooledBytes owned;          // pooled backing unless a transport view
    std::span<const std::byte> data;  // always valid while the step is open

    std::span<const double> doubles() const {
        return {reinterpret_cast<const double*>(data.data()),
                data.size() / sizeof(double)};
    }
};

std::string label_or_empty(const std::vector<std::string>& labels, std::size_t d) {
    return d < labels.size() ? labels[d] : std::string{};
}

/// One rank of one fused chain, head stream to tail endpoint.
class ChainRun {
public:
    ChainRun(RunContext& ctx, const FusedChain& chain,
             const std::vector<FusedStageHooks>& hooks)
        : ctx_(ctx),
          chain_(chain),
          hooks_(hooks),
          rank_(ctx.comm.rank()),
          size_(ctx.comm.size()),
          reader_(ctx.fabric, chain.head().in_stream, rank_, size_),
          gathers_(obs::Registry::global().counter(
              "fusion.gather_fallbacks", {{"chain", hooks.front().instance}})) {
        stage_ctx_.reserve(chain.stages.size());
        for (std::size_t k = 0; k < chain.stages.size(); ++k) {
            RunContext sc(ctx.fabric, ctx.comm, hooks[k].stats, ctx.stream_options);
            sc.component = chain.stages[k].component;
            sc.instance = hooks[k].instance;
            sc.attempt = ctx.attempt;
            sc.resume = ctx.resume;
            stage_ctx_.push_back(std::move(sc));
        }
    }

    void run() {
        const FusedStage& tail = chain_.tail();
        if (!chain_.tail_writes_stream() && rank_ == 0) {
            // A restarted (warm or cold) incarnation appends, exactly like
            // the standalone components, and skips steps whose rows the
            // previous incarnation already wrote — an input ack lost in the
            // crash makes the replay at-least-once, never duplicated output.
            const bool append = ctx_.attempt > 0 || ctx_.resume;
            if (tail.kind == Kind::Histogram) {
                if (append) sink_written_ = last_histogram_step(tail.out_file);
                sink_out_.open(tail.out_file,
                               append ? std::ios::app : std::ios::trunc);
                if (!sink_out_) {
                    throw std::runtime_error("histogram: cannot write '" +
                                             tail.out_file + "'");
                }
            } else {
                if (append) sink_written_ = last_moments_step(tail.out_file);
                std::error_code ec;
                const bool has_prior =
                    append &&
                    std::filesystem::file_size(tail.out_file, ec) > 0 && !ec;
                sink_out_.open(tail.out_file,
                               append ? std::ios::app : std::ios::trunc);
                if (!sink_out_) {
                    throw std::runtime_error("moments: cannot write '" +
                                             tail.out_file + "'");
                }
                if (!has_prior) {
                    sink_out_ << "# step count mean variance skewness min max\n";
                }
            }
        }

        for (;;) {
            bool more = false;
            {
                const obs::ScopedActor actor(hooks_.front().instance);
                more = reader_.begin_step();
            }
            if (!more) break;
            const std::uint64_t step = reader_.step();
            attrs_ = AttrSet{reader_.string_attributes(), reader_.double_attributes()};
            slab_ = Slab{};
            for (std::size_t k = 0; k < chain_.stages.size(); ++k) {
                util::WallTimer timer;
                std::uint64_t bytes_in = 0;
                std::uint64_t bytes_out = 0;
                if (k == 0) {
                    // Head reads are attributed to the head instance, so flow
                    // arrows into the chain name the original component.
                    const obs::ScopedActor actor(hooks_.front().instance);
                    apply_stage(k, step, bytes_in, bytes_out);
                } else {
                    apply_stage(k, step, bytes_in, bytes_out);
                }
                record_step(stage_ctx_[k], step, timer.seconds(), bytes_in, bytes_out);
            }
            {
                const obs::ScopedActor actor(hooks_.front().instance);
                reader_.end_step();
            }
        }

        if (chain_.tail_writes_stream()) {
            const obs::ScopedActor actor(hooks_.back().instance);
            if (!writer_) {
                // Empty input stream: the group must still attach and close so
                // end-of-stream propagates downstream (standalone parity).
                writer_.emplace(ctx_.fabric, tail.out_stream,
                                output_group(tail.component, tail.out_array, {}),
                                rank_, size_, ctx_.stream_options);
            }
            writer_->close();
        }
    }

private:
    // ---- data movement ----------------------------------------------------

    /// Assembles the full intermediate on every rank (the executor's escape
    /// hatch when a stage needs data the current partitioning splits).
    void gather_full(Slab& s) {
        const std::size_t elem = ffs::kind_size(s.kind);
        const std::size_t nd = s.shape.ndim();
        // One message: [ndim][offset...][count...][payload].
        mpi::Bytes msg((1 + 2 * nd) * sizeof(std::uint64_t) + s.data.size());
        const auto put_u64 = [&msg](std::size_t slot, std::uint64_t v) {
            std::memcpy(msg.data() + slot * sizeof(std::uint64_t), &v, sizeof(v));
        };
        put_u64(0, nd);
        for (std::size_t d = 0; d < nd; ++d) {
            put_u64(1 + d, s.box.offset[d]);
            put_u64(1 + nd + d, s.box.count[d]);
        }
        if (!s.data.empty()) {
            std::memcpy(msg.data() + (1 + 2 * nd) * sizeof(std::uint64_t),
                        s.data.data(), s.data.size());
        }

        const std::vector<mpi::Bytes> all = ctx_.comm.allgather_bytes(std::move(msg));

        // Peer boxes may not tile the whole shape (ragged Threshold output),
        // so the recycled buffer must be zeroed for bit-identity with a
        // fresh allocation.
        util::PooledBytes full = util::acquire_bytes(s.shape.volume() * elem);
        std::fill(full->begin(), full->end(), std::byte{0});
        const util::Box whole = util::Box::whole(s.shape);
        for (const mpi::Bytes& m : all) {
            std::uint64_t peer_nd = 0;
            std::memcpy(&peer_nd, m.data(), sizeof(peer_nd));
            util::Box b;
            b.offset.resize(peer_nd);
            b.count.resize(peer_nd);
            for (std::size_t d = 0; d < peer_nd; ++d) {
                std::memcpy(&b.offset[d], m.data() + (1 + d) * sizeof(std::uint64_t),
                            sizeof(std::uint64_t));
                std::memcpy(&b.count[d],
                            m.data() + (1 + peer_nd + d) * sizeof(std::uint64_t),
                            sizeof(std::uint64_t));
            }
            if (b.volume() == 0) continue;
            const std::span<const std::byte> payload(
                m.data() + (1 + 2 * peer_nd) * sizeof(std::uint64_t),
                m.size() - (1 + 2 * peer_nd) * sizeof(std::uint64_t));
            util::copy_box(payload, b, *full, whole, b, elem);
        }
        s.owned = std::move(full);
        s.data = *s.owned;
        s.box = whole;
        gathers_.inc();
    }

    /// Re-partitions the slab along `dim` (collective: every rank calls this
    /// under the same rank-uniform condition).
    void repartition(Slab& s, std::size_t dim) {
        gather_full(s);
        const std::size_t elem = ffs::kind_size(s.kind);
        const util::Box box = util::partition_along(s.shape, dim, rank_, size_);
        util::PooledBytes sub = util::acquire_bytes(box.volume() * elem);
        if (box.volume() != 0) util::copy_box(s.data, s.box, *sub, box, box, elem);
        s.owned = std::move(sub);
        s.data = *s.owned;
        s.box = box;
        s.partial = dim;
    }

    /// Head ingest for the slab-reading stages: this rank's partition along
    /// `pdim`, straight off the transport payload when the slab lines up
    /// with one writer block.
    void read_head(const FusedStage& st, std::size_t pdim, std::uint64_t& bytes_in) {
        const adios::VarInfo info = reader_.inq_var(st.in_array);
        Slab s;
        s.shape = info.shape;
        s.kind = info.kind;
        s.dim_labels = info.dim_labels;
        s.box = util::partition_along(info.shape, pdim, rank_, size_);
        s.partial = pdim;
        if (const auto view = reader_.try_read_view_bytes(st.in_array, s.box)) {
            s.data = *view;
        } else {
            s.owned = util::acquire_bytes(s.box.volume() * ffs::kind_size(info.kind));
            reader_.read_bytes(st.in_array, s.box, *s.owned);
            s.data = *s.owned;
        }
        bytes_in = s.data.size();
        slab_ = std::move(s);
    }

    // ---- stages -----------------------------------------------------------

    void apply_stage(std::size_t k, std::uint64_t step, std::uint64_t& bytes_in,
                     std::uint64_t& bytes_out) {
        const FusedStage& st = chain_.stages[k];
        const bool head = k == 0;
        switch (st.kind) {
            case Kind::Select:
                stage_select(st, head, bytes_in);
                break;
            case Kind::Magnitude:
                stage_magnitude(st, head, bytes_in);
                break;
            case Kind::Threshold:
                stage_threshold(st, head, bytes_in);
                break;
            case Kind::DimReduce:
                stage_dim_reduce(st, head, bytes_in);
                break;
            case Kind::Downsample:
                stage_downsample(st, head, bytes_in);
                break;
            case Kind::Histogram:
                stage_histogram(st, step, bytes_in, bytes_out);
                return;
            case Kind::Moments:
                stage_moments(st, step, bytes_in, bytes_out);
                return;
        }
        bytes_out = slab_.data.size();
        if (k + 1 == chain_.stages.size()) emit_tail(st);
    }

    std::vector<std::uint64_t> select_rows(const FusedStage& st,
                                           const util::NdShape& shape) const {
        const auto hit = attrs_.strings.find(header_attr_key(st.in_array, st.dim));
        if (hit == attrs_.strings.end()) {
            throw std::runtime_error(
                "select: stream '" + st.in_stream + "' carries no header for dimension " +
                std::to_string(st.dim) + " of '" + st.in_array + "' (attribute '" +
                header_attr_key(st.in_array, st.dim) + "')");
        }
        const std::vector<std::string>& header = hit->second;
        if (header.size() != shape[st.dim]) {
            throw std::runtime_error("select: header length " +
                                     std::to_string(header.size()) +
                                     " != dimension extent " +
                                     std::to_string(shape[st.dim]));
        }
        std::vector<std::uint64_t> rows;
        rows.reserve(st.wanted.size());
        for (const std::string& w : st.wanted) {
            const auto it = std::find(header.begin(), header.end(), w);
            if (it == header.end()) {
                std::string avail;
                for (const auto& h : header) avail += (avail.empty() ? "" : ", ") + h;
                throw std::runtime_error("select: no row named '" + w +
                                         "' in dimension " + std::to_string(st.dim) +
                                         " (available: " + avail + ")");
            }
            rows.push_back(static_cast<std::uint64_t>(it - header.begin()));
        }
        return rows;
    }

    void stage_select(const FusedStage& st, bool head, std::uint64_t& bytes_in) {
        const std::size_t dim = st.dim;
        if (head) {
            const adios::VarInfo info = reader_.inq_var(st.in_array);
            const util::NdShape shape = info.shape;
            if (dim >= shape.ndim()) {
                throw std::runtime_error("select: dimension-index " +
                                         std::to_string(dim) + " out of range for " +
                                         shape.to_string());
            }
            const std::vector<std::uint64_t> rows = select_rows(st, shape);
            util::NdShape out_shape = shape;
            out_shape[dim] = rows.size();

            // Mirror the standalone partitioning: along the largest other
            // dimension, or across the selection itself on rank-1 input.
            util::Box in_box;
            std::uint64_t j_begin = 0;
            std::uint64_t j_count = rows.size();
            std::size_t partial = 0;
            if (shape.ndim() > 1) {
                partial = pick_partition_dim(shape, {dim});
                in_box = util::partition_along(shape, partial, rank_, size_);
            } else {
                in_box = util::Box::whole(shape);
                const auto [off, cnt] = util::partition_range(rows.size(), rank_, size_);
                j_begin = off;
                j_count = cnt;
            }
            util::Box out_box = in_box;
            out_box.offset[dim] = j_begin;
            out_box.count[dim] = j_count;

            const std::size_t elem = ffs::kind_size(info.kind);
            Slab out;
            out.shape = out_shape;
            out.kind = info.kind;
            out.dim_labels = info.dim_labels;
            out.box = out_box;
            out.partial = partial;
            out.owned = util::acquire_bytes(out_box.volume() * elem);
            std::vector<std::byte> tmp;
            for (std::uint64_t j = j_begin; j < j_begin + j_count; ++j) {
                util::Box row_in = in_box;
                row_in.offset[dim] = rows[j];
                row_in.count[dim] = 1;
                std::span<const std::byte> row;
                if (const auto view = reader_.try_read_view_bytes(st.in_array, row_in)) {
                    row = *view;
                } else {
                    tmp.resize(row_in.volume() * elem);
                    reader_.read_bytes(st.in_array, row_in, tmp);
                    row = tmp;
                }
                bytes_in += row.size();
                util::Box row_out = out_box;
                row_out.offset[dim] = j;
                row_out.count[dim] = 1;
                util::copy_box(row, row_out, *out.owned, out_box, row_out, elem);
            }
            out.data = *out.owned;
            slab_ = std::move(out);
        } else {
            bytes_in = slab_.data.size();
            if (dim >= slab_.shape.ndim()) {
                throw std::runtime_error("select: dimension-index " +
                                         std::to_string(dim) + " out of range for " +
                                         slab_.shape.to_string());
            }
            const std::vector<std::uint64_t> rows = select_rows(st, slab_.shape);
            const std::size_t elem = ffs::kind_size(slab_.kind);
            if (slab_.shape.ndim() > 1) {
                // Selected rows must be whole: re-partition away from `dim`
                // when the stream used to provide that re-distribution.
                if (slab_.partial == dim) {
                    repartition(slab_, pick_partition_dim(slab_.shape, {dim}));
                }
                util::NdShape out_shape = slab_.shape;
                out_shape[dim] = rows.size();
                util::Box out_box = slab_.box;
                out_box.offset[dim] = 0;
                out_box.count[dim] = rows.size();
                Slab out;
                out.shape = out_shape;
                out.kind = slab_.kind;
                out.dim_labels = slab_.dim_labels;
                out.box = out_box;
                out.partial = slab_.partial;
                out.owned = util::acquire_bytes(out_box.volume() * elem);
                std::vector<std::byte> tmp;
                for (std::size_t j = 0; j < rows.size(); ++j) {
                    util::Box row_in = slab_.box;
                    row_in.offset[dim] = rows[j];
                    row_in.count[dim] = 1;
                    tmp.resize(row_in.volume() * elem);
                    util::copy_box(slab_.data, slab_.box, tmp, row_in, row_in, elem);
                    util::Box row_out = out_box;
                    row_out.offset[dim] = j;
                    row_out.count[dim] = 1;
                    // tmp has the row's dense layout; relabel it in output
                    // coordinates (the standalone component does the same).
                    util::copy_box(tmp, row_out, *out.owned, out_box, row_out, elem);
                }
                out.data = *out.owned;
                slab_ = std::move(out);
            } else {
                // Rank-1: every rank needs the whole array to take its share
                // of the selection, like the standalone bounding-box reads.
                if (size_ > 1) gather_full(slab_);
                const auto [j_begin, j_count] =
                    util::partition_range(rows.size(), rank_, size_);
                Slab out;
                out.shape = util::NdShape({static_cast<std::uint64_t>(rows.size())});
                out.kind = slab_.kind;
                out.dim_labels = slab_.dim_labels;
                out.box = util::Box({j_begin}, {j_count});
                out.partial = 0;
                out.owned = util::acquire_bytes(j_count * elem);
                const std::byte* src = slab_.data.data();
                for (std::uint64_t j = 0; j < j_count; ++j) {
                    std::memcpy(out.owned->data() + j * elem,
                                src + rows[j_begin + j] * elem, elem);
                }
                out.data = *out.owned;
                slab_ = std::move(out);
            }
        }
        attrs_ = apply_attr_rules(attrs_, AttrRules{st.in_array, st.out_array, {}, {dim}});
        attrs_.strings[header_attr_key(st.out_array, dim)] = st.wanted;
    }

    void stage_magnitude(const FusedStage& st, bool head, std::uint64_t& bytes_in) {
        if (head) {
            read_head(st, 0, bytes_in);
        } else {
            bytes_in = slab_.data.size();
        }
        if (slab_.shape.ndim() != 2) {
            throw std::runtime_error("magnitude: '" + st.in_array + "' must be 2-D, got " +
                                     slab_.shape.to_string());
        }
        if (slab_.kind != adios::DataKind::Float64) {
            throw std::runtime_error("magnitude: '" + st.in_array +
                                     "' must be double-precision");
        }
        // Every point's component vector must be whole.
        if (slab_.partial != 0) repartition(slab_, 0);

        const std::uint64_t local_n = slab_.box.count[0];
        const std::uint64_t ncomp = slab_.shape[1];
        Slab out;
        out.shape = util::NdShape({slab_.shape[0]});
        out.kind = adios::DataKind::Float64;
        out.dim_labels = {label_or_empty(slab_.dim_labels, 0)};
        out.box = util::Box({slab_.box.offset[0]}, {local_n});
        out.partial = 0;
        out.owned = util::acquire_bytes(local_n * sizeof(double));
        kernels::magnitude(slab_.doubles().data(), local_n, ncomp,
                           reinterpret_cast<double*>(out.owned->data()),
                           kernels::active_schedule());
        out.data = *out.owned;
        attrs_ = apply_attr_rules(attrs_, AttrRules{st.in_array, st.out_array, {0}, {1}});
        slab_ = std::move(out);
    }

    void stage_threshold(const FusedStage& st, bool head, std::uint64_t& bytes_in) {
        if (head) {
            read_head(st, 0, bytes_in);
        } else {
            bytes_in = slab_.data.size();
        }
        if (slab_.shape.ndim() != 1) {
            throw std::runtime_error("threshold: '" + st.in_array + "' must be 1-D, got " +
                                     slab_.shape.to_string());
        }
        if (slab_.kind != adios::DataKind::Float64) {
            throw std::runtime_error("threshold: '" + st.in_array +
                                     "' must be double-precision");
        }
        const std::span<const double> local = slab_.doubles();
        std::vector<double> kept(local.size());
        kept.resize(kernels::threshold_compact(local, st.tmode, st.lo, st.hi,
                                               kept.data(), kernels::active_schedule()));
        // Global layout: ragged rank-ordered intervals, like the standalone
        // exscan/allreduce.  Concatenation order equals global index order
        // under any of the executor's partitionings, so the composed output
        // is bit-identical to the unfused chain's.
        const auto n = static_cast<std::uint64_t>(kept.size());
        const std::uint64_t offset = ctx_.comm.exscan(n, mpi::ReduceOp::Sum);
        const std::uint64_t total = ctx_.comm.allreduce(n, mpi::ReduceOp::Sum);

        Slab out;
        out.shape = util::NdShape({total});
        out.kind = adios::DataKind::Float64;
        out.dim_labels = {label_or_empty(slab_.dim_labels, 0)};
        out.box = util::Box({offset}, {n});
        out.partial = 0;
        out.owned = util::acquire_bytes(kept.size() * sizeof(double));
        if (!kept.empty()) {
            std::memcpy(out.owned->data(), kept.data(), out.owned->size());
        }
        out.data = *out.owned;
        attrs_ = apply_attr_rules(attrs_, AttrRules{st.in_array, st.out_array, {0}, {}});
        attrs_.doubles[st.out_array + ".count"] = static_cast<double>(total);
        slab_ = std::move(out);
    }

    void stage_dim_reduce(const FusedStage& st, bool head, std::uint64_t& bytes_in) {
        if (head) {
            const adios::VarInfo info = reader_.inq_var(st.in_array);
            (void)dim_reduce_shape(info.shape, st.remove, st.grow);  // validate first
            read_head(st, st.grow, bytes_in);
        } else {
            bytes_in = slab_.data.size();
            (void)dim_reduce_shape(slab_.shape, st.remove, st.grow);
            // The removed dimension must be whole on every rank.
            if (slab_.partial == st.remove) repartition(slab_, st.grow);
        }
        const util::NdShape out_shape = dim_reduce_shape(slab_.shape, st.remove, st.grow);
        const std::size_t elem = ffs::kind_size(slab_.kind);
        const std::size_t grow_out = st.grow - (st.remove < st.grow ? 1 : 0);

        Slab out;
        out.shape = out_shape;
        out.kind = slab_.kind;
        out.box = util::Box::whole(out_shape);
        {
            std::size_t j = 0;
            for (std::size_t d = 0; d < slab_.shape.ndim(); ++d) {
                if (d == st.remove) continue;
                if (d == st.grow) {
                    out.box.offset[j] = slab_.box.offset[d] * slab_.shape[st.remove];
                    out.box.count[j] = slab_.box.count[d] * slab_.shape[st.remove];
                } else {
                    out.box.offset[j] = slab_.box.offset[d];
                    out.box.count[j] = slab_.box.count[d];
                }
                out.dim_labels.push_back(label_or_empty(slab_.dim_labels, d));
                ++j;
            }
        }
        out.partial = slab_.partial == st.grow
                          ? grow_out
                          : slab_.partial - (st.remove < slab_.partial ? 1 : 0);
        out.owned = util::acquire_bytes(slab_.data.size());
        dim_reduce_copy(slab_.data, util::NdShape(slab_.box.count), st.remove, st.grow,
                        *out.owned, elem);
        out.data = *out.owned;

        std::vector<std::size_t> dim_map;
        for (std::size_t d = 0; d < slab_.shape.ndim(); ++d) {
            if (d != st.remove) dim_map.push_back(d);
        }
        attrs_ = apply_attr_rules(
            attrs_, AttrRules{st.in_array, st.out_array, dim_map, {st.remove, st.grow}});
        slab_ = std::move(out);
    }

    void stage_downsample(const FusedStage& st, bool head, std::uint64_t& bytes_in) {
        const std::size_t dim = st.dim;
        if (head) {
            const adios::VarInfo info = reader_.inq_var(st.in_array);
            const util::NdShape shape = info.shape;
            if (dim >= shape.ndim()) {
                throw std::runtime_error("downsample: dimension-index " +
                                         std::to_string(dim) + " out of range for " +
                                         shape.to_string());
            }
            const std::uint64_t kept = (shape[dim] + st.stride - 1) / st.stride;
            const auto [k_off, k_cnt] = util::partition_range(kept, rank_, size_);
            const std::size_t elem = ffs::kind_size(info.kind);
            util::NdShape out_shape = shape;
            out_shape[dim] = kept;
            util::Box out_box = util::Box::whole(out_shape);
            out_box.offset[dim] = k_off;
            out_box.count[dim] = k_cnt;
            Slab out;
            out.shape = out_shape;
            out.kind = info.kind;
            out.dim_labels = info.dim_labels;
            out.box = out_box;
            out.partial = dim;
            out.owned = util::acquire_bytes(out_box.volume() * elem);
            for (std::uint64_t j = 0; j < k_cnt; ++j) {
                util::Box row_in = util::Box::whole(shape);
                row_in.offset[dim] = (k_off + j) * st.stride;
                row_in.count[dim] = 1;
                std::vector<std::byte> tmp(row_in.volume() * elem);
                reader_.read_bytes(st.in_array, row_in, tmp);
                bytes_in += tmp.size();
                util::Box row_out = out_box;
                row_out.offset[dim] = k_off + j;
                row_out.count[dim] = 1;
                util::copy_box(tmp, row_out, *out.owned, out_box, row_out, elem);
            }
            out.data = *out.owned;
            slab_ = std::move(out);
        } else {
            bytes_in = slab_.data.size();
            if (dim >= slab_.shape.ndim()) {
                throw std::runtime_error("downsample: dimension-index " +
                                         std::to_string(dim) + " out of range for " +
                                         slab_.shape.to_string());
            }
            const std::uint64_t kept = (slab_.shape[dim] + st.stride - 1) / st.stride;
            const std::size_t elem = ffs::kind_size(slab_.kind);
            // Sampled indices k with off <= k*stride < off+cnt: exact for any
            // tiling, so consecutive ranks' kept ranges tile [0, kept).
            const std::uint64_t off = slab_.box.offset[dim];
            const std::uint64_t cnt = slab_.box.count[dim];
            const std::uint64_t k_lo = (off + st.stride - 1) / st.stride;
            const std::uint64_t k_hi = cnt == 0 ? k_lo : (off + cnt - 1) / st.stride + 1;
            util::NdShape out_shape = slab_.shape;
            out_shape[dim] = kept;
            util::Box out_box = slab_.box;
            out_box.offset[dim] = k_lo;
            out_box.count[dim] = k_hi - k_lo;
            Slab out;
            out.shape = out_shape;
            out.kind = slab_.kind;
            out.dim_labels = slab_.dim_labels;
            out.box = out_box;
            out.partial = slab_.partial;
            out.owned = util::acquire_bytes(out_box.volume() * elem);
            std::vector<std::byte> tmp;
            for (std::uint64_t k = k_lo; k < k_hi; ++k) {
                util::Box row_in = slab_.box;
                row_in.offset[dim] = k * st.stride;
                row_in.count[dim] = 1;
                tmp.resize(row_in.volume() * elem);
                util::copy_box(slab_.data, slab_.box, tmp, row_in, row_in, elem);
                util::Box row_out = out_box;
                row_out.offset[dim] = k;
                row_out.count[dim] = 1;
                util::copy_box(tmp, row_out, *out.owned, out_box, row_out, elem);
            }
            out.data = *out.owned;
            slab_ = std::move(out);
        }
        // The sampled dimension's header shrinks to the kept rows (computed
        // from the input attributes before the rules consume them).
        std::optional<std::vector<std::string>> filtered;
        const auto hit = attrs_.strings.find(header_attr_key(st.in_array, dim));
        if (hit != attrs_.strings.end()) {
            filtered.emplace();
            for (std::uint64_t i = 0; i < hit->second.size(); i += st.stride) {
                filtered->push_back(hit->second[i]);
            }
        }
        attrs_ = apply_attr_rules(attrs_, AttrRules{st.in_array, st.out_array, {}, {dim}});
        if (filtered) {
            attrs_.strings[header_attr_key(st.out_array, dim)] = *filtered;
        }
    }

    void stage_histogram(const FusedStage& st, std::uint64_t step,
                         std::uint64_t& bytes_in, std::uint64_t& bytes_out) {
        bytes_in = slab_.data.size();
        if (slab_.shape.ndim() != 1) {
            throw std::runtime_error("histogram: '" + st.in_array + "' must be 1-D, got " +
                                     slab_.shape.to_string());
        }
        if (slab_.kind != adios::DataKind::Float64) {
            throw std::runtime_error("histogram: '" + st.in_array +
                                     "' must be double-precision");
        }
        const HistogramResult h =
            distributed_histogram(ctx_.comm, slab_.doubles(), st.bins, step);
        if (rank_ == 0 && !(sink_written_ && step <= *sink_written_)) {
            write_histogram(sink_out_, h);
            sink_out_.flush();
        }
        bytes_out = rank_ == 0 ? h.counts.size() * sizeof(std::uint64_t) : 0;
    }

    void stage_moments(const FusedStage& st, std::uint64_t step,
                       std::uint64_t& bytes_in, std::uint64_t& bytes_out) {
        bytes_in = slab_.data.size();
        if (slab_.shape.ndim() != 1) {
            throw std::runtime_error("moments: '" + st.in_array + "' must be 1-D, got " +
                                     slab_.shape.to_string());
        }
        if (slab_.kind != adios::DataKind::Float64) {
            throw std::runtime_error("moments: '" + st.in_array +
                                     "' must be double-precision");
        }
        const MomentsResult m = distributed_moments(ctx_.comm, slab_.doubles(), step);
        if (rank_ == 0 && !(sink_written_ && step <= *sink_written_)) {
            write_moments(sink_out_, m);
            sink_out_.flush();
        }
        bytes_out = rank_ == 0 ? sizeof(MomentsResult) : 0;
    }

    /// Publishes the tail stage's slab on its output stream, with the exact
    /// group definition, dimensions, and attributes the standalone component
    /// would have written.
    void emit_tail(const FusedStage& st) {
        const obs::ScopedActor actor(hooks_.back().instance);
        if (!writer_) {
            writer_.emplace(ctx_.fabric, st.out_stream,
                            output_group(st.component, st.out_array, slab_.dim_labels,
                                         slab_.kind),
                            rank_, size_, ctx_.stream_options);
        }
        writer_->begin_step();
        const auto& dim_names = writer_->group().find(st.out_array)->dimensions;
        for (std::size_t d = 0; d < slab_.shape.ndim(); ++d) {
            writer_->set_dimension(dim_names[d], slab_.shape[d]);
        }
        for (const auto& [key, values] : attrs_.strings) {
            writer_->write_attribute(key, values);
        }
        for (const auto& [key, value] : attrs_.doubles) {
            writer_->write_attribute(key, value);
        }
        if (slab_.owned && slab_.owned->data() == slab_.data.data() &&
            slab_.owned->size() == slab_.data.size()) {
            // The slab's pooled storage itself becomes the published step
            // buffer: the stream retires it to the pool once every reader
            // releases the step.  Zero copy on the tail publish.
            writer_->write_raw(st.out_array, slab_.box, std::move(slab_.owned));
            slab_.data = {};
        } else {
            util::PooledBytes buf = util::acquire_bytes(slab_.data.size());
            if (!slab_.data.empty()) {
                std::memcpy(buf->data(), slab_.data.data(), slab_.data.size());
            }
            writer_->write_raw(st.out_array, slab_.box, std::move(buf));
        }
        writer_->end_step();
    }

    RunContext& ctx_;
    const FusedChain& chain_;
    const std::vector<FusedStageHooks>& hooks_;
    int rank_;
    int size_;
    adios::Reader reader_;
    std::optional<adios::Writer> writer_;
    std::ofstream sink_out_;
    std::optional<std::uint64_t> sink_written_;  // newest step already on disk
    std::vector<RunContext> stage_ctx_;
    obs::Counter& gathers_;
    AttrSet attrs_;
    Slab slab_;
};

}  // namespace

void run_fused_chain(RunContext& ctx, const FusedChain& chain,
                     const std::vector<FusedStageHooks>& hooks) {
    ChainRun(ctx, chain, hooks).run();
}

}  // namespace sb::core
