#include "core/graph.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "core/registry.hpp"

namespace sb::core {

const char* graph_issue_kind_name(GraphIssue::Kind k) {
    switch (k) {
        case GraphIssue::Kind::DanglingInput: return "dangling-input";
        case GraphIssue::Kind::UnconsumedOutput: return "unconsumed-output";
        case GraphIssue::Kind::MultipleWriters: return "multiple-writers";
        case GraphIssue::Kind::MultipleReaders: return "multiple-readers";
        case GraphIssue::Kind::Cycle: return "cycle";
        case GraphIssue::Kind::BadArguments: return "bad-arguments";
    }
    return "?";
}

std::vector<GraphNode> resolve_graph(const std::vector<LaunchEntry>& entries) {
    std::vector<GraphNode> nodes;
    nodes.reserve(entries.size());
    for (const LaunchEntry& e : entries) {
        GraphNode n;
        n.entry = e;
        const auto component = make_component(e.component);  // throws if unknown
        try {
            n.ports = component->ports(util::ArgList(e.args));
        } catch (const util::ArgError&) {
            n.ports = Ports{{}, {}, false};
        }
        nodes.push_back(std::move(n));
    }
    return nodes;
}

namespace {

std::string describe(const GraphNode& n, std::size_t index) {
    return "#" + std::to_string(index + 1) + " " + n.entry.component;
}

}  // namespace

std::vector<GraphIssue> validate_graph(const std::vector<LaunchEntry>& entries) {
    std::vector<GraphIssue> fatal, warnings;

    // Resolve ports, capturing argument errors as issues.
    std::vector<GraphNode> nodes;
    nodes.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        GraphNode n;
        n.entry = entries[i];
        const auto component = make_component(entries[i].component);
        try {
            n.ports = component->ports(util::ArgList(entries[i].args));
        } catch (const util::ArgError& err) {
            n.ports = Ports{{}, {}, false};
            fatal.push_back(GraphIssue{GraphIssue::Kind::BadArguments, true,
                                       describe(n, i) + ": " + err.what()});
        }
        nodes.push_back(std::move(n));
    }

    // Stream usage maps (only over nodes with known ports).
    std::map<std::string, std::vector<std::size_t>> writers, readers;
    bool any_unknown = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].ports.known) {
            any_unknown = true;
            continue;
        }
        for (const auto& s : nodes[i].ports.outputs) writers[s].push_back(i);
        for (const auto& s : nodes[i].ports.inputs) readers[s].push_back(i);
    }

    for (const auto& [stream, who] : writers) {
        if (who.size() > 1) {
            std::string names;
            for (const auto i : who) names += (names.empty() ? "" : ", ") + describe(nodes[i], i);
            fatal.push_back(GraphIssue{GraphIssue::Kind::MultipleWriters, true,
                                       "stream '" + stream + "' written by " + names});
        }
    }
    for (const auto& [stream, who] : readers) {
        if (who.size() > 1) {
            std::string names;
            for (const auto i : who) names += (names.empty() ? "" : ", ") + describe(nodes[i], i);
            fatal.push_back(GraphIssue{GraphIssue::Kind::MultipleReaders, true,
                                       "stream '" + stream + "' read by " + names});
        }
        if (!writers.count(stream) && !any_unknown) {
            fatal.push_back(GraphIssue{
                GraphIssue::Kind::DanglingInput, true,
                "stream '" + stream + "' is read by " + describe(nodes[who[0]], who[0]) +
                    " but nothing writes it (the reader would block forever)"});
        }
    }
    for (const auto& [stream, who] : writers) {
        if (!readers.count(stream) && !any_unknown) {
            warnings.push_back(GraphIssue{
                GraphIssue::Kind::UnconsumedOutput, false,
                "stream '" + stream + "' is written by " + describe(nodes[who[0]], who[0]) +
                    " but nothing reads it (the writer stalls once its buffer fills)"});
        }
    }

    // Cycle detection over component nodes (edge: writer -> reader).
    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (const auto& [stream, rs] : readers) {
        const auto wit = writers.find(stream);
        if (wit == writers.end()) continue;
        for (const auto w : wit->second) {
            for (const auto r : rs) adj[w].push_back(r);
        }
    }
    std::vector<int> state(nodes.size(), 0);  // 0=unvisited 1=in-stack 2=done
    std::vector<std::size_t> stack;
    const std::function<bool(std::size_t)> dfs = [&](std::size_t v) -> bool {
        state[v] = 1;
        stack.push_back(v);
        for (const std::size_t w : adj[v]) {
            if (state[w] == 1) {
                std::string path;
                for (auto it = std::find(stack.begin(), stack.end(), w);
                     it != stack.end(); ++it) {
                    path += describe(nodes[*it], *it) + " -> ";
                }
                fatal.push_back(GraphIssue{GraphIssue::Kind::Cycle, true,
                                           "dependency cycle: " + path +
                                               describe(nodes[w], w)});
                return true;
            }
            if (state[w] == 0 && dfs(w)) return true;
        }
        stack.pop_back();
        state[v] = 2;
        return false;
    };
    for (std::size_t v = 0; v < nodes.size(); ++v) {
        if (state[v] == 0 && dfs(v)) break;  // one cycle report is enough
    }

    fatal.insert(fatal.end(), warnings.begin(), warnings.end());
    return fatal;
}

bool graph_is_runnable(const std::vector<GraphIssue>& issues) {
    for (const auto& i : issues) {
        if (i.fatal) return false;
    }
    return true;
}

std::string dot_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': break;
            default: out += c;
        }
    }
    return out;
}

std::string graph_to_dot(const std::vector<LaunchEntry>& entries) {
    return graph_to_dot(entries, {});
}

std::string graph_to_dot(const std::vector<LaunchEntry>& entries,
                         const std::vector<DotAnnotation>& annotations) {
    const std::vector<GraphNode> nodes = resolve_graph(entries);
    std::ostringstream os;
    os << "digraph smartblock {\n  rankdir=LR;\n  node [shape=box];\n";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        std::string label =
            nodes[i].entry.component + " x" + std::to_string(nodes[i].entry.nprocs);
        std::string color;
        for (const DotAnnotation& a : annotations) {
            if (a.index != i) continue;
            if (!a.note.empty()) label += "\n" + a.note;
            // Error beats warning when both land on one node: red is the
            // lexicographically earlier of the colors we emit, but rely on
            // explicit precedence, not luck — first annotation wins only
            // within the same color rank.
            if (color.empty() || (color != "red" && a.color == "red")) {
                color = a.color;
            }
        }
        os << "  n" << i << " [label=\"" << dot_escape(label) << "\"";
        if (!color.empty()) {
            os << ", style=filled, fillcolor=\"" << dot_escape(color) << "\"";
        }
        os << "];\n";
    }
    // Edges via stream names.
    std::map<std::string, std::vector<std::size_t>> writers;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (const auto& s : nodes[i].ports.outputs) writers[s].push_back(i);
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (const auto& s : nodes[i].ports.inputs) {
            const auto wit = writers.find(s);
            if (wit == writers.end()) {
                os << "  s" << i << "_missing [label=\"" << dot_escape(s)
                   << "?\", shape=ellipse, style=dashed];\n";
                os << "  s" << i << "_missing -> n" << i << ";\n";
                continue;
            }
            for (const auto w : wit->second) {
                os << "  n" << w << " -> n" << i << " [label=\"" << dot_escape(s)
                   << "\"];\n";
            }
        }
    }
    os << "}\n";
    return os.str();
}

}  // namespace sb::core
