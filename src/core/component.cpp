#include "core/component.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sb::core {

double steady_now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void StepStats::record(std::uint64_t step, int rank, double seconds,
                       std::uint64_t bytes_in, std::uint64_t bytes_out) {
    const std::lock_guard lock(mu_);
    samples_.push_back(
        Sample{step, rank, seconds, bytes_in, bytes_out, steady_now_seconds()});
}

std::vector<StepStats::Sample> StepStats::samples() const {
    const std::lock_guard lock(mu_);
    return samples_;
}

std::vector<StepStats::StepRow> StepStats::per_step() const {
    const std::lock_guard lock(mu_);
    std::map<std::uint64_t, StepRow> rows;
    for (const Sample& s : samples_) {
        StepRow& r = rows[s.step];
        r.step = s.step;
        r.nranks += 1;
        r.mean_seconds += s.seconds;  // sum for now; divided below
        r.max_seconds = std::max(r.max_seconds, s.seconds);
        r.bytes_in += s.bytes_in;
        r.bytes_out += s.bytes_out;
    }
    std::vector<StepRow> out;
    out.reserve(rows.size());
    for (auto& [step, r] : rows) {
        r.mean_seconds /= static_cast<double>(r.nranks);
        out.push_back(r);
    }
    return out;
}

double StepStats::mean_step_seconds() const {
    const std::lock_guard lock(mu_);
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const Sample& s : samples_) sum += s.seconds;
    return sum / static_cast<double>(samples_.size());
}

std::uint64_t StepStats::total_bytes_in() const {
    const std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    for (const Sample& s : samples_) n += s.bytes_in;
    return n;
}

std::uint64_t StepStats::total_bytes_out() const {
    const std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    for (const Sample& s : samples_) n += s.bytes_out;
    return n;
}

std::uint64_t StepStats::steps() const {
    const std::lock_guard lock(mu_);
    std::uint64_t hi = 0;
    for (const Sample& s : samples_) hi = std::max(hi, s.step + 1);
    return hi;
}

std::string header_attr_key(const std::string& array, std::size_t dim) {
    return array + ".header." + std::to_string(dim);
}

namespace {

/// If `key` is a header attribute of `array`, returns its dimension index.
std::optional<std::size_t> parse_header_dim(const std::string& key,
                                            const std::string& array) {
    const std::string prefix = array + ".header.";
    if (key.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
    const std::string suffix = key.substr(prefix.size());
    if (suffix.empty() ||
        !std::all_of(suffix.begin(), suffix.end(),
                     [](char c) { return std::isdigit(static_cast<unsigned char>(c)); })) {
        return std::nullopt;
    }
    return std::stoull(suffix);
}

}  // namespace

AttrSet apply_attr_rules(const AttrSet& in, const AttrRules& rules) {
    AttrSet out;
    const std::string in_prefix = rules.in_array + ".";
    for (const auto& [key, values] : in.strings) {
        if (const auto d = parse_header_dim(key, rules.in_array)) {
            if (rules.drop_in_dims.count(*d)) continue;
            if (rules.dim_map.empty()) {
                out.strings[header_attr_key(rules.out_array, *d)] = values;
            } else {
                for (std::size_t j = 0; j < rules.dim_map.size(); ++j) {
                    if (rules.dim_map[j] == *d) {
                        out.strings[header_attr_key(rules.out_array, j)] = values;
                    }
                }
            }
        } else if (key.compare(0, in_prefix.size(), in_prefix) == 0) {
            out.strings[rules.out_array + "." + key.substr(in_prefix.size())] =
                values;
        } else {
            out.strings[key] = values;
        }
    }
    for (const auto& [key, value] : in.doubles) {
        if (key.compare(0, in_prefix.size(), in_prefix) == 0) {
            out.doubles[rules.out_array + "." + key.substr(in_prefix.size())] =
                value;
        } else {
            out.doubles[key] = value;
        }
    }
    return out;
}

void propagate_attributes(const adios::Reader& in, adios::Writer& out,
                          const AttrRules& rules) {
    const AttrSet mapped = apply_attr_rules(
        AttrSet{in.string_attributes(), in.double_attributes()}, rules);
    for (const auto& [key, values] : mapped.strings) out.write_attribute(key, values);
    for (const auto& [key, value] : mapped.doubles) out.write_attribute(key, value);
}

void record_step(const RunContext& ctx, std::uint64_t step, double seconds,
                 std::uint64_t bytes_in, std::uint64_t bytes_out) {
    // Every component's step loop reports through here, which makes it the
    // natural per-step fault point (crash/delay component N at step k).
    fault::hit("component.step", ctx.component);
    if (ctx.stats) ctx.stats->record(step, ctx.comm.rank(), seconds, bytes_in, bytes_out);
    if (!ctx.instance.empty() && obs::enabled()) {
        // Step span: this rank's compute for the step, scoped to the
        // instance label (streams scope the transport segments).
        const double t1 = obs::steady_seconds();
        obs::SpanStore::global().record(ctx.instance, step,
                                        obs::SegmentKind::Compute, t1 - seconds,
                                        t1, ctx.comm.rank());
    }
}

std::size_t pick_partition_dim(const util::NdShape& shape,
                               const std::set<std::size_t>& exclude) {
    std::optional<std::size_t> best;
    for (std::size_t d = 0; d < shape.ndim(); ++d) {
        if (exclude.count(d)) continue;
        if (!best || shape[d] > shape[*best]) best = d;
    }
    if (!best) {
        throw std::invalid_argument("pick_partition_dim: no partitionable dimension in " +
                                    shape.to_string());
    }
    return *best;
}

adios::GroupDef output_group(const std::string& component,
                             const std::string& array_name,
                             const std::vector<std::string>& dim_labels,
                             adios::DataKind kind) {
    adios::GroupDef def;
    def.name = component + "." + array_name;

    // Dimension variable names: the input labels where available and
    // unique, synthesized otherwise — labels keep their meaning downstream
    // (design guideline 2) without ever colliding.
    std::vector<std::string> names;
    names.reserve(dim_labels.size());
    std::set<std::string> seen;
    for (std::size_t i = 0; i < dim_labels.size(); ++i) {
        std::string n = dim_labels[i].empty() ? "d" + std::to_string(i) : dim_labels[i];
        while (!seen.insert(n).second) n += "_" + std::to_string(i);
        names.push_back(std::move(n));
    }
    for (const std::string& n : names) {
        def.vars.push_back(adios::VarSpec{n, adios::DataKind::UInt64, {}});
    }
    def.vars.push_back(adios::VarSpec{array_name, kind, names});
    return def;
}

}  // namespace sb::core
