#include "core/file_io.hpp"

#include <filesystem>
#include <fstream>
#include <optional>

#include "ffs/encode.hpp"
#include "util/timer.hpp"

namespace sb::core {

std::string step_file_path(const std::string& prefix, std::uint64_t step) {
    return prefix + "." + std::to_string(step) + ".ffs";
}

void FileWriter::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(3, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::string prefix = args.str(2, "output-path-prefix");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        // Partition along dim 0: the rank-ordered slabs of a row-major
        // array concatenate back into the full array on rank 0.
        const util::Box box = util::partition_along(info.shape, 0, rank, size);
        const std::size_t elem = ffs::kind_size(info.kind);
        std::vector<std::byte> local(box.volume() * elem);
        reader.read_bytes(in_array, box, local);

        const auto gathered = ctx.comm.allgatherv<std::byte>(local);

        if (rank == 0) {
            std::vector<std::byte> full;
            full.reserve(info.shape.volume() * elem);
            for (const auto& part : gathered) {
                full.insert(full.end(), part.begin(), part.end());
            }

            ffs::Record rec(ffs::TypeDescriptor{"smartblock.file_step", {}});
            rec.add_scalar<std::uint64_t>("step", reader.step());
            rec.add_strings("labels", info.dim_labels);
            rec.add_raw("data", info.kind, info.shape.dims(), std::move(full));
            std::vector<std::string> sattr_names;
            for (const auto& [k, v] : reader.string_attributes()) {
                sattr_names.push_back(k);
                rec.add_strings("attr.s." + k, v);
            }
            rec.add_strings("sattrs", std::move(sattr_names));
            std::vector<std::string> dattr_names;
            for (const auto& [k, v] : reader.double_attributes()) {
                dattr_names.push_back(k);
                rec.add_scalar<double>("attr.d." + k, v);
            }
            rec.add_strings("dattrs", std::move(dattr_names));

            const ffs::Bytes packet = ffs::encode(rec);
            const std::string path = step_file_path(prefix, reader.step());
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) throw std::runtime_error("file-writer: cannot write '" + path + "'");
            out.write(reinterpret_cast<const char*>(packet.data()),
                      static_cast<std::streamsize>(packet.size()));
        }

        record_step(ctx, reader.step(), timer.seconds(), local.size(),
                    rank == 0 ? info.shape.volume() * elem : 0);
        reader.end_step();
    }
}

void FileReader::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(3, usage());
    const std::string prefix = args.str(0, "input-path-prefix");
    const std::string out_stream = args.str(1, "output-stream-name");
    const std::string out_array = args.str(2, "output-array-name");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    std::optional<adios::Writer> writer;

    for (std::uint64_t step = 0;; ++step) {
        // Rank 0 decides whether the next packet exists; all ranks agree.
        int exists = 0;
        if (rank == 0) {
            exists = std::filesystem::exists(step_file_path(prefix, step)) ? 1 : 0;
        }
        exists = ctx.comm.bcast<int>(0, exists);
        if (!exists) break;

        util::WallTimer timer;
        const std::string path = step_file_path(prefix, step);
        std::ifstream in(path, std::ios::binary);
        if (!in) throw std::runtime_error("file-reader: cannot open '" + path + "'");
        const std::string packet((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
        const ffs::Record rec = ffs::decode(std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(packet.data()), packet.size()));

        const ffs::FieldDesc* data_field = rec.descriptor().find("data");
        if (!data_field) {
            throw std::runtime_error("file-reader: packet '" + path +
                                     "' has no 'data' field");
        }
        const util::NdShape shape(data_field->shape);
        if (shape.ndim() == 0) {
            throw std::runtime_error("file-reader: packet '" + path +
                                     "' carries a scalar, expected an array");
        }
        const ffs::Kind kind = data_field->kind;
        const std::vector<std::string> labels = rec.get_strings("labels");
        const std::size_t elem = ffs::kind_size(kind);

        if (!writer) {
            writer.emplace(ctx.fabric, out_stream,
                           output_group("file-reader", out_array, labels, kind), rank,
                           size, ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        for (std::size_t d = 0; d < shape.ndim(); ++d) {
            writer->set_dimension(dim_names[d], shape[d]);
        }
        for (const std::string& k : rec.get_strings("sattrs")) {
            writer->write_attribute(k, rec.get_strings("attr.s." + k));
        }
        for (const std::string& k : rec.get_strings("dattrs")) {
            writer->write_attribute(k, rec.get_scalar<double>("attr.d." + k));
        }

        // Each rank republishes its dim-0 slab (contiguous in the packet).
        const util::Box box = util::partition_along(shape, 0, rank, size);
        const std::uint64_t row_elems =
            shape[0] == 0 ? 0 : shape.volume() / shape[0];
        const std::span<const std::byte> data = rec.raw_bytes("data");
        auto slab = std::make_shared<std::vector<std::byte>>(
            data.begin() + static_cast<std::ptrdiff_t>(box.offset[0] * row_elems * elem),
            data.begin() +
                static_cast<std::ptrdiff_t>((box.offset[0] + box.count[0]) * row_elems * elem));
        writer->write_raw(out_array, box, std::move(slab));
        writer->end_step();

        record_step(ctx, step, timer.seconds(), packet.size(), box.volume() * elem);
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream,
                       output_group("file-reader", out_array, {}), rank, size,
                       ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
