#include "core/contract.hpp"

namespace sb::core {

std::string SymDim::to_string() const {
    if (is_const()) return std::to_string(value);
    return "<" + tag + ">";
}

const char* shape_rule_name(OutputContract::Shape rule) {
    switch (rule) {
        case OutputContract::Shape::Source: return "source";
        case OutputContract::Shape::Identity: return "identity";
        case OutputContract::Shape::SetDim: return "set-dim";
        case OutputContract::Shape::DivideDim: return "divide-dim";
        case OutputContract::Shape::AbsorbDim: return "absorb-dim";
        case OutputContract::Shape::DropDim: return "drop-dim";
        case OutputContract::Shape::Permute: return "permute";
        case OutputContract::Shape::Collapse2Dto1D: return "collapse-2d-to-1d";
        case OutputContract::Shape::Square1D: return "square-1d";
        case OutputContract::Shape::Filter1D: return "filter-1d";
        case OutputContract::Shape::Unknown: return "unknown";
    }
    return "?";
}

}  // namespace sb::core
