// The Heatmap component: an in situ visualization endpoint.
//
//   heatmap input-stream-name input-array-name output-path-prefix [scale]
//
// Runtime analysis in the paper's setting feeds "analysis and visualization
// components" (§I); Heatmap is the minimal visualization endpoint: each
// timestep's 2-D array is rendered to a portable graymap image
// "<prefix>.<step>.pgm" (rows x cols, value-scaled to 0..255 between the
// step's min and max; NaNs render black).  `scale` (default 1) repeats each
// cell scale x scale pixels for small arrays.
//
// Rank 0 renders; the other ranks only contribute their partitions via the
// usual collective gather — the output is tiny next to the input, like
// Histogram's.
#pragma once

#include "core/component.hpp"

namespace sb::core {

/// Renders one 2-D field to 8-bit graymap pixels (row-major rows x cols),
/// scaled so min -> 0 and max -> 255 (all-equal data renders mid-gray,
/// NaN renders 0).  Exposed for tests.
std::vector<std::uint8_t> render_gray(std::span<const double> values,
                                      std::uint64_t rows, std::uint64_t cols,
                                      std::uint64_t scale);

/// Writes a binary PGM (P5) image.
void write_pgm(const std::string& path, std::span<const std::uint8_t> pixels,
               std::uint64_t width, std::uint64_t height);

/// Reads back a P5 PGM (tests); returns pixels and fills width/height.
std::vector<std::uint8_t> read_pgm(const std::string& path, std::uint64_t& width,
                                   std::uint64_t& height);

class Heatmap : public Component {
public:
    std::string name() const override { return "heatmap"; }
    std::string usage() const override {
        return "heatmap input-stream-name input-array-name output-path-prefix [scale]";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        return Ports{{args.str(0, "input-stream-name")}, {}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(3, usage());
        Contract c;
        c.known = true;
        if (args.size() > 3 && args.unsigned_integer(3, "scale") == 0) {
            c.param_errors.push_back("heatmap: scale must be positive");
        }
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.exact_rank = 2;
        in.needs_float64 = true;
        c.inputs.push_back(std::move(in));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
