// The Select component (paper §III.C).
//
//   select input-stream input-array dimension-index
//          output-stream output-array name1 [name2 ...]
//
// Extracts the named rows of one dimension of an n-dimensional array: the
// output has the same rank, with the dimension of interest shrunk to the
// selected rows.  Rows are identified *by name* through the header attribute
// the upstream component attached ("<array>.header.<dim>"), so launch
// scripts select quantities like "vx vy vz" instead of index numbers.
// The filtered header (in selection order) is re-attached on the output;
// every other attribute and dimension label propagates unchanged.
#pragma once

#include "core/component.hpp"

namespace sb::core {

class Select : public Component {
public:
    std::string name() const override { return "select"; }
    std::string usage() const override {
        return "select input-stream-name input-array-name dimension-index "
               "output-stream-name output-array-name name1 [name2 ...]";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(3, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const std::size_t dim = args.unsigned_integer(2, "dimension-index");
        const std::vector<std::string> wanted = args.rest(5);
        Contract c;
        c.known = true;
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.dim_params["dimension-index"] = dim;
        in.min_rank = dim + 1;
        in.need_headers[dim] = wanted;  // rows are selected *by name*
        c.inputs.push_back(std::move(in));
        OutputContract out;
        out.stream = args.str(3, "output-stream-name");
        out.array = args.str(4, "output-array-name");
        out.rule = OutputContract::Shape::SetDim;
        out.dim = dim;
        out.count = wanted.size();
        out.set_headers[dim] = wanted;  // filtered header, selection order
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
