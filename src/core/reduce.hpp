// The Reduce component (paper §VI: "expanding the generic components
// library to include a variety of other analytical operations").
//
//   reduce input-stream-name input-array-name dimension-index op
//          output-stream-name output-array-name
//
// Collapses one dimension of an n-dimensional array with an associative
// reduction: op is one of "sum", "mean", "min", "max".  The output has the
// same rank minus one; every other dimension's label and header propagate.
// Like Dim-Reduce it changes the *shape* of the data so that downstream
// components get the layout they expect — but by aggregating rather than
// re-arranging, e.g. collapsing GTCP's toroidal dimension into per-gridpoint
// mean pressures.
#pragma once

#include <algorithm>

#include "core/component.hpp"

namespace sb::core {

enum class ReduceKind { Sum, Mean, Min, Max };

/// Parses "sum" / "mean" / "min" / "max"; throws util::ArgError otherwise.
ReduceKind parse_reduce_kind(const std::string& s);

/// The kernel, exposed for tests and benches: reduces dimension `dim` of
/// `src` (row-major, shape `in_shape`) into `dst`, which must hold
/// in_shape.volume() / in_shape[dim] doubles.
void reduce_copy(std::span<const double> src, const util::NdShape& in_shape,
                 std::size_t dim, ReduceKind op, std::span<double> dst);

class Reduce : public Component {
public:
    std::string name() const override { return "reduce"; }
    std::string usage() const override {
        return "reduce input-stream-name input-array-name dimension-index "
               "sum|mean|min|max output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(4, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const std::size_t dim = args.unsigned_integer(2, "dimension-index");
        const std::string& op = args.str(3, "op");
        Contract c;
        c.known = true;
        if (op != "sum" && op != "mean" && op != "min" && op != "max") {
            c.param_errors.push_back("reduce: op must be sum|mean|min|max, got '" +
                                     op + "'");
        }
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.min_rank = std::max<std::size_t>(2, dim + 1);  // rank-1 output must be >= 1-D
        in.needs_float64 = true;
        in.dim_params["dimension-index"] = dim;
        c.inputs.push_back(std::move(in));
        OutputContract out;
        out.stream = args.str(4, "output-stream-name");
        out.array = args.str(5, "output-array-name");
        out.rule = OutputContract::Shape::DropDim;
        out.dim = dim;
        out.kind = OutputContract::Kind::Float64;
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
