#include "core/histogram.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/kernels.hpp"
#include "util/timer.hpp"

namespace sb::core {

double HistogramResult::bin_lo(std::size_t b) const {
    const double width = (max - min) / static_cast<double>(counts.size());
    return min + width * static_cast<double>(b);
}

double HistogramResult::bin_hi(std::size_t b) const {
    const double width = (max - min) / static_cast<double>(counts.size());
    return b + 1 == counts.size() ? max : min + width * static_cast<double>(b + 1);
}

std::vector<std::uint64_t> histogram_counts(std::span<const double> values,
                                            double min, double max,
                                            std::size_t bins) {
    if (bins == 0) throw std::invalid_argument("histogram: num-bins must be positive");
    std::vector<std::uint64_t> counts(bins, 0);
    // Edge semantics (NaN dropped, out-of-range clamped into the edge bins,
    // degenerate range -> bin 0) are defined once in the kernel layer; both
    // schedules produce identical counts on these inputs (kernels.hpp).
    kernels::histogram_accumulate(values, min, max, counts,
                                  kernels::active_schedule());
    return counts;
}

HistogramResult distributed_histogram(const mpi::Communicator& comm,
                                      std::span<const double> local,
                                      std::size_t bins, std::uint64_t step) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const double v : local) {
        if (std::isnan(v)) continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    lo = comm.allreduce(lo, mpi::ReduceOp::Min);
    hi = comm.allreduce(hi, mpi::ReduceOp::Max);

    HistogramResult h;
    h.step = step;
    if (!(lo <= hi)) {
        // No finite values anywhere.  The min/max allreduces already ran on
        // every rank, so all ranks agree and take this branch together.
        h.min = 0.0;
        h.max = 0.0;
        h.counts.assign(bins, 0);
        return h;
    }
    h.min = lo;
    h.max = hi;
    const std::vector<std::uint64_t> local_counts = histogram_counts(local, lo, hi, bins);
    h.counts = comm.allreduce_vec<std::uint64_t>(local_counts, mpi::ReduceOp::Sum);
    return h;
}

void write_histogram(std::ostream& os, const HistogramResult& h) {
    // Full round-trip precision: the files are parsed back by tests and by
    // downstream tooling comparing against references.
    const auto old_precision =
        os.precision(std::numeric_limits<double>::max_digits10);
    os << "# step " << h.step << " bins " << h.counts.size() << " min " << h.min
       << " max " << h.max << " total " << h.total() << "\n";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
        os << h.bin_lo(b) << ' ' << h.bin_hi(b) << ' ' << h.counts[b] << "\n";
    }
    os.precision(old_precision);
}

std::optional<std::uint64_t> last_histogram_step(const std::string& path) {
    std::ifstream in(path);
    std::optional<std::uint64_t> last;
    std::string line;
    while (in && std::getline(in, line)) {
        std::istringstream is(line);
        std::string hash, kw;
        std::uint64_t step = 0;
        if (is >> hash >> kw >> step && hash == "#" && kw == "step") {
            if (!last || step > *last) last = step;
        }
    }
    return last;
}

std::vector<HistogramResult> read_histogram_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("histogram: cannot open '" + path + "'");
    std::vector<HistogramResult> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (line[0] == '#') {
            std::istringstream is(line);
            std::string hash, kw;
            HistogramResult h;
            std::size_t bins = 0;
            std::uint64_t total = 0;
            is >> hash >> kw >> h.step;   // "# step N"
            is >> kw >> bins;             // "bins B"
            is >> kw >> h.min;            // "min m"
            is >> kw >> h.max;            // "max M"
            is >> kw >> total;            // "total T"
            if (!is) throw std::runtime_error("histogram: malformed header: " + line);
            h.counts.reserve(bins);
            out.push_back(std::move(h));
        } else {
            if (out.empty()) throw std::runtime_error("histogram: data before header");
            std::istringstream is(line);
            double lo, hi;
            std::uint64_t count;
            if (!(is >> lo >> hi >> count)) {
                throw std::runtime_error("histogram: malformed bin line: " + line);
            }
            out.back().counts.push_back(count);
        }
    }
    return out;
}

void Histogram::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(3, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::size_t bins = args.unsigned_integer(2, "num-bins");
    const std::string out_file = args.size() > 3
                                     ? args.str(3, "output-file")
                                     : "histogram_" + in_array + ".txt";
    if (bins == 0) throw util::ArgError("histogram: num-bins must be positive");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();

    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::ofstream out;
    std::optional<std::uint64_t> written;
    if (rank == 0) {
        // A restarted incarnation appends: steps written before the failure
        // were already force-acknowledged upstream and will not be replayed.
        // Same for a cold restart (ctx.resume) — the acknowledged steps'
        // rows are already in the file from the previous process.  An ack
        // lost in the crash makes the replay at-least-once, so steps the
        // file already holds are skipped instead of duplicated.
        const bool append = ctx.attempt > 0 || ctx.resume;
        if (append) written = last_histogram_step(out_file);
        out.open(out_file, append ? std::ios::app : std::ios::trunc);
        if (!out) throw std::runtime_error("histogram: cannot write '" + out_file + "'");
    }

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        if (info.shape.ndim() != 1) {
            throw std::runtime_error("histogram: '" + in_array + "' must be 1-D, got " +
                                     info.shape.to_string());
        }
        if (info.kind != adios::DataKind::Float64) {
            throw std::runtime_error("histogram: '" + in_array +
                                     "' must be double-precision");
        }

        const util::Box box = util::partition_along(info.shape, 0, rank, size);
        const std::vector<double> local = reader.read<double>(in_array, box);
        const HistogramResult h =
            distributed_histogram(ctx.comm, local, bins, reader.step());

        if (rank == 0 && !(written && reader.step() <= *written)) {
            write_histogram(out, h);
            out.flush();
        }

        record_step(ctx, reader.step(), timer.seconds(), local.size() * sizeof(double),
                    rank == 0 ? h.counts.size() * sizeof(std::uint64_t) : 0);
        reader.end_step();
    }
}

}  // namespace sb::core
