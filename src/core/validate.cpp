#include "core/validate.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sb::core {

void Validate::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(4, usage());
    const std::string stream_a = args.str(0, "stream-a");
    const std::string array_a = args.str(1, "array-a");
    const std::string stream_b = args.str(2, "stream-b");
    const std::string array_b = args.str(3, "array-b");
    const double tolerance = args.size() > 4 ? args.real(4, "tolerance") : 0.0;
    if (tolerance < 0) throw util::ArgError("validate: tolerance must be >= 0");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader ra(ctx.fabric, stream_a, rank, size);
    adios::Reader rb(ctx.fabric, stream_b, rank, size);

    std::uint64_t steps = 0;
    for (;; ++steps) {
        const bool more_a = ra.begin_step();
        const bool more_b = rb.begin_step();
        if (more_a != more_b) {
            throw std::runtime_error("validate: streams end on different steps ('" +
                                     stream_a + "' " + (more_a ? "continues" : "ended") +
                                     " at step " + std::to_string(steps) + ")");
        }
        if (!more_a) break;
        util::WallTimer timer;

        const adios::VarInfo ia = ra.inq_var(array_a);
        const adios::VarInfo ib = rb.inq_var(array_b);
        const auto fail = [&](const std::string& what) -> void {
            throw std::runtime_error("validate: step " + std::to_string(steps) + ": " +
                                     what);
        };
        if (ia.shape != ib.shape) {
            fail("shape mismatch " + ia.shape.to_string() + " vs " +
                 ib.shape.to_string());
        }
        if (ia.kind != ib.kind) fail("element kind mismatch");

        const std::size_t pdim = pick_partition_dim(ia.shape, {});
        const util::Box box = util::partition_along(ia.shape, pdim, rank, size);
        std::uint64_t local_bad = 0;
        if (ia.kind == adios::DataKind::Float64) {
            const auto va = ra.read<double>(array_a, box);
            const auto vb = rb.read<double>(array_b, box);
            for (std::size_t i = 0; i < va.size(); ++i) {
                const bool both_nan = std::isnan(va[i]) && std::isnan(vb[i]);
                if (!both_nan && !(std::abs(va[i] - vb[i]) <= tolerance)) ++local_bad;
            }
        } else {
            const std::size_t elem = ffs::kind_size(ia.kind);
            std::vector<std::byte> ba(box.volume() * elem), bb(ba.size());
            ra.read_bytes(array_a, box, ba);
            rb.read_bytes(array_b, box, bb);
            if (ba != bb) ++local_bad;
        }

        const std::uint64_t bad =
            ctx.comm.allreduce<std::uint64_t>(local_bad, mpi::ReduceOp::Sum);
        if (bad != 0) {
            fail(std::to_string(bad) + " element(s) differ beyond tolerance " +
                 std::to_string(tolerance));
        }

        record_step(ctx, steps, timer.seconds(), 2 * box.volume() * ffs::kind_size(ia.kind),
                    0);
        ra.end_step();
        rb.end_step();
    }
    SB_LOG(Info) << "validate: '" << stream_a << "' == '" << stream_b << "' over "
                 << steps << " step(s)";
}

}  // namespace sb::core
