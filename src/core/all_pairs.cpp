#include "core/all_pairs.hpp"

#include <cmath>
#include <optional>

#include "util/timer.hpp"

namespace sb::core {

void AllPairs::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(4, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::string out_stream = args.str(2, "output-stream-name");
    const std::string out_array = args.str(3, "output-array-name");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        if (info.shape.ndim() != 1) {
            throw std::runtime_error("all-pairs: '" + in_array + "' must be 1-D, got " +
                                     info.shape.to_string());
        }
        if (info.kind != adios::DataKind::Float64) {
            throw std::runtime_error("all-pairs: '" + in_array +
                                     "' must be double-precision");
        }
        const std::uint64_t n = info.shape[0];

        // Every rank needs the whole vector; it is tiny next to the output.
        const std::vector<double> x =
            reader.read<double>(in_array, util::Box::whole(info.shape));

        const util::NdShape out_shape{n, n};
        const util::Box out_box = util::partition_along(out_shape, 0, rank, size);
        std::vector<double> rows(out_box.volume());
        for (std::uint64_t i = 0; i < out_box.count[0]; ++i) {
            const double xi = x[out_box.offset[0] + i];
            for (std::uint64_t j = 0; j < n; ++j) {
                rows[i * n + j] = std::abs(xi - x[j]);
            }
        }

        if (!writer) {
            const std::string label =
                info.dim_labels.empty() ? std::string{} : info.dim_labels[0];
            writer.emplace(ctx.fabric, out_stream,
                           output_group("all-pairs", out_array, {label, label}), rank,
                           size, ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        writer->set_dimension(dim_names[0], n);
        writer->set_dimension(dim_names[1], n);
        propagate_attributes(reader, *writer,
                             AttrRules{in_array, out_array, {0, 0}, {}});
        writer->write<double>(out_array, rows, out_box);
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), x.size() * sizeof(double),
                    rows.size() * sizeof(double));
        reader.end_step();
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream, output_group("all-pairs", out_array, {}),
                       rank, size, ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
