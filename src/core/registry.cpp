#include "core/registry.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "core/all_pairs.hpp"
#include "core/dim_reduce.hpp"
#include "core/downsample.hpp"
#include "core/file_io.hpp"
#include "core/fork.hpp"
#include "core/heatmap.hpp"
#include "core/histogram.hpp"
#include "core/magnitude.hpp"
#include "core/moments.hpp"
#include "core/reduce.hpp"
#include "core/select.hpp"
#include "core/threshold.hpp"
#include "core/transpose.hpp"
#include "core/validate.hpp"

namespace sb::core {

namespace {

struct Registry {
    std::mutex mu;
    std::map<std::string, ComponentFactory> factories;
};

Registry& registry() {
    static Registry r;
    return r;
}

template <typename T>
void register_type() {
    register_component(T{}.name(), [] { return std::make_unique<T>(); });
}

}  // namespace

void register_component(const std::string& name, ComponentFactory factory) {
    Registry& r = registry();
    const std::lock_guard lock(r.mu);
    r.factories[name] = std::move(factory);
}

void register_builtin_components() {
    static const bool once = [] {
        register_type<Select>();
        register_type<Magnitude>();
        register_type<DimReduce>();
        register_type<Histogram>();
        register_type<Fork>();
        register_type<FileWriter>();
        register_type<FileReader>();
        register_type<AllPairs>();
        register_type<Reduce>();
        register_type<Transpose>();
        register_type<Downsample>();
        register_type<Threshold>();
        register_type<Moments>();
        register_type<Validate>();
        register_type<Heatmap>();
        return true;
    }();
    (void)once;
}

std::unique_ptr<Component> make_component(const std::string& name) {
    register_builtin_components();
    Registry& r = registry();
    const std::lock_guard lock(r.mu);
    const auto it = r.factories.find(name);
    if (it == r.factories.end()) {
        std::string known;
        for (const auto& [n, f] : r.factories) known += (known.empty() ? "" : ", ") + n;
        throw std::runtime_error("unknown component '" + name + "' (registered: " +
                                 known + ")");
    }
    return it->second();
}

bool component_registered(const std::string& name) {
    register_builtin_components();
    Registry& r = registry();
    const std::lock_guard lock(r.mu);
    return r.factories.count(name) != 0;
}

std::vector<std::string> component_names() {
    register_builtin_components();
    Registry& r = registry();
    const std::lock_guard lock(r.mu);
    std::vector<std::string> out;
    out.reserve(r.factories.size());
    for (const auto& [n, f] : r.factories) out.push_back(n);
    return out;
}

}  // namespace sb::core
