// The Threshold component.
//
//   threshold input-stream-name input-array-name above|below|band lo [hi]
//             output-stream-name output-array-name
//
// Filters a one-dimensional array by value, emitting only the passing
// elements ("above lo", "below lo", or "band lo hi" inclusive).  Unlike the
// shape-preserving components its output length varies per step: the ranks
// filter their partitions locally and agree on the global layout with one
// allgather of counts, so the output is again a dense 1-D array any
// downstream component can consume.  The pass count also rides on the
// stream as the attribute "<output-array>.count".
#pragma once

#include "core/component.hpp"
#include "core/kernels.hpp"

namespace sb::core {

/// The predicate lives in the kernel layer (scalar and vectorized compaction
/// share it); ThresholdMode keeps the historical component-level name.
using ThresholdMode = kernels::ThresholdOp;

ThresholdMode parse_threshold_mode(const std::string& s);

class Threshold : public Component {
public:
    std::string name() const override { return "threshold"; }
    std::string usage() const override {
        return "threshold input-stream-name input-array-name above|below|band "
               "lo [hi] output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const bool band = args.str(2, "mode") == "band";
        if (band) args.require_at_least(7, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(band ? 5 : 4, "output-stream-name")}};
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
