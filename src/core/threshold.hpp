// The Threshold component.
//
//   threshold input-stream-name input-array-name above|below|band lo [hi]
//             output-stream-name output-array-name
//
// Filters a one-dimensional array by value, emitting only the passing
// elements ("above lo", "below lo", or "band lo hi" inclusive).  Unlike the
// shape-preserving components its output length varies per step: the ranks
// filter their partitions locally and agree on the global layout with one
// allgather of counts, so the output is again a dense 1-D array any
// downstream component can consume.  The pass count also rides on the
// stream as the attribute "<output-array>.count".
#pragma once

#include "core/component.hpp"
#include "core/kernels.hpp"

namespace sb::core {

/// The predicate lives in the kernel layer (scalar and vectorized compaction
/// share it); ThresholdMode keeps the historical component-level name.
using ThresholdMode = kernels::ThresholdOp;

ThresholdMode parse_threshold_mode(const std::string& s);

class Threshold : public Component {
public:
    std::string name() const override { return "threshold"; }
    std::string usage() const override {
        return "threshold input-stream-name input-array-name above|below|band "
               "lo [hi] output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const bool band = args.str(2, "mode") == "band";
        if (band) args.require_at_least(7, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(band ? 5 : 4, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const std::string& mode = args.str(2, "mode");
        const bool band = mode == "band";
        if (band) args.require_at_least(7, usage());
        Contract c;
        c.known = true;
        if (mode != "above" && mode != "below" && mode != "band") {
            c.param_errors.push_back(
                "threshold: mode must be above|below|band, got '" + mode + "'");
        }
        if (band && args.real(4, "hi") < args.real(3, "lo")) {
            c.param_errors.push_back("threshold: band requires lo <= hi");
        }
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.exact_rank = 1;
        in.needs_float64 = true;
        c.inputs.push_back(std::move(in));
        OutputContract out;
        out.stream = args.str(band ? 5 : 4, "output-stream-name");
        out.array = args.str(band ? 6 : 5, "output-array-name");
        out.rule = OutputContract::Shape::Filter1D;
        out.kind = OutputContract::Kind::Float64;
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
