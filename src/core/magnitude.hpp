// The Magnitude component (paper §III.D).
//
//   magnitude input-stream-name input-array-name
//             output-stream-name output-array-name
//
// Computes the Euclidean magnitude of an array of vectors: the input is a
// two-dimensional array where the first dimension spans the data points
// (particles, atoms, ...) and the second spans the components of each
// point's vector; the output is the one-dimensional array of magnitudes.
// Because it always operates on 2-D data, it takes only the stream/array
// names as parameters.
#pragma once

#include "core/component.hpp"

namespace sb::core {

class Magnitude : public Component {
public:
    std::string name() const override { return "magnitude"; }
    std::string usage() const override {
        return "magnitude input-stream-name input-array-name "
               "output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(2, "output-stream-name")}};
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
