// The Magnitude component (paper §III.D).
//
//   magnitude input-stream-name input-array-name
//             output-stream-name output-array-name
//
// Computes the Euclidean magnitude of an array of vectors: the input is a
// two-dimensional array where the first dimension spans the data points
// (particles, atoms, ...) and the second spans the components of each
// point's vector; the output is the one-dimensional array of magnitudes.
// Because it always operates on 2-D data, it takes only the stream/array
// names as parameters.
#pragma once

#include "core/component.hpp"

namespace sb::core {

class Magnitude : public Component {
public:
    std::string name() const override { return "magnitude"; }
    std::string usage() const override {
        return "magnitude input-stream-name input-array-name "
               "output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(2, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        Contract c;
        c.known = true;
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.exact_rank = 2;  // points x vector components, always
        in.needs_float64 = true;
        c.inputs.push_back(std::move(in));
        OutputContract out;
        out.stream = args.str(2, "output-stream-name");
        out.array = args.str(3, "output-array-name");
        out.rule = OutputContract::Shape::Collapse2Dto1D;
        out.kind = OutputContract::Kind::Float64;
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
