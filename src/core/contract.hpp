// Static component contracts (paper §III.A taken literally).
//
// The paper's central claim is that standardized metadata makes components
// composable *without running them*: every component knows, from its
// positional arguments alone, which arrays it consumes and produces, what
// rank and element kind it demands, and how it transforms shapes and the
// "header" attributes of §III.C.  A Contract is that knowledge in
// declarative form — the input to the static analyzer (src/lint), which
// abstract-interprets contracts over the dataflow DAG before any thread
// launches.
//
// Contracts are deliberately symbolic: a source reports exact extents
// computed from its deck ("[slices, gridpoints, 7]"), a transform reports a
// shape *rule* ("absorb dimension 2 into 1"), and anything data-dependent
// (Threshold's pass count, a file-reader's replayed shape) stays opaque.
// The analyzer carries that partial knowledge forward instead of giving up.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sb::core {

/// One symbolic array extent: a compile-time constant, or an opaque value
/// identified by a provenance tag (two opaque extents with the same tag are
/// provably equal; with different tags they are merely unknown).
struct SymDim {
    enum class Kind { Const, Opaque };
    Kind kind = Kind::Const;
    std::uint64_t value = 0;  // Const
    std::string tag;          // Opaque: where the value comes from

    static SymDim constant(std::uint64_t v) { return SymDim{Kind::Const, v, {}}; }
    static SymDim opaque(std::string origin) {
        return SymDim{Kind::Opaque, 0, std::move(origin)};
    }

    bool is_const() const noexcept { return kind == Kind::Const; }
    /// Provably equal extents.
    bool same(const SymDim& o) const {
        if (kind != o.kind) return false;
        return is_const() ? value == o.value : tag == o.tag;
    }
    /// Provably different extents (only two distinct constants qualify).
    bool distinct(const SymDim& o) const {
        return is_const() && o.is_const() && value != o.value;
    }
    /// "128" or "<tag>".
    std::string to_string() const;
};

/// What a component statically requires of one input stream.
struct InputContract {
    std::string stream;
    std::string array;
    /// The exact rank run() insists on (Magnitude: 2, Histogram: 1, ...).
    std::optional<std::size_t> exact_rank;
    /// Minimum rank independent of any dimension parameter (Reduce: 2).
    std::size_t min_rank = 1;
    bool needs_float64 = false;
    /// Dimension-index parameters by usage-line name ("dimension-index" ->
    /// 2): each implies rank > index, and names the parameter in
    /// diagnostics when the index is out of range.
    std::map<std::string, std::size_t> dim_params;
    /// dim -> names that must appear in that dimension's header attribute
    /// ("<array>.header.<dim>", §III.C).  An empty name list requires only
    /// that the header exist.
    std::map<std::size_t, std::vector<std::string>> need_headers;
};

/// How a component derives one output stream from its (first) input.
struct OutputContract {
    std::string stream;
    std::string array;

    enum class Shape {
        Source,         // `shape` below; no input (simulation drivers)
        Identity,       // same shape as the input (Fork branches)
        SetDim,         // shape[dim] = count           (Select)
        DivideDim,      // shape[dim] = ceil(/count)    (Downsample, count=stride)
        AbsorbDim,      // remove dim, multiply into dim2 (Dim-Reduce)
        DropDim,        // remove dim                   (Reduce)
        Permute,        // permute by `perm`            (Transpose)
        Collapse2Dto1D, // (n, m) -> (n)                (Magnitude)
        Square1D,       // (n) -> (n, n)                (All-Pairs)
        Filter1D,       // (n) -> (k), k data-dependent (Threshold)
        Unknown,        // statically unknowable (FileReader, xml overrides)
    };
    Shape rule = Shape::Identity;
    std::size_t dim = 0;        // SetDim / DivideDim / AbsorbDim(remove) / DropDim
    std::size_t dim2 = 0;       // AbsorbDim(grow)
    std::uint64_t count = 0;    // SetDim extent; DivideDim stride
    std::vector<std::size_t> perm;  // Permute
    std::vector<SymDim> shape;      // Source

    enum class Kind { Preserve, Float64, Unknown };
    Kind kind = Kind::Preserve;

    /// Headers this component attaches with statically known names
    /// (a source's quantity names, Select's filtered selection).  Headers
    /// not set here flow through the shape rule exactly as the component's
    /// AttrRules re-key them at runtime.
    std::map<std::size_t, std::vector<std::string>> set_headers;
};

/// A component's full static contract for one argument vector.
struct Contract {
    /// False: the component cannot describe itself statically; the analyzer
    /// treats its streams as opaque (rank variables, unknown headers).
    bool known = false;
    std::vector<InputContract> inputs;
    std::vector<OutputContract> outputs;
    /// Both inputs must agree in shape and kind (Validate).
    bool inputs_equal = false;
    /// Parameter errors run() would only raise once data flows (zero bins,
    /// zero stride, inverted band, ...) — statically certain failures.
    std::vector<std::string> param_errors;
};

/// Human-readable shape-rule name for diagnostics ("absorb-dim", ...).
const char* shape_rule_name(OutputContract::Shape rule);

}  // namespace sb::core
