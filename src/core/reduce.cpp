#include "core/reduce.hpp"

#include <limits>
#include <optional>

#include "util/timer.hpp"

namespace sb::core {

ReduceKind parse_reduce_kind(const std::string& s) {
    if (s == "sum") return ReduceKind::Sum;
    if (s == "mean") return ReduceKind::Mean;
    if (s == "min") return ReduceKind::Min;
    if (s == "max") return ReduceKind::Max;
    throw util::ArgError("reduce: op must be sum|mean|min|max, got '" + s + "'");
}

void reduce_copy(std::span<const double> src, const util::NdShape& in_shape,
                 std::size_t dim, ReduceKind op, std::span<double> dst) {
    if (dim >= in_shape.ndim()) {
        throw std::invalid_argument("reduce: dimension out of range for " +
                                    in_shape.to_string());
    }
    const std::uint64_t n = in_shape[dim];
    if (n == 0) {
        throw std::invalid_argument("reduce: cannot reduce an empty dimension");
    }

    // Split the index space into (outer, reduced, inner) so src reads are
    // strided but systematic: linear = (outer * n + r) * inner + i.
    std::uint64_t outer = 1, inner = 1;
    for (std::size_t d = 0; d < dim; ++d) outer *= in_shape[d];
    for (std::size_t d = dim + 1; d < in_shape.ndim(); ++d) inner *= in_shape[d];
    if (src.size() < outer * n * inner || dst.size() < outer * inner) {
        throw std::invalid_argument("reduce: buffer too small");
    }

    for (std::uint64_t o = 0; o < outer; ++o) {
        double* out = &dst[o * inner];
        const double* first = &src[o * n * inner];
        for (std::uint64_t i = 0; i < inner; ++i) out[i] = first[i];
        for (std::uint64_t r = 1; r < n; ++r) {
            const double* row = &src[(o * n + r) * inner];
            switch (op) {
                case ReduceKind::Sum:
                case ReduceKind::Mean:
                    for (std::uint64_t i = 0; i < inner; ++i) out[i] += row[i];
                    break;
                case ReduceKind::Min:
                    for (std::uint64_t i = 0; i < inner; ++i) {
                        out[i] = std::min(out[i], row[i]);
                    }
                    break;
                case ReduceKind::Max:
                    for (std::uint64_t i = 0; i < inner; ++i) {
                        out[i] = std::max(out[i], row[i]);
                    }
                    break;
            }
        }
        if (op == ReduceKind::Mean) {
            for (std::uint64_t i = 0; i < inner; ++i) {
                out[i] /= static_cast<double>(n);
            }
        }
    }
}

void Reduce::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(6, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::size_t dim = args.unsigned_integer(2, "dimension-index");
    const ReduceKind op = parse_reduce_kind(args.str(3, "op"));
    const std::string out_stream = args.str(4, "output-stream-name");
    const std::string out_array = args.str(5, "output-array-name");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        const util::NdShape& shape = info.shape;
        if (dim >= shape.ndim()) {
            throw std::runtime_error("reduce: dimension-index " + std::to_string(dim) +
                                     " out of range for " + shape.to_string());
        }
        if (shape.ndim() < 2) {
            throw std::runtime_error("reduce: input must have at least 2 dimensions "
                                     "(use moments/histogram for 1-D endpoints)");
        }
        if (info.kind != adios::DataKind::Float64) {
            throw std::runtime_error("reduce: '" + in_array + "' must be double-precision");
        }

        // Each rank reduces a slab covering the full reduced dimension.
        const std::size_t pdim = pick_partition_dim(shape, {dim});
        const util::Box in_box = util::partition_along(shape, pdim, rank, size);
        const std::vector<double> local = reader.read<double>(in_array, in_box);

        const util::NdShape local_shape(in_box.count);
        std::vector<double> reduced(in_box.volume() / std::max<std::uint64_t>(shape[dim], 1));
        if (!local.empty()) {
            reduce_copy(local, local_shape, dim, op, reduced);
        }

        // Output shape/box: the reduced dimension disappears.
        std::vector<std::uint64_t> out_dims, out_off, out_cnt;
        std::vector<std::string> labels;
        std::vector<std::size_t> dim_map;
        for (std::size_t d = 0; d < shape.ndim(); ++d) {
            if (d == dim) continue;
            out_dims.push_back(shape[d]);
            out_off.push_back(in_box.offset[d]);
            out_cnt.push_back(in_box.count[d]);
            labels.push_back(d < info.dim_labels.size() ? info.dim_labels[d]
                                                        : std::string{});
            dim_map.push_back(d);
        }
        const util::NdShape out_shape(out_dims);

        if (!writer) {
            writer.emplace(ctx.fabric, out_stream,
                           output_group("reduce", out_array, labels), rank, size,
                           ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        for (std::size_t d = 0; d < out_shape.ndim(); ++d) {
            writer->set_dimension(dim_names[d], out_shape[d]);
        }
        propagate_attributes(reader, *writer,
                             AttrRules{in_array, out_array, dim_map, {dim}});
        writer->write<double>(out_array, reduced, util::Box(out_off, out_cnt));
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), local.size() * sizeof(double),
                    reduced.size() * sizeof(double));
        reader.end_step();
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream, output_group("reduce", out_array, {}),
                       rank, size, ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
