#include "core/workflow.hpp"

#include <atomic>
#include <fstream>
#include <thread>

#include "flexpath/stream.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sb::core {

Workflow::Workflow(flexpath::Fabric& fabric, flexpath::StreamOptions default_options)
    : fabric_(fabric), options_(default_options) {}

std::shared_ptr<StepStats> Workflow::add(const std::string& component, int nprocs,
                                         std::vector<std::string> args) {
    if (nprocs <= 0) throw std::invalid_argument("Workflow::add: nprocs must be positive");
    if (!component_registered(component)) {
        (void)make_component(component);  // throws with the registered list
    }
    auto stats = std::make_shared<StepStats>();
    instances_.push_back(Instance{component, nprocs, util::ArgList(std::move(args)), stats});
    return stats;
}

int Workflow::total_procs() const noexcept {
    int n = 0;
    for (const auto& i : instances_) n += i.nprocs;
    return n;
}

std::string Workflow::describe(std::size_t i) const {
    const Instance& inst = instances_.at(i);
    return inst.component + " x" + std::to_string(inst.nprocs);
}

void Workflow::write_trace(const std::string& path) const {
    if (!ran_) throw std::logic_error("Workflow::write_trace: run() first");
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("write_trace: cannot write '" + path + "'");
    out << "[\n";
    bool first = true;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        const Instance& inst = instances_[i];
        // Process metadata: name the track after the component instance.
        out << (first ? "" : ",\n") << R"({"ph":"M","name":"process_name","pid":)"
            << i << R"(,"args":{"name":")" << describe(i) << "\"}}";
        first = false;
        for (const StepStats::Sample& s : inst.stats->samples()) {
            const double start_us = (s.t_end - s.seconds - epoch_) * 1e6;
            out << ",\n"
                << R"({"ph":"X","name":"step )" << s.step << R"(","pid":)" << i
                << R"(,"tid":)" << s.rank << R"(,"ts":)" << start_us << R"(,"dur":)"
                << s.seconds * 1e6 << R"(,"args":{"bytes_in":)" << s.bytes_in
                << R"(,"bytes_out":)" << s.bytes_out << "}}";
        }
    }
    out << "\n]\n";
}

void Workflow::run() {
    if (ran_) throw std::logic_error("Workflow::run: already ran (build a new workflow)");
    if (instances_.empty()) throw std::logic_error("Workflow::run: no instances added");
    ran_ = true;

    util::WallTimer timer;
    epoch_ = steady_now_seconds();
    std::vector<std::exception_ptr> errors(instances_.size());
    std::atomic<bool> failed{false};

    {
        std::vector<std::jthread> drivers;
        drivers.reserve(instances_.size());
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            drivers.emplace_back([this, i, &errors, &failed] {
                const Instance& inst = instances_[i];
                try {
                    mpi::run_ranks(inst.nprocs, [&](mpi::Communicator& comm) {
                        auto component = make_component(inst.component);
                        RunContext ctx{fabric_, comm, inst.stats.get(), options_};
                        component->run(ctx, inst.args);
                    });
                } catch (...) {
                    errors[i] = std::current_exception();
                    failed.store(true);
                    // Unblock the rest of the graph: every stream wakes its
                    // waiters with StreamAborted.
                    fabric_.abort_all();
                    SB_LOG(Error) << "workflow: instance '" << inst.component
                                  << "' failed; aborting fabric";
                }
            });
        }
    }  // all drivers join

    elapsed_ = timer.seconds();

    if (failed.load()) {
        // Prefer a root-cause error over secondary StreamAborted unwinds.
        std::exception_ptr first;
        for (const auto& e : errors) {
            if (!e) continue;
            if (!first) first = e;
            try {
                std::rethrow_exception(e);
            } catch (const flexpath::StreamAborted&) {
            } catch (...) {
                std::rethrow_exception(e);
            }
        }
        std::rethrow_exception(first);
    }
}

}  // namespace sb::core
