#include "core/workflow.hpp"

#include <atomic>
#include <fstream>
#include <thread>

#include "check/check.hpp"
#include "flexpath/stream.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sb::core {

Workflow::Workflow(flexpath::Fabric& fabric, flexpath::StreamOptions default_options)
    : fabric_(fabric), options_(default_options) {}

std::shared_ptr<StepStats> Workflow::add(const std::string& component, int nprocs,
                                         std::vector<std::string> args) {
    if (nprocs <= 0) throw std::invalid_argument("Workflow::add: nprocs must be positive");
    if (!component_registered(component)) {
        (void)make_component(component);  // throws with the registered list
    }
    auto stats = std::make_shared<StepStats>();
    instances_.push_back(Instance{component, nprocs, util::ArgList(std::move(args)), stats});
    return stats;
}

int Workflow::total_procs() const noexcept {
    int n = 0;
    for (const auto& i : instances_) n += i.nprocs;
    return n;
}

std::string Workflow::describe(std::size_t i) const {
    const Instance& inst = instances_.at(i);
    return inst.component + " x" + std::to_string(inst.nprocs);
}

void Workflow::write_trace(const std::string& path) const {
    if (!ran_) throw std::logic_error("Workflow::write_trace: run() first");
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("write_trace: cannot write '" + path + "'");
    out << "[\n";
    bool first = true;
    const auto emit = [&](const std::string& event) {
        out << (first ? "" : ",\n") << event;
        first = false;
    };
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        const Instance& inst = instances_[i];
        // Process metadata: name the track after the component instance.
        emit(R"({"ph":"M","name":"process_name","pid":)" + std::to_string(i) +
             R"(,"args":{"name":")" + obs::json_escape(describe(i)) + "\"}}");
        for (const StepStats::Sample& s : inst.stats->samples()) {
            const double start_us = (s.t_end - s.seconds - epoch_) * 1e6;
            emit(R"({"ph":"X","name":"step )" + std::to_string(s.step) +
                 R"(","pid":)" + std::to_string(i) + R"(,"tid":)" +
                 std::to_string(s.rank) + R"(,"ts":)" + obs::json_number(start_us) +
                 R"(,"dur":)" + obs::json_number(s.seconds * 1e6) +
                 R"(,"args":{"bytes_in":)" + std::to_string(s.bytes_in) +
                 R"(,"bytes_out":)" + std::to_string(s.bytes_out) + "}}");
        }
    }

    // Transport track: queue-depth counter tracks and stall slices recorded
    // by the FlexPath layer during this run (filtered by the run epoch so a
    // previous run in the same process doesn't leak in).
    const auto events = obs::TraceLog::global().events_after(epoch_);
    if (!events.empty()) {
        const std::size_t pid = instances_.size();
        emit(R"({"ph":"M","name":"process_name","pid":)" + std::to_string(pid) +
             R"(,"args":{"name":"transport"}})");
        std::uint64_t async_id = 0;
        for (const obs::TraceEvent& ev : events) {
            const std::string name =
                obs::json_escape(ev.name + " " + ev.stream);
            const std::string ts = obs::json_number((ev.t0 - epoch_) * 1e6);
            if (ev.kind == obs::TraceEvent::Kind::Counter) {
                emit(R"({"ph":"C","name":")" + name + R"(","pid":)" +
                     std::to_string(pid) + R"(,"ts":)" + ts +
                     R"(,"args":{"value":)" + obs::json_number(ev.value) + "}}");
            } else {
                const std::string common =
                    R"(,"cat":")" + obs::json_escape(ev.category) +
                    R"(","name":")" + name + R"(","pid":)" + std::to_string(pid) +
                    R"(,"tid":0,"id":)" + std::to_string(async_id++);
                emit(R"({"ph":"b")" + common + R"(,"ts":)" + ts + "}");
                emit(R"({"ph":"e")" + common + R"(,"ts":)" +
                     obs::json_number((ev.t1 - epoch_) * 1e6) + "}");
            }
        }
    }
    out << "\n]\n";
}

void Workflow::write_metrics(const std::string& path) const {
    if (!ran_) throw std::logic_error("Workflow::write_metrics: run() first");
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("write_metrics: cannot write '" + path + "'");
    obs::write_metrics_json(out, obs::Registry::global().snapshot());
}

std::string Workflow::metrics_summary() const {
    return obs::format_metrics_table(obs::Registry::global().snapshot());
}

void Workflow::run() {
    if (ran_) throw std::logic_error("Workflow::run: already ran (build a new workflow)");
    if (instances_.empty()) throw std::logic_error("Workflow::run: no instances added");
    ran_ = true;

    util::WallTimer timer;
    epoch_ = steady_now_seconds();
    std::vector<std::exception_ptr> errors(instances_.size());
    std::atomic<bool> failed{false};

    {
        std::vector<std::jthread> drivers;
        drivers.reserve(instances_.size());
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            drivers.emplace_back([this, i, &errors, &failed] {
                const Instance& inst = instances_[i];
                try {
                    // Label the communicator with the instance index:
                    // describe() can collide when a component appears twice.
                    mpi::run_ranks(
                        inst.nprocs,
                        [&](mpi::Communicator& comm) {
                            auto component = make_component(inst.component);
                            RunContext ctx{fabric_, comm, inst.stats.get(), options_};
                            component->run(ctx, inst.args);
                        },
                        inst.component + "#" + std::to_string(i));
                } catch (...) {
                    errors[i] = std::current_exception();
                    failed.store(true);
                    // Unblock the rest of the graph: every stream wakes its
                    // waiters with StreamAborted.
                    fabric_.abort_all();
                    SB_LOG(Error) << "workflow: instance '" << inst.component
                                  << "' failed; aborting fabric";
                }
            });
        }
    }  // all drivers join

    elapsed_ = timer.seconds();

    if (check::enabled()) {
        const auto diags = check::diagnostics();
        if (!diags.empty()) {
            SB_LOG(Warn) << "workflow: sb::check recorded " << diags.size()
                         << " diagnostic(s) during this run (see earlier "
                            "sb::check log lines)";
        }
    }

    if (failed.load()) {
        // Prefer a root-cause error over secondary StreamAborted unwinds.
        std::exception_ptr first;
        for (const auto& e : errors) {
            if (!e) continue;
            if (!first) first = e;
            try {
                std::rethrow_exception(e);
            } catch (const flexpath::StreamAborted&) {
            } catch (...) {
                std::rethrow_exception(e);
            }
        }
        std::rethrow_exception(first);
    }
}

}  // namespace sb::core
