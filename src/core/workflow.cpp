#include "core/workflow.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <set>
#include <thread>

#include "check/check.hpp"
#include "core/launch_script.hpp"
#include "fault/fault.hpp"
#include "flexpath/stream.hpp"
#include "lint/lint.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sb::core {

Workflow::Workflow(flexpath::Fabric& fabric, flexpath::StreamOptions default_options)
    : fabric_(fabric), options_(default_options) {}

std::shared_ptr<StepStats> Workflow::add(const std::string& component, int nprocs,
                                         std::vector<std::string> args,
                                         std::size_t line) {
    if (nprocs <= 0) throw std::invalid_argument("Workflow::add: nprocs must be positive");
    if (!component_registered(component)) {
        (void)make_component(component);  // throws with the registered list
    }
    auto stats = std::make_shared<StepStats>();
    instances_.push_back(
        Instance{component, nprocs, util::ArgList(std::move(args)), stats, {}, 0, line});
    return stats;
}

int Workflow::total_procs() const noexcept {
    int n = 0;
    for (const auto& i : instances_) n += i.nprocs;
    return n;
}

std::string Workflow::describe(std::size_t i) const {
    const Instance& inst = instances_.at(i);
    return inst.component + " x" + std::to_string(inst.nprocs);
}

std::string Workflow::instance_label(std::size_t i) const {
    return instances_.at(i).component + "#" + std::to_string(i);
}

Ports Workflow::ports_of(std::size_t i) const {
    const Instance& inst = instances_.at(i);
    try {
        return make_component(inst.component)->ports(inst.args);
    } catch (...) {
        return Ports{{}, {}, false};
    }
}

FusionPlan Workflow::fusion_plan() const {
    if (!fusion_enabled(fusion_)) return {};
    std::vector<FusionCandidate> candidates;
    candidates.reserve(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        candidates.push_back(FusionCandidate{instances_[i].component,
                                             instances_[i].nprocs, instances_[i].args,
                                             ports_of(i)});
    }
    // A stream with on-disk durable history is a fusion barrier: eliding it
    // would skip the replay a cold-restarted or late-joining reader resumes
    // from (the fused unit would pick up at the *input* stream's acked
    // cursor instead).  Fresh runs have no segments yet, so fusion — which
    // never materializes the interior stream — is unaffected.
    std::set<std::string> barriers;
    if (durable::resolve_enabled(options_.durable)) {
        for (const FusionCandidate& c : candidates) {
            for (const std::string& s : c.ports.outputs) {
                if (durable::history_exists(options_.durable.dir, s)) {
                    barriers.insert(s);
                }
            }
        }
    }
    return plan_fusion(candidates, barriers);
}

void Workflow::write_trace(const std::string& path) const {
    if (!ran_) throw std::logic_error("Workflow::write_trace: run() first");
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("write_trace: cannot write '" + path + "'");
    out << "[\n";
    bool first = true;
    const auto emit = [&](const std::string& event) {
        out << (first ? "" : ",\n") << event;
        first = false;
    };
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        const Instance& inst = instances_[i];
        // Process metadata: name the track after the component instance.
        emit(R"({"ph":"M","name":"process_name","pid":)" + std::to_string(i) +
             R"(,"args":{"name":")" + obs::json_escape(describe(i)) + "\"}}");
        for (const StepStats::Sample& s : inst.stats->samples()) {
            const double start_us = (s.t_end - s.seconds - epoch_) * 1e6;
            emit(R"({"ph":"X","name":"step )" + std::to_string(s.step) +
                 R"(","pid":)" + std::to_string(i) + R"(,"tid":)" +
                 std::to_string(s.rank) + R"(,"ts":)" + obs::json_number(start_us) +
                 R"(,"dur":)" + obs::json_number(s.seconds * 1e6) +
                 R"(,"args":{"bytes_in":)" + std::to_string(s.bytes_in) +
                 R"(,"bytes_out":)" + std::to_string(s.bytes_out) + "}}");
        }
    }

    // Flow events: one arrow per (stream, step) from the producing
    // instance's step slice to the consuming instance's, so a viewer can
    // follow one step through the pipeline.  Chrome binds "s"/"f" flow
    // endpoints to the slice enclosing (pid, tid, ts), so the timestamps
    // are nudged just inside the slices (end of producer, start of
    // consumer).
    {
        std::map<std::string, std::size_t> producer_of;
        std::map<std::string, std::size_t> consumer_of;
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            const Ports ports = ports_of(i);
            if (!ports.known) continue;
            for (const std::string& s : ports.outputs) producer_of.emplace(s, i);
            for (const std::string& s : ports.inputs) consumer_of.emplace(s, i);
        }
        // One representative slice per (instance, step): the lowest rank.
        std::vector<std::map<std::uint64_t, StepStats::Sample>> rep(
            instances_.size());
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            for (const StepStats::Sample& s : instances_[i].stats->samples()) {
                const auto it = rep[i].find(s.step);
                if (it == rep[i].end() || s.rank < it->second.rank) {
                    rep[i][s.step] = s;
                }
            }
        }
        std::uint64_t flow_id = 0;
        for (const auto& [stream, pi] : producer_of) {
            const auto ci = consumer_of.find(stream);
            if (ci == consumer_of.end()) continue;
            // Anchor the arrow tail at the publish instant — the Produce
            // span's end, recorded just before the writer submits — when
            // this run recorded spans.  The consumer's acquire is causally
            // after the submit, so the arrow always points forward in time;
            // the producer's *slice* keeps running past the push (ack
            // bookkeeping), so the slice end may postdate the consumer's
            // slice start under pipelining.
            std::map<std::uint64_t, std::map<int, double>> publish_t;
            for (const obs::StepTimeline& tl :
                 obs::SpanStore::global().timelines(stream, epoch_)) {
                for (const obs::StepSegment& seg : tl.segments) {
                    if (seg.kind != obs::SegmentKind::Produce) continue;
                    double& slot = publish_t[tl.step][seg.rank];
                    slot = std::max(slot, seg.t1);
                }
            }
            for (const auto& [step, ps] : rep[pi]) {
                const auto cs = rep[ci->second].find(step);
                if (cs == rep[ci->second].end()) continue;
                // No recorded publish instant (SB_METRICS=off, or the step
                // aged out of the span window): skip the arrow rather than
                // guess from slice ends, which can point backwards under
                // pipelining.
                const auto pstep = publish_t.find(step);
                if (pstep == publish_t.end()) continue;
                const auto prank = pstep->second.find(ps.rank);
                if (prank == pstep->second.end()) continue;
                const std::string fname =
                    obs::json_escape(stream + " step " + std::to_string(step));
                const std::string id = std::to_string(flow_id++);
                const double p_end_us = (ps.t_end - epoch_) * 1e6;
                const double p_nudge = std::min(ps.seconds * 1e6, 1.0) / 2;
                // Clamped inside the slice so the viewer still binds the
                // endpoint to the producer's step box.
                const double start_us = (ps.t_end - ps.seconds - epoch_) * 1e6;
                const double p_ts =
                    std::clamp((prank->second - epoch_) * 1e6,
                               start_us + p_nudge, p_end_us - p_nudge);
                const double c_start_us =
                    (cs->second.t_end - cs->second.seconds - epoch_) * 1e6;
                const double c_ts =
                    c_start_us + std::min(cs->second.seconds * 1e6, 1.0) / 2;
                emit(R"({"ph":"s","cat":"step-flow","name":")" + fname +
                     R"(","pid":)" + std::to_string(pi) + R"(,"tid":)" +
                     std::to_string(ps.rank) + R"(,"ts":)" +
                     obs::json_number(p_ts) + R"(,"id":)" + id + "}");
                emit(R"({"ph":"f","bp":"e","cat":"step-flow","name":")" + fname +
                     R"(","pid":)" + std::to_string(ci->second) + R"(,"tid":)" +
                     std::to_string(cs->second.rank) + R"(,"ts":)" +
                     obs::json_number(c_ts) + R"(,"id":)" + id + "}");
            }
        }
    }

    // Transport track: queue-depth counter tracks and stall slices recorded
    // by the FlexPath layer during this run (filtered by the run epoch so a
    // previous run in the same process doesn't leak in).
    const auto events = obs::TraceLog::global().events_after(epoch_);
    if (!events.empty()) {
        const std::size_t pid = instances_.size();
        emit(R"({"ph":"M","name":"process_name","pid":)" + std::to_string(pid) +
             R"(,"args":{"name":"transport"}})");
        std::uint64_t async_id = 0;
        for (const obs::TraceEvent& ev : events) {
            const std::string name =
                obs::json_escape(ev.name + " " + ev.stream);
            const std::string ts = obs::json_number((ev.t0 - epoch_) * 1e6);
            if (ev.kind == obs::TraceEvent::Kind::Counter) {
                emit(R"({"ph":"C","name":")" + name + R"(","pid":)" +
                     std::to_string(pid) + R"(,"ts":)" + ts +
                     R"(,"args":{"value":)" + obs::json_number(ev.value) + "}}");
            } else {
                const std::string common =
                    R"(,"cat":")" + obs::json_escape(ev.category) +
                    R"(","name":")" + name + R"(","pid":)" + std::to_string(pid) +
                    R"(,"tid":0,"id":)" + std::to_string(async_id++);
                emit(R"({"ph":"b")" + common + R"(,"ts":)" + ts +
                     (ev.id ? R"(,"args":{"step":)" + std::to_string(ev.id) + "}"
                            : std::string{}) +
                     "}");
                emit(R"({"ph":"e")" + common + R"(,"ts":)" +
                     obs::json_number((ev.t1 - epoch_) * 1e6) + "}");
            }
        }
    }
    out << "\n]\n";
}

void Workflow::write_metrics(const std::string& path) const {
    if (!ran_) throw std::logic_error("Workflow::write_metrics: run() first");
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("write_metrics: cannot write '" + path + "'");
    std::string extra =
        "\"critical_path\": " + obs::critical_path_to_json(critical_path());
    if (sampler_) {
        extra += ",\n  \"timeseries\": " +
                 obs::timeseries_to_json(sampler_->snapshot(), sampler_->interval_ms());
    }
    obs::write_metrics_json(out, obs::Registry::global().snapshot(), extra);
}

std::string Workflow::metrics_summary() const {
    auto& reg = obs::Registry::global();
    std::string out = obs::format_metrics_table(reg.snapshot(), reg.uptime_seconds());
    if (ran_) {
        const obs::CriticalPathSummary cp = critical_path();
        if (cp.steps > 0) {
            out += "\nworkflow.critical_path\n";
            out += obs::format_critical_path(cp);
        }
    }
    return out;
}

obs::CriticalPathSummary Workflow::critical_path() const {
    if (!ran_) throw std::logic_error("Workflow::critical_path: run() first");
    if (cpath_) return *cpath_;
    auto& store = obs::SpanStore::global();
    // No step spans for this run (SB_METRICS=off): report "nothing
    // recorded" rather than attributing from the bare StepStats compute
    // times, which without the transport waits would misname whichever
    // instance happens to be slowest as the limiter.
    bool any_spans = false;
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        if (!store.timelines(instance_label(i), epoch_).empty()) {
            any_spans = true;
            break;
        }
    }
    if (!any_spans) {
        cpath_ = obs::CriticalPathSummary{};
        return *cpath_;
    }
    std::vector<obs::InstanceSteps> data;
    data.reserve(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        obs::InstanceSteps is;
        is.instance = instance_label(i);
        const Ports ports = ports_of(i);
        if (ports.known) {
            is.inputs = ports.inputs;
            is.outputs = ports.outputs;
        }
        // Kernel time per step: communicator completion time (max over
        // ranks) from the instance's stats sink.
        std::map<std::uint64_t, obs::InstanceSteps::Step> steps;
        for (const StepStats::StepRow& row : instances_[i].stats->per_step()) {
            obs::InstanceSteps::Step& st = steps[row.step];
            st.step = row.step;
            st.compute = row.max_seconds;
        }
        // Transport waits per step from this run's span timelines (max
        // over the segments — i.e. over the recording ranks — of a step).
        const auto merge = [&](const std::vector<std::string>& streams,
                               obs::SegmentKind kind, bool into_wait_in) {
            for (const std::string& name : streams) {
                for (const obs::StepTimeline& tl : store.timelines(name, epoch_)) {
                    double worst = 0.0;
                    for (const obs::StepSegment& seg : tl.segments) {
                        if (seg.kind == kind) {
                            worst = std::max(worst, seg.seconds());
                        }
                    }
                    if (worst <= 0.0) continue;
                    obs::InstanceSteps::Step& st = steps[tl.step];
                    st.step = tl.step;
                    double& slot =
                        into_wait_in ? st.wait_in[name] : st.bp_out[name];
                    slot = std::max(slot, worst);
                }
            }
        };
        merge(is.inputs, obs::SegmentKind::WaitIn, true);
        merge(is.outputs, obs::SegmentKind::BackpressureOut, false);
        // Components time a step from after acquire to after submit, so the
        // measured kernel time *includes* any push wait on the outputs;
        // subtract it, or a downstream-blocked instance would always read
        // as compute-bound and the walk could never move downstream.
        for (auto& [step, st] : steps) {
            double pushed = 0.0;
            for (const auto& [stream, w] : st.bp_out) pushed += w;
            st.compute = std::max(0.0, st.compute - pushed);
        }
        is.steps.reserve(steps.size());
        for (auto& [step, st] : steps) is.steps.push_back(std::move(st));
        data.push_back(std::move(is));
    }
    cpath_ = obs::analyze_critical_path(data);
    return *cpath_;
}

std::string Workflow::report() const {
    return obs::format_critical_path(critical_path());
}

namespace {

std::string what_of(const std::exception_ptr& e) {
    try {
        std::rethrow_exception(e);
    } catch (const std::exception& ex) {
        return ex.what();
    } catch (...) {
        return "unknown exception";
    }
}

}  // namespace

bool Workflow::try_recover(const std::vector<std::size_t>& members, int attempt,
                           const RestartPolicy& policy, const std::exception_ptr& err,
                           bool another_failed) {
    std::string name = instances_[members.front()].component;
    for (std::size_t k = 1; k < members.size(); ++k) {
        name += "+" + instances_[members[k]].component;
    }
    if (policy.mode != RestartPolicy::Mode::OnFailure) return false;
    if (attempt >= policy.max_attempts) {
        SB_LOG(Error) << "workflow: instance '" << name
                      << "' exhausted " << policy.max_attempts << " restart(s)";
        return false;
    }
    // Another instance already failed fatally: the fabric is (or is about to
    // be) aborted, so relaunching would only produce a secondary unwind.
    if (another_failed) return false;
    try {
        std::rethrow_exception(err);
    } catch (const flexpath::StreamAborted&) {
        return false;  // secondary: a peer died, nothing to recover here
    } catch (const util::ArgError&) {
        return false;  // deterministic config bug; a relaunch repeats it
    } catch (...) {
    }
    // Recovery needs the unit's external stream endpoints: the union of the
    // members' ports minus the streams internal to a fused chain (named by
    // both a member input and a member output — they never materialize).
    std::set<std::string> in_set;
    std::set<std::string> out_set;
    for (const std::size_t m : members) {
        const Ports ports = ports_of(m);
        if (!ports.known) {
            SB_LOG(Error) << "workflow: instance '" << name
                          << "' has unknown ports; cannot recover its streams";
            return false;
        }
        in_set.insert(ports.inputs.begin(), ports.inputs.end());
        out_set.insert(ports.outputs.begin(), ports.outputs.end());
    }
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    for (const std::string& s : in_set) {
        if (!out_set.count(s)) inputs.push_back(s);
    }
    for (const std::string& s : out_set) {
        if (!in_set.count(s)) outputs.push_back(s);
    }

    const double t_fail = obs::steady_seconds();
    std::uint64_t resume = 0;
    try {
        // Output streams roll back to their last fully assembled step; the
        // relaunched incarnation resumes submitting exactly there.  A source
        // (no inputs) deterministically regenerates from step 0, so its
        // first `resume` submissions are suppressed stream-side instead.
        for (const std::string& out : outputs) {
            auto s = fabric_.get(out);
            s->detach_writer(/*source_replays_from_zero=*/inputs.empty());
            resume = std::max(resume, s->writer_resume_step());
        }
        // Input streams detach (voiding partial acknowledgements) and start
        // retaining steps for replay.  A middle component consumed one input
        // step per output step (SmartBlock components are step-aligned, and a
        // fused chain steps all stages per input block), so inputs that fed
        // the `resume` already-assembled output steps are force-acknowledged
        // rather than replayed — replaying them would duplicate downstream
        // data.
        for (const std::string& in : inputs) {
            auto s = fabric_.get(in);
            s->detach_reader();
            if (!outputs.empty()) s->skip_reader_to(resume);
        }
    } catch (const std::exception& e) {
        SB_LOG(Error) << "workflow: recovery of '" << name
                      << "' failed: " << e.what();
        return false;
    }

    for (const std::size_t m : members) {
        ++instances_[m].restarts;
        obs::Registry::global()
            .counter("workflow.component_restarts",
                     {{"component", instances_[m].component}})
            .inc();
    }
    SB_LOG(Warn) << "workflow: restarting '" << name << "' (attempt "
                 << (attempt + 1) << "/" << policy.max_attempts
                 << "): " << what_of(err);

    // Exponential backoff with deterministic jitter: hashed from (instance,
    // attempt) instead of a clock-seeded RNG so chaos tests are repeatable.
    double delay_ms = policy.backoff_base_ms *
                      std::pow(policy.backoff_factor, static_cast<double>(attempt));
    delay_ms = std::min(delay_ms, policy.backoff_max_ms);
    std::uint64_t h = (members.front() + 1) * 0x9e3779b97f4a7c15ull ^
                      (static_cast<std::uint64_t>(attempt) + 1) * 0xbf58476d1ce4e5b9ull;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 29;
    const double jitter = 0.5 + static_cast<double>(h % 1000) / 1000.0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms * jitter));
    if (obs::enabled()) {
        // Tagged with the resume step, so the trace links the restart slice
        // to the step timelines the replacement incarnation continues from.
        obs::TraceLog::global().slice("restart", name, "restart",
                                      t_fail, obs::steady_seconds(), resume);
    }
    return true;
}

void Workflow::run() {
    if (ran_) throw std::logic_error("Workflow::run: already ran (build a new workflow)");
    if (instances_.empty()) throw std::logic_error("Workflow::run: no instances added");

    // Fail-fast wiring check (SB_LINT / set_lint): a mis-wired graph becomes
    // an exception with smartblock_lint's diagnostics instead of a deadlock.
    // Only the certainly-fatal wiring rules gate here — shape/config findings
    // stay advisory so run-time semantics match the seed exactly.
    if (lint::lint_enabled(lint_)) {
        std::vector<LaunchEntry> entries;
        entries.reserve(instances_.size());
        for (const Instance& inst : instances_) {
            LaunchEntry e;
            e.component = inst.component;
            e.nprocs = inst.nprocs;
            e.args = inst.args.raw();
            e.line = inst.line;
            entries.push_back(std::move(e));
        }
        lint::Result wiring = lint::lint_wiring(entries);
        if (wiring.errors > 0) {
            throw lint::LintError("Workflow::run: workflow graph is mis-wired\n" +
                                      lint::render_text(wiring),
                                  std::move(wiring));
        }
    }
    ran_ = true;

    util::WallTimer timer;
    epoch_ = steady_now_seconds();
    std::vector<std::exception_ptr> errors(instances_.size());
    std::atomic<bool> failed{false};

    // Execution units: one per fused chain, one per remaining instance.  An
    // empty plan (SB_FUSE=off / nothing fusible) reproduces the seed's
    // one-unit-per-instance execution exactly.
    const FusionPlan fplan = fusion_plan();
    struct UnitSpec {
        std::vector<std::size_t> members;       // instance indices, chain order
        const FusedChain* chain = nullptr;      // null: standalone instance
    };
    std::vector<UnitSpec> units;
    units.reserve(instances_.size());
    for (const FusedChain& chain : fplan.chains) {
        UnitSpec u;
        u.chain = &chain;
        for (const FusedStage& st : chain.stages) u.members.push_back(st.instance);
        units.push_back(std::move(u));
    }
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        if (!fplan.fused(i)) units.push_back(UnitSpec{{i}, nullptr});
    }
    for (const UnitSpec& u : units) {
        if (!u.chain) continue;
        std::string label = instance_label(u.members.front());
        for (std::size_t k = 1; k < u.members.size(); ++k) {
            label += "+" + instance_label(u.members[k]);
        }
        SB_LOG(Info) << "workflow: fused " << label;
    }

    // ---- cold restart (durable step log) ---------------------------------
    // With a durable log configured, open every external stream's log before
    // launching anything: a relaunched *process* then resumes exactly where
    // the warm-restart path (try_recover) would have resumed a relaunched
    // thread group.  Sources suppress their deterministic regeneration of
    // already-logged steps; a middle unit whose outputs already assembled
    // `resume` steps fast-forwards its inputs past the steps that fed them.
    bool cold_resume = false;
    if (durable::resolve_enabled(options_.durable)) {
        for (const UnitSpec& unit : units) {
            std::set<std::string> in_set;
            std::set<std::string> out_set;
            bool known = true;
            for (const std::size_t m : unit.members) {
                const Ports ports = ports_of(m);
                if (!ports.known) {
                    known = false;
                    break;
                }
                in_set.insert(ports.inputs.begin(), ports.inputs.end());
                out_set.insert(ports.outputs.begin(), ports.outputs.end());
            }
            if (!known) continue;  // attach_writer opens lazily instead
            std::vector<std::string> inputs;
            std::vector<std::string> outputs;
            for (const std::string& s : in_set) {
                if (!out_set.count(s)) inputs.push_back(s);
            }
            for (const std::string& s : out_set) {
                if (!in_set.count(s)) outputs.push_back(s);
            }
            std::uint64_t resume = 0;
            for (const std::string& out : outputs) {
                auto s = fabric_.get(out);
                s->open_durable(options_);
                if (const durable::Log* log = s->durable_log()) {
                    if (log->next_step() > 0) cold_resume = true;
                }
                resume = std::max(resume, s->writer_resume_step());
                if (inputs.empty()) s->set_cold_source_replay();
            }
            for (const std::string& in : inputs) {
                auto s = fabric_.get(in);
                s->open_durable(options_);
                if (const durable::Log* log = s->durable_log()) {
                    if (log->next_step() > 0) cold_resume = true;
                }
                // One input step fed each already-assembled output step
                // (SmartBlock components are step-aligned); acknowledge
                // those instead of replaying them into duplicates.
                if (!outputs.empty()) {
                    s->skip_reader_to(s->reader_cursor_for_step(resume));
                }
            }
        }
        if (cold_resume) {
            SB_LOG(Warn) << "workflow: cold restart — resuming from durable "
                            "step logs in '"
                         << options_.durable.dir << "'";
        }
    }

    {
        std::vector<std::jthread> drivers;
        drivers.reserve(units.size());
        for (const UnitSpec& unit : units) {
            drivers.emplace_back([this, &unit, &errors, &failed, cold_resume] {
                const std::vector<std::size_t>& members = unit.members;
                const std::size_t lead = members.front();
                const Instance& inst = instances_[lead];
                // Unit policy: the most conservative of the members' — one
                // Never member pins the whole unit, and the attempt budget is
                // the tightest member's.
                RestartPolicy policy = inst.policy ? *inst.policy : policy_;
                for (std::size_t k = 1; k < members.size(); ++k) {
                    const Instance& mi = instances_[members[k]];
                    const RestartPolicy p = mi.policy ? *mi.policy : policy_;
                    if (p.mode == RestartPolicy::Mode::Never) {
                        policy.mode = RestartPolicy::Mode::Never;
                    }
                    policy.max_attempts = std::min(policy.max_attempts, p.max_attempts);
                }
                // Label the communicator with the instance index: describe()
                // can collide when a component appears twice.
                std::string label = inst.component + "#" + std::to_string(lead);
                for (std::size_t k = 1; k < members.size(); ++k) {
                    label += "+" + instance_label(members[k]);
                }
                for (int attempt = 0;; ++attempt) {
                    try {
                        mpi::run_ranks(
                            inst.nprocs,
                            [&](mpi::Communicator& comm) {
                                if (unit.chain) {
                                    std::vector<FusedStageHooks> hooks;
                                    hooks.reserve(members.size());
                                    for (const std::size_t m : members) {
                                        hooks.push_back(FusedStageHooks{
                                            instance_label(m),
                                            instances_[m].stats.get()});
                                    }
                                    RunContext ctx{fabric_, comm, nullptr, options_};
                                    ctx.component = inst.component;
                                    ctx.instance = instance_label(lead);
                                    ctx.attempt = attempt;
                                    ctx.resume = cold_resume;
                                    const obs::ScopedActor actor(ctx.instance);
                                    // Every member is (re)launched with the
                                    // unit, so each keeps its own run-level
                                    // fault point.
                                    for (const std::size_t m : members) {
                                        fault::hit("component.run",
                                                   instances_[m].component);
                                    }
                                    run_fused_chain(ctx, *unit.chain, hooks);
                                } else {
                                    auto component = make_component(inst.component);
                                    RunContext ctx{fabric_, comm, inst.stats.get(),
                                                   options_};
                                    ctx.component = inst.component;
                                    ctx.instance = instance_label(lead);
                                    ctx.attempt = attempt;
                                    ctx.resume = cold_resume;
                                    // Transport spans recorded on this rank's
                                    // thread carry the instance as their actor.
                                    const obs::ScopedActor actor(ctx.instance);
                                    fault::hit("component.run", inst.component);
                                    component->run(ctx, inst.args);
                                }
                            },
                            label + (attempt ? ".r" + std::to_string(attempt) : ""));
                        return;  // this unit drained
                    } catch (...) {
                        const std::exception_ptr err = std::current_exception();
                        if (try_recover(members, attempt, policy, err, failed.load())) {
                            continue;  // relaunch the unit
                        }
                        errors[lead] = err;
                        failed.store(true);
                        // Unblock the rest of the graph: every stream wakes
                        // its waiters with StreamAborted.
                        fabric_.abort_all();
                        SB_LOG(Error) << "workflow: instance '" << inst.component
                                      << "' failed; aborting fabric";
                        return;
                    }
                }
            });
        }
    }  // all drivers join

    elapsed_ = timer.seconds();

    if (check::enabled()) {
        const auto diags = check::diagnostics();
        if (!diags.empty()) {
            SB_LOG(Warn) << "workflow: sb::check recorded " << diags.size()
                         << " diagnostic(s) during this run (see earlier "
                            "sb::check log lines)";
        }
    }

    if (failed.load()) {
        // Prefer a root-cause error over secondary StreamAborted unwinds —
        // but never silently drop the secondaries: distinct failures in
        // several instances are all part of the diagnosis.
        std::exception_ptr first;
        std::exception_ptr root;
        std::vector<std::string> suppressed;
        std::size_t root_index = 0;
        for (std::size_t i = 0; i < errors.size(); ++i) {
            const auto& e = errors[i];
            if (!e) continue;
            if (!first) first = e;
            bool aborted_unwind = false;
            try {
                std::rethrow_exception(e);
            } catch (const flexpath::StreamAborted&) {
                aborted_unwind = true;
            } catch (...) {
            }
            if (aborted_unwind) continue;
            if (!root) {
                root = e;
                root_index = i;
            } else {
                suppressed.push_back("[" + describe(i) + "] " + what_of(e));
            }
        }
        if (!root) std::rethrow_exception(first);  // only secondary unwinds
        if (suppressed.empty()) std::rethrow_exception(root);  // preserve type
        std::string msg = "[" + describe(root_index) + "] " + what_of(root) +
                          " (+" + std::to_string(suppressed.size()) +
                          " suppressed secondary error(s):";
        for (std::size_t k = 0; k < suppressed.size() && k < 3; ++k) {
            msg += " | " + suppressed[k];
        }
        if (suppressed.size() > 3) msg += " | ...";
        msg += ")";
        throw WorkflowError(msg, std::move(suppressed));
    }
}

}  // namespace sb::core
