// The SmartBlock component framework.
//
// A SmartBlock component is, in the paper, a standalone MPI executable
// configured entirely by positional command-line parameters and connected to
// its neighbours by named FlexPath streams.  Here a component is a class
// whose run() receives a RunContext (the stream fabric + this rank's
// communicator) and the same positional arguments the paper's launch scripts
// pass (Figs. 1-3, 8).  One instance runs per rank; ranks coordinate through
// the communicator exactly as the paper's processes do ("for each timestep,
// these processes communicate to determine how to partition the overall
// incoming dataset").
//
// Design guidelines from paper §III.A are enforced structurally:
//   1. uniform packaging — every component exports the same interface;
//   2. any-rank data with labelled dimensions — shapes/labels come from
//      stream metadata, never from configuration;
//   3. semantics preserved downstream — helpers propagate attributes and
//      headers across components that don't use them;
//   4. explicit re-arrangement — Dim-Reduce does layout changes, nothing
//      else silently reorders memory.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "adios/reader.hpp"
#include "adios/writer.hpp"
#include "core/contract.hpp"
#include "mpi/runtime.hpp"
#include "util/argparse.hpp"

namespace sb::core {

/// Per-component, per-step measurements (Fig. 9 / Fig. 10 need per-component
/// timestep completion times "averaged over the component's communicator").
/// One StepStats is shared by all ranks of a component instance.
class StepStats {
public:
    void record(std::uint64_t step, int rank, double seconds, std::uint64_t bytes_in,
                std::uint64_t bytes_out);

    struct Sample {
        std::uint64_t step;
        int rank;
        double seconds;
        std::uint64_t bytes_in;
        std::uint64_t bytes_out;
        /// Completion instant on the process-wide steady clock (seconds);
        /// lets the workflow export a timeline (see Workflow::write_trace).
        double t_end;
    };

    /// Raw samples, in record order.
    std::vector<Sample> samples() const;

    struct StepRow {
        std::uint64_t step = 0;
        int nranks = 0;           // ranks that reported this step
        double mean_seconds = 0;  // mean over the communicator
        double max_seconds = 0;
        std::uint64_t bytes_in = 0;   // summed over ranks
        std::uint64_t bytes_out = 0;
    };

    /// One row per step, aggregated over ranks, ordered by step.
    std::vector<StepRow> per_step() const;

    /// Mean per-step completion time over all steps and ranks.
    double mean_step_seconds() const;

    std::uint64_t total_bytes_in() const;
    std::uint64_t total_bytes_out() const;
    std::uint64_t steps() const;

private:
    mutable std::mutex mu_;
    std::vector<Sample> samples_;
};

/// Seconds on the process-wide steady clock (the time base of
/// StepStats::Sample::t_end).
double steady_now_seconds();

/// Everything a component rank needs to run.
struct RunContext {
    // Constructor matching the historical aggregate shape, so existing
    // RunContext{fabric, comm, stats, opts} call sites keep compiling
    // without naming the supervision fields (-Wmissing-field-initializers).
    RunContext(flexpath::Fabric& f, mpi::Communicator c, StepStats* s = nullptr,
               flexpath::StreamOptions o = {})
        : fabric(f), comm(std::move(c)), stats(s), stream_options(std::move(o)) {}

    flexpath::Fabric& fabric;
    mpi::Communicator comm;
    StepStats* stats = nullptr;  // optional measurement sink
    flexpath::StreamOptions stream_options{};  // applied to output streams

    // ---- supervision (set by Workflow, defaulted elsewhere) --------------
    /// The workflow-level component name this rank belongs to ("" outside a
    /// workflow); scopes the "component.step" / "component.run" fault points.
    std::string component;
    /// The instance label this rank belongs to ("magnitude#1", "" outside a
    /// workflow); scopes the per-step Compute spans (obs::SpanStore) that the
    /// critical-path analyzer attributes to this instance.
    std::string instance;
    /// 0 on the first run, k on the k-th restart.  Components with external
    /// side effects (file endpoints) use this to resume instead of truncate.
    int attempt = 0;
    /// True when the workflow resumed mid-stream from a durable step log
    /// (cold restart): file endpoints append rather than truncate even on
    /// attempt 0, because earlier steps' output already exists on disk.
    bool resume = false;
};

/// The streams a component instance would read and write, derived from its
/// arguments without running it.  The workflow graph validator (see
/// core/graph.hpp) builds the dataflow DAG from these.
struct Ports {
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    /// False when the component cannot statically name its streams (the
    /// graph validator then treats it as opaque instead of mis-wired).
    bool known = true;
};

/// Base class of all SmartBlock components (analytics, sources, endpoints).
class Component {
public:
    virtual ~Component() = default;

    /// The name used in launch scripts ("select", "histogram", "lammps", ...).
    virtual std::string name() const = 0;

    /// One-line usage string, in the style of the paper's Figs. 1-3.
    virtual std::string usage() const = 0;

    /// Runs this rank of the component to end of stream.  Called once.
    virtual void run(RunContext& ctx, const util::ArgList& args) = 0;

    /// Declares the streams run() would open for these arguments.  Throws
    /// util::ArgError for malformed arguments (same validation as run()).
    /// The default declares nothing and marks the ports unknown.
    virtual Ports ports(const util::ArgList& args) const {
        (void)args;
        return Ports{{}, {}, false};
    }

    /// The component's static contract for these arguments (core/contract.hpp):
    /// per-port arrays, rank/kind requirements, shape transforms, and header
    /// flow.  Must be consistent with ports() and run().  Throws
    /// util::ArgError exactly where ports() would.  The default declares the
    /// component opaque to the static analyzer.
    virtual Contract contract(const util::ArgList& args) const {
        (void)args;
        return Contract{};
    }
};

// ---- helpers shared by the generic components ----------------------------

/// Attribute key carrying the names of the quantities along dimension `dim`
/// of array `array` — the "header" of paper §III.C.
std::string header_attr_key(const std::string& array, std::size_t dim);

/// Rules for carrying attributes across a component (design guideline 3).
struct AttrRules {
    std::string in_array;
    std::string out_array;
    /// For each output dimension, the input dimension it came from; empty
    /// means identity.  Headers are re-keyed through this map.
    std::vector<std::size_t> dim_map;
    /// Input dimensions whose headers must not propagate (they were
    /// consumed or invalidated, e.g. Select's filtered dimension).
    std::set<std::size_t> drop_in_dims;
};

/// One step's attributes as plain maps — the in-memory currency of the
/// fused-chain executor (core/fusion.hpp), where intermediate streams never
/// materialize but their attribute semantics must still compose.
struct AttrSet {
    std::map<std::string, std::vector<std::string>> strings;
    std::map<std::string, double> doubles;
};

/// Applies `rules` to `in`, producing the attribute set the downstream step
/// would observe: `<in_array>.*` keys rename to `<out_array>.*`, header
/// dimension indices remap per dim_map, dropped dimensions' headers vanish,
/// unrelated attributes pass through unchanged.
AttrSet apply_attr_rules(const AttrSet& in, const AttrRules& rules);

/// Copies the current step's attributes from `in` to `out` through
/// apply_attr_rules — the standalone components' per-hop propagation.
void propagate_attributes(const adios::Reader& in, adios::Writer& out,
                          const AttrRules& rules);

/// Records one step's timing/volume into ctx.stats if present.
void record_step(const RunContext& ctx, std::uint64_t step, double seconds,
                 std::uint64_t bytes_in, std::uint64_t bytes_out);

/// Picks the dimension a component should auto-partition: the largest-extent
/// dimension not in `exclude`.  Throws if every dimension is excluded.
std::size_t pick_partition_dim(const util::NdShape& shape,
                               const std::set<std::size_t>& exclude);

/// Builds a single-variable GroupDef for a component's output: the array
/// plus one scalar dimension variable per label.
adios::GroupDef output_group(const std::string& component,
                             const std::string& array_name,
                             const std::vector<std::string>& dim_labels,
                             adios::DataKind kind = adios::DataKind::Float64);

}  // namespace sb::core
