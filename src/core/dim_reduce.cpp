#include "core/dim_reduce.hpp"

#include <cstring>
#include <optional>
#include <span>

#include "core/kernels.hpp"
#include "util/timer.hpp"

namespace sb::core {

util::NdShape dim_reduce_shape(const util::NdShape& in_shape, std::size_t remove,
                               std::size_t grow) {
    if (remove == grow) {
        throw std::invalid_argument("dim-reduce: remove and grow dimensions must differ");
    }
    if (remove >= in_shape.ndim() || grow >= in_shape.ndim()) {
        throw std::invalid_argument("dim-reduce: dimension out of range for " +
                                    in_shape.to_string());
    }
    std::vector<std::uint64_t> out;
    out.reserve(in_shape.ndim() - 1);
    for (std::size_t d = 0; d < in_shape.ndim(); ++d) {
        if (d == remove) continue;
        out.push_back(d == grow ? in_shape[d] * in_shape[remove] : in_shape[d]);
    }
    return util::NdShape(std::move(out));
}

void dim_reduce_copy(std::span<const std::byte> src, const util::NdShape& in_shape,
                     std::size_t remove, std::size_t grow, std::span<std::byte> dst,
                     std::size_t elem) {
    const util::NdShape out_shape = dim_reduce_shape(in_shape, remove, grow);
    if (src.size() < in_shape.volume() * elem || dst.size() < out_shape.volume() * elem) {
        throw std::invalid_argument("dim_reduce_copy: buffer too small");
    }
    const std::size_t nd = in_shape.ndim();
    if (in_shape.volume() == 0) return;

    // Effective output stride of each *input* dimension: the grown output
    // index is g*Nr + r, so dim `grow` contributes with stride
    // out_stride(g') * Nr and dim `remove` with out_stride(g').
    const std::vector<std::uint64_t> out_strides = out_shape.strides();
    std::vector<std::uint64_t> eff(nd, 0);
    {
        std::size_t j = 0;  // output dimension index
        std::uint64_t grow_stride = 0;
        for (std::size_t d = 0; d < nd; ++d) {
            if (d == remove) continue;
            if (d == grow) grow_stride = out_strides[j];
            eff[d] = out_strides[j];
            ++j;
        }
        eff[grow] = grow_stride * in_shape[remove];
        eff[remove] = grow_stride;
    }

    // Odometer over the input, copying contiguous runs of the innermost
    // input dimension when its effective output stride is 1.
    const bool inner_contig = eff[nd - 1] == 1;
    const std::uint64_t inner_n = in_shape[nd - 1];
    std::vector<std::uint64_t> idx(nd, 0);
    std::uint64_t src_off = 0;  // in elements; src is dense row-major
    for (;;) {
        std::uint64_t dst_off = 0;
        for (std::size_t d = 0; d < nd; ++d) dst_off += idx[d] * eff[d];
        if (inner_contig) {
            std::memcpy(dst.data() + dst_off * elem, src.data() + src_off * elem,
                        inner_n * elem);
            src_off += inner_n;
        } else {
            kernels::scatter_strided(src.data() + src_off * elem,
                                     dst.data() + dst_off * elem, inner_n,
                                     eff[nd - 1], elem,
                                     kernels::active_schedule());
            src_off += inner_n;
        }
        // Advance dims [0, nd-1).
        std::size_t d = nd - 1;
        for (;;) {
            if (d == 0) return;
            --d;
            if (++idx[d] < in_shape[d]) break;
            idx[d] = 0;
        }
    }
}

void DimReduce::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(6, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::size_t remove = args.unsigned_integer(2, "dim-to-remove");
    const std::size_t grow = args.unsigned_integer(3, "dim-to-grow");
    const std::string out_stream = args.str(4, "output-stream-name");
    const std::string out_array = args.str(5, "output-array-name");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();

    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        const util::NdShape& shape = info.shape;
        const util::NdShape out_shape = dim_reduce_shape(shape, remove, grow);

        // Partition along the grow dimension: a rank's slab then maps to a
        // contiguous hyperslab of the output (offset scaled by the removed
        // extent), which keeps the MxN redistribution box-expressible.
        const util::Box in_box = util::partition_along(shape, grow, rank, size);
        const std::size_t elem = ffs::kind_size(info.kind);
        std::vector<std::byte> owned;
        std::span<const std::byte> local;
        if (const auto view = reader.try_read_view_bytes(in_array, in_box)) {
            local = *view;  // slab is exactly one writer block: zero-copy
        } else {
            owned.resize(in_box.volume() * elem);
            reader.read_bytes(in_array, in_box, owned);
            local = owned;
        }

        const util::NdShape local_shape(in_box.count);

        // The grown output dimension's index within the output array.
        const std::size_t grow_out = grow - (remove < grow ? 1 : 0);
        util::Box out_box = util::Box::whole(out_shape);
        out_box.offset[grow_out] = in_box.offset[grow] * shape[remove];
        out_box.count[grow_out] = in_box.count[grow] * shape[remove];

        // Output dimension labels: the grown dimension keeps its label; the
        // removed one disappears.
        std::vector<std::string> labels;
        std::vector<std::size_t> dim_map;
        for (std::size_t d = 0; d < shape.ndim(); ++d) {
            if (d == remove) continue;
            labels.push_back(d < info.dim_labels.size() ? info.dim_labels[d]
                                                        : std::string{});
            dim_map.push_back(d);
        }

        if (!writer) {
            writer.emplace(ctx.fabric, out_stream,
                           output_group("dim-reduce", out_array, labels, info.kind),
                           rank, size, ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        for (std::size_t d = 0; d < out_shape.ndim(); ++d) {
            writer->set_dimension(dim_names[d], out_shape[d]);
        }
        // Headers of both the removed and the grown dimension are
        // invalidated by the re-arrangement; the rest propagate re-indexed.
        propagate_attributes(reader, *writer,
                             AttrRules{in_array, out_array, dim_map, {remove, grow}});
        // The permutation writes straight into the pooled step buffer
        // (dim_reduce_copy touches every output element exactly once).
        const std::span<std::byte> out_view = writer->put_view(out_array, out_box);
        dim_reduce_copy(local, local_shape, remove, grow, out_view, elem);
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), local.size(), out_view.size());
        reader.end_step();
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream, output_group("dim-reduce", out_array, {}),
                       rank, size, ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
