// The Dim-Reduce component (paper §III.F).
//
//   dim-reduce input-stream-name input-array-name dim-to-remove dim-to-grow
//              output-stream-name output-array-name
//
// Removes one dimension of the input array by absorbing it into another,
// *without changing the total size of the data*: the output has one fewer
// dimension, with the grown dimension's extent multiplied by the removed
// dimension's.  The removed index varies fastest within the grown one:
//
//     out[..., g*Nr + r, ...] = in[..., g, ..., r, ...]
//
// Because multi-dimensional data lives in a specific row-major order, this
// generally requires a genuine re-arrangement of memory, not just a
// reshape — the reason the component exists (paper §III.A guideline 4).
// E.g. GTCP's (slices, gridpoints, quantities) pressure field needs two
// Dim-Reduce passes to become the 1-D array Histogram expects.
#pragma once

#include <algorithm>

#include "core/component.hpp"

namespace sb::core {

class DimReduce : public Component {
public:
    std::string name() const override { return "dim-reduce"; }
    std::string usage() const override {
        return "dim-reduce input-stream-name input-array-name dim-to-remove "
               "dim-to-grow output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(4, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const std::size_t remove = args.unsigned_integer(2, "dim-to-remove");
        const std::size_t grow = args.unsigned_integer(3, "dim-to-grow");
        Contract c;
        c.known = true;
        if (remove == grow) {
            c.param_errors.push_back(
                "dim-reduce: dim-to-remove and dim-to-grow are both " +
                std::to_string(remove) + " (they must differ)");
        }
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.dim_params["dim-to-remove"] = remove;
        in.dim_params["dim-to-grow"] = grow;
        in.min_rank = std::max(remove, grow) + 1;
        c.inputs.push_back(std::move(in));
        OutputContract out;
        out.stream = args.str(4, "output-stream-name");
        out.array = args.str(5, "output-array-name");
        out.rule = OutputContract::Shape::AbsorbDim;
        out.dim = remove;
        out.dim2 = grow;
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

/// The layout kernel, exposed for unit tests and the micro benchmarks:
/// copies `src` (row-major, shape `in_shape`) into `dst` with dimension
/// `remove` absorbed into dimension `grow`.  `dst` must hold the same number
/// of elements.  `elem` is the element size in bytes.
void dim_reduce_copy(std::span<const std::byte> src, const util::NdShape& in_shape,
                     std::size_t remove, std::size_t grow, std::span<std::byte> dst,
                     std::size_t elem);

/// The output shape of a dim-reduce: `remove` deleted, `grow` multiplied.
util::NdShape dim_reduce_shape(const util::NdShape& in_shape, std::size_t remove,
                               std::size_t grow);

}  // namespace sb::core
