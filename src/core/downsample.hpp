// The Downsample component.
//
//   downsample input-stream-name input-array-name dimension-index stride
//              output-stream-name output-array-name
//
// Keeps every stride-th index (0, stride, 2*stride, ...) of one dimension —
// the standard data-reduction step when an analysis only needs a coarser
// sampling of particles, gridpoints, or timvarying quantities.  A header on
// the sampled dimension, if present, is filtered to the kept rows so
// name-based selection still works downstream.
#pragma once

#include "core/component.hpp"

namespace sb::core {

class Downsample : public Component {
public:
    std::string name() const override { return "downsample"; }
    std::string usage() const override {
        return "downsample input-stream-name input-array-name dimension-index "
               "stride output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(4, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const std::size_t dim = args.unsigned_integer(2, "dimension-index");
        const std::uint64_t stride = args.unsigned_integer(3, "stride");
        Contract c;
        c.known = true;
        if (stride == 0) {
            c.param_errors.push_back("downsample: stride must be positive");
        }
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.dim_params["dimension-index"] = dim;
        in.min_rank = dim + 1;
        c.inputs.push_back(std::move(in));
        OutputContract out;
        out.stream = args.str(4, "output-stream-name");
        out.array = args.str(5, "output-array-name");
        out.rule = OutputContract::Shape::DivideDim;
        out.dim = dim;
        out.count = stride;
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
