#include "core/transpose.hpp"

#include <cstring>
#include <optional>

#include "adios/group.hpp"
#include "util/timer.hpp"

namespace sb::core {

std::vector<std::size_t> parse_permutation(const std::string& s) {
    std::vector<std::size_t> perm;
    for (const std::string& tok : adios::split_csv(s)) {
        try {
            std::size_t pos = 0;
            const unsigned long v = std::stoul(tok, &pos);
            if (pos != tok.size()) throw std::invalid_argument(tok);
            perm.push_back(v);
        } catch (const std::exception&) {
            throw util::ArgError("transpose: bad permutation element '" + tok + "'");
        }
    }
    std::vector<bool> seen(perm.size(), false);
    for (const std::size_t p : perm) {
        if (p >= perm.size() || seen[p]) {
            throw util::ArgError("transpose: '" + s + "' is not a permutation of 0.." +
                                 std::to_string(perm.size() - 1));
        }
        seen[p] = true;
    }
    if (perm.empty()) throw util::ArgError("transpose: empty permutation");
    return perm;
}

util::NdShape transpose_shape(const util::NdShape& in_shape,
                              std::span<const std::size_t> perm) {
    if (perm.size() != in_shape.ndim()) {
        throw std::invalid_argument("transpose: permutation rank " +
                                    std::to_string(perm.size()) + " != array rank " +
                                    std::to_string(in_shape.ndim()));
    }
    std::vector<std::uint64_t> dims(perm.size());
    for (std::size_t j = 0; j < perm.size(); ++j) dims[j] = in_shape[perm[j]];
    return util::NdShape(std::move(dims));
}

void transpose_copy(std::span<const std::byte> src, const util::NdShape& in_shape,
                    std::span<const std::size_t> perm, std::span<std::byte> dst,
                    std::size_t elem) {
    const util::NdShape out_shape = transpose_shape(in_shape, perm);
    if (src.size() < in_shape.volume() * elem || dst.size() < out_shape.volume() * elem) {
        throw std::invalid_argument("transpose_copy: buffer too small");
    }
    if (in_shape.volume() == 0) return;
    const std::size_t nd = in_shape.ndim();
    if (nd == 0) {
        std::memcpy(dst.data(), src.data(), elem);
        return;
    }

    // Effective output stride of each *input* dimension.
    const std::vector<std::uint64_t> out_strides = out_shape.strides();
    std::vector<std::uint64_t> eff(nd, 0);
    for (std::size_t j = 0; j < nd; ++j) eff[perm[j]] = out_strides[j];

    const bool inner_contig = eff[nd - 1] == 1;
    const std::uint64_t inner_n = in_shape[nd - 1];
    std::vector<std::uint64_t> idx(nd, 0);
    std::uint64_t src_off = 0;
    for (;;) {
        std::uint64_t dst_off = 0;
        for (std::size_t d = 0; d < nd; ++d) dst_off += idx[d] * eff[d];
        if (inner_contig) {
            std::memcpy(dst.data() + dst_off * elem, src.data() + src_off * elem,
                        inner_n * elem);
        } else {
            for (std::uint64_t k = 0; k < inner_n; ++k) {
                std::memcpy(dst.data() + (dst_off + k * eff[nd - 1]) * elem,
                            src.data() + (src_off + k) * elem, elem);
            }
        }
        src_off += inner_n;
        std::size_t d = nd - 1;
        for (;;) {
            if (d == 0) return;
            --d;
            if (++idx[d] < in_shape[d]) break;
            idx[d] = 0;
        }
    }
}

void Transpose::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(5, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::vector<std::size_t> perm = parse_permutation(args.str(2, "perm"));
    const std::string out_stream = args.str(3, "output-stream-name");
    const std::string out_array = args.str(4, "output-array-name");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        const util::NdShape& shape = info.shape;
        const util::NdShape out_shape = transpose_shape(shape, perm);

        const std::size_t pdim = pick_partition_dim(shape, {});
        const util::Box in_box = util::partition_along(shape, pdim, rank, size);
        const std::size_t elem = ffs::kind_size(info.kind);
        std::vector<std::byte> local(in_box.volume() * elem);
        reader.read_bytes(in_array, in_box, local);

        auto out_buf = std::make_shared<std::vector<std::byte>>(local.size());
        transpose_copy(local, util::NdShape(in_box.count), perm, *out_buf, elem);

        // The output box is the input box with its axes permuted.
        util::Box out_box;
        out_box.offset.resize(perm.size());
        out_box.count.resize(perm.size());
        std::vector<std::string> labels(perm.size());
        for (std::size_t j = 0; j < perm.size(); ++j) {
            out_box.offset[j] = in_box.offset[perm[j]];
            out_box.count[j] = in_box.count[perm[j]];
            labels[j] = perm[j] < info.dim_labels.size() ? info.dim_labels[perm[j]]
                                                         : std::string{};
        }

        if (!writer) {
            writer.emplace(ctx.fabric, out_stream,
                           output_group("transpose", out_array, labels, info.kind),
                           rank, size, ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        for (std::size_t d = 0; d < out_shape.ndim(); ++d) {
            writer->set_dimension(dim_names[d], out_shape[d]);
        }
        propagate_attributes(
            reader, *writer,
            AttrRules{in_array, out_array,
                      std::vector<std::size_t>(perm.begin(), perm.end()), {}});
        writer->write_raw(out_array, out_box, out_buf);
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), local.size(),
                    out_buf->size());
        reader.end_step();
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream, output_group("transpose", out_array, {}),
                       rank, size, ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
