#include "core/fork.hpp"

#include <memory>

#include "util/pool.hpp"
#include "util/timer.hpp"

namespace sb::core {

void Fork::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(4, usage());
    if (args.size() % 2 != 0) {
        throw util::ArgError("fork: outputs must come in stream/array pairs\nusage: " +
                             usage());
    }
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    struct Output {
        std::string stream;
        std::string array;
        std::unique_ptr<adios::Writer> writer;
    };
    std::vector<Output> outputs;
    for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
        outputs.push_back(Output{args.str(i, "output-stream"),
                                 args.str(i + 1, "output-array"), nullptr});
    }

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        const std::size_t pdim = pick_partition_dim(info.shape, {});
        const util::Box box = util::partition_along(info.shape, pdim, rank, size);
        const std::size_t elem = ffs::kind_size(info.kind);
        // One pooled buffer, shared by every output's step (refcounted
        // fan-out): it returns to the pool only after *all* downstream
        // streams retire their step.
        util::PooledBytes buf = util::acquire_bytes(box.volume() * elem);
        reader.read_bytes(in_array, box, *buf);

        for (Output& o : outputs) {
            if (!o.writer) {
                o.writer = std::make_unique<adios::Writer>(
                    ctx.fabric, o.stream,
                    output_group("fork", o.array, info.dim_labels, info.kind), rank,
                    size, ctx.stream_options);
            }
            o.writer->begin_step();
            const auto& dim_names = o.writer->group().find(o.array)->dimensions;
            for (std::size_t d = 0; d < info.shape.ndim(); ++d) {
                o.writer->set_dimension(dim_names[d], info.shape[d]);
            }
            propagate_attributes(reader, *o.writer, AttrRules{in_array, o.array, {}, {}});
            o.writer->write_raw(o.array, box, buf);  // shared, zero-copy fan-out
            o.writer->end_step();
        }

        record_step(ctx, reader.step(), timer.seconds(), buf->size(),
                    buf->size() * outputs.size());
        reader.end_step();
    }
    for (Output& o : outputs) {
        if (!o.writer) {
            o.writer = std::make_unique<adios::Writer>(
                ctx.fabric, o.stream, output_group("fork", o.array, {}), rank, size,
                ctx.stream_options);
        }
        o.writer->close();
    }
}

}  // namespace sb::core
