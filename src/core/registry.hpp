// Component registry: launch scripts name components ("select",
// "histogram", "lammps"); the registry maps those names to factories.
//
// The generic SmartBlock components register themselves on first use; the
// simulation drivers register via sb::sim::register_simulations() so the
// core library carries no dependency on any particular science code.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"

namespace sb::core {

using ComponentFactory = std::function<std::unique_ptr<Component>()>;

/// Registers (or replaces) a factory under `name`.
void register_component(const std::string& name, ComponentFactory factory);

/// Instantiates a registered component; the error for an unknown name
/// lists everything registered.
std::unique_ptr<Component> make_component(const std::string& name);

bool component_registered(const std::string& name);

/// Sorted names of all registered components.
std::vector<std::string> component_names();

/// Registers the generic components (select, magnitude, dim-reduce,
/// histogram, fork, file-writer, file-reader, all-pairs).  Idempotent;
/// called automatically by make_component.
void register_builtin_components();

}  // namespace sb::core
