// Schedule-separated analysis kernels (ROADMAP item 3).
//
// The generic components' inner loops — magnitude, histogram binning,
// threshold compaction, moments accumulation, the dim-reduce strided
// scatter — live here, split Halide-style into *what* is computed (one
// kernel per operation, bit-exact semantics documented per function) and
// *how* it is scheduled (Schedule::Scalar replays the seed's sequential
// loops; Schedule::Simd runs portable `#pragma omp simd` / lane-split
// variants of the same math).  Both the standalone components and the fused
// chain executor (core/fusion.hpp) call these entry points, so operator
// fusion and vectorization compose but are gated independently.
//
// Gating: the active schedule resolves once from the SB_SIMD environment
// variable (unset/anything -> Simd, "off"/"0"/"false" -> Scalar), mirroring
// SB_PLAN_CACHE / SB_FUSE; set_schedule() overrides it for A/B benches.
//
// Bit-identity contract (docs/PERFORMANCE.md): magnitude, histogram,
// threshold, and the copies are bit-identical across schedules (per-element
// math is unchanged; histogram uses per-lane sub-histograms merged at block
// end, so the integer counts cannot race or reorder).  Moments sums are
// floating-point reassociated under Simd (lane-split accumulators), which
// can differ from Scalar at the ulp level — deterministically so.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace sb::core::kernels {

enum class Schedule { Scalar, Simd };

/// The schedule every component-facing overload uses: the set_schedule()
/// override when present, else the cached SB_SIMD resolution.
Schedule active_schedule();

/// Overrides (or, with nullopt, un-overrides) the active schedule.
/// Process-wide; call between runs, not concurrently with them.
void set_schedule(std::optional<Schedule> s);

/// True unless SB_SIMD is "off"/"0"/"false" (read once, cached).
bool simd_enabled_from_env();

// ---- magnitude ------------------------------------------------------------

/// Row-wise euclidean norm: out[i] = sqrt(sum_c vecs[i*ncomp+c]^2).
/// Each row's component sum is accumulated in index order under both
/// schedules, so the results are bit-identical; Simd vectorizes across rows.
void magnitude(const double* vecs, std::size_t n, std::size_t ncomp, double* out,
               Schedule s);
void magnitude(const double* vecs, std::size_t n, std::size_t ncomp, double* out);

// ---- histogram ------------------------------------------------------------

/// Adds each value's bin to `counts` (size = bins, not cleared).  Edge
/// semantics, identical under both schedules:
///   - NaN values are dropped (not counted anywhere);
///   - bin = floor((v - min) / width) with width = (max - min) / bins,
///     clamped into [0, bins-1]: v <= min (including -inf) lands in bin 0,
///     v >= max (including +inf) in bin bins-1;
///   - a degenerate range (min == max, or an inverted caller-supplied
///     max < min, giving width <= 0 or NaN) puts every non-NaN value in
///     bin 0.
/// Simd computes the bin indices branch-free in blocks and scatters them
/// into per-lane sub-histograms merged at block end (the Halide scheduled-
/// histogram pattern), so the integer counts match Scalar exactly.
void histogram_accumulate(std::span<const double> values, double min, double max,
                          std::span<std::uint64_t> counts, Schedule s);

// ---- threshold ------------------------------------------------------------

enum class ThresholdOp { Above, Below, Band };

/// Order-preserving compaction of the values passing the predicate
/// (Above: v > lo; Below: v < lo; Band: lo <= v <= hi) into `out`
/// (capacity >= in.size()); returns the pass count.  Output order equals
/// input order under both schedules (Simd evaluates the predicate
/// vectorized into a mask, then compacts sequentially), so the results are
/// bit-identical.  NaN never passes any mode.
std::size_t threshold_compact(std::span<const double> in, ThresholdOp op,
                              double lo, double hi, double* out, Schedule s);

// ---- moments --------------------------------------------------------------

/// Single-pass accumulators for distributed moments: count, sum, sum of
/// squares, sum of cubes, min, max over the non-NaN values.
struct MomentsAccum {
    double n = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    double s3 = 0.0;
    double lo;  // +inf when no finite value seen
    double hi;  // -inf when no finite value seen

    MomentsAccum();
};

/// Scalar accumulates in index order (the seed semantics); Simd splits the
/// input across independent lane accumulators merged in lane order —
/// deterministic, but reassociated (ulp-level differences from Scalar).
MomentsAccum moments_accumulate(std::span<const double> values, Schedule s);

// ---- strided copies -------------------------------------------------------

/// Scatters n elements of `elem` bytes from a dense source to a destination
/// with a stride of `dst_stride` elements (the dim-reduce non-contiguous
/// inner loop).  Pure data movement: bit-identical under both schedules;
/// Simd vectorizes the common elem == 8 case as word copies.
void scatter_strided(const std::byte* src, std::byte* dst, std::size_t n,
                     std::size_t dst_stride, std::size_t elem, Schedule s);

}  // namespace sb::core::kernels
