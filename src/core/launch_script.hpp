// Launch-script parsing: the paper's Fig. 8 workflow assembly.
//
//   aprun -n 64   histogram velos.fp velocities 16 &
//   aprun -n 256  magnitude lmpselect.fp lmpsel velos.fp velocities &
//   aprun -n 256  select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
//   aprun -n 1024 lammps < in.cracksm &
//   wait
//
// Each line is one component instance: launcher prefix ("aprun -n N",
// "mpirun -np N", "srun -n N"), the component name, and its positional
// arguments.  "&" suffixes, blank lines, "#" comments, and a final "wait"
// are accepted and ignored.  A "< file" redirection is folded into the
// arguments (our simulation drivers take their input deck as an argument).
#pragma once

#include <string>
#include <vector>

#include "core/workflow.hpp"

namespace sb::core {

struct LaunchEntry {
    int nprocs = 0;
    std::string component;
    std::vector<std::string> args;
    /// 1-based script line this entry came from (0 when hand-built) — the
    /// anchor for lint diagnostics.  Not part of equality: two entries that
    /// launch the same thing are the same entry.
    std::size_t line = 0;

    bool operator==(const LaunchEntry& o) const {
        return nprocs == o.nprocs && component == o.component && args == o.args;
    }
};

/// Parses a whole script; throws util::ArgError with the offending line.
std::vector<LaunchEntry> parse_launch_script(const std::string& text);

/// Builds a Workflow from a script (components resolved via the registry).
Workflow build_workflow(flexpath::Fabric& fabric, const std::string& script,
                        flexpath::StreamOptions options = {});

}  // namespace sb::core
