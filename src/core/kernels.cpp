#include "core/kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

// `#pragma omp simd` is a hint, not a semantics change: the loops below are
// written so that vectorizing them cannot reorder any observable result.
// CMake adds -fopenmp-simd where the compiler supports it; elsewhere the
// pragma is inert and Simd degrades to plain (still unrolled) loops.
#define SB_SIMD_LOOP _Pragma("omp simd")

namespace sb::core::kernels {

namespace {

// -1 = no override, else static_cast<int>(Schedule).
std::atomic<int> g_override{-1};

}  // namespace

bool simd_enabled_from_env() {
    static const bool enabled = [] {
        const char* v = std::getenv("SB_SIMD");
        if (!v) return true;
        const std::string s(v);
        return !(s == "off" || s == "0" || s == "false");
    }();
    return enabled;
}

Schedule active_schedule() {
    const int o = g_override.load(std::memory_order_relaxed);
    if (o >= 0) return static_cast<Schedule>(o);
    return simd_enabled_from_env() ? Schedule::Simd : Schedule::Scalar;
}

void set_schedule(std::optional<Schedule> s) {
    g_override.store(s ? static_cast<int>(*s) : -1, std::memory_order_relaxed);
}

// ---- magnitude ------------------------------------------------------------

namespace {

void magnitude_scalar(const double* vecs, std::size_t n, std::size_t ncomp,
                      double* out) {
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t c = 0; c < ncomp; ++c) {
            const double v = vecs[i * ncomp + c];
            s += v * v;
        }
        out[i] = std::sqrt(s);
    }
}

void magnitude_simd(const double* vecs, std::size_t n, std::size_t ncomp,
                    double* out) {
    if (ncomp == 3) {
        // The dominant case (3-vectors), unrolled to a straight-line
        // vectorizable body.  (x*x + y*y) + z*z associates exactly like the
        // scalar accumulation order, so the results stay bit-identical.
        SB_SIMD_LOOP
        for (std::size_t i = 0; i < n; ++i) {
            const double x = vecs[i * 3];
            const double y = vecs[i * 3 + 1];
            const double z = vecs[i * 3 + 2];
            out[i] = std::sqrt(x * x + y * y + z * z);
        }
        return;
    }
    SB_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t c = 0; c < ncomp; ++c) {
            const double v = vecs[i * ncomp + c];
            s += v * v;
        }
        out[i] = std::sqrt(s);
    }
}

}  // namespace

void magnitude(const double* vecs, std::size_t n, std::size_t ncomp, double* out,
               Schedule s) {
    if (s == Schedule::Simd) {
        magnitude_simd(vecs, n, ncomp, out);
    } else {
        magnitude_scalar(vecs, n, ncomp, out);
    }
}

void magnitude(const double* vecs, std::size_t n, std::size_t ncomp, double* out) {
    magnitude(vecs, n, ncomp, out, active_schedule());
}

// ---- histogram ------------------------------------------------------------

namespace {

std::size_t bin_of(double v, double min, double width, std::size_t bins) {
    // Keep this the single definition of the edge semantics: both schedules
    // and the doc comment in kernels.hpp describe exactly this function.
    std::size_t b = 0;
    if (width > 0.0) {
        const double x = (v - min) / width;
        if (x <= 0.0) {
            b = 0;
        } else if (x >= static_cast<double>(bins)) {
            b = bins - 1;  // v == max, or out of a caller-supplied range
        } else {
            b = static_cast<std::size_t>(x);
            if (b >= bins) b = bins - 1;
        }
    }
    return b;
}

void histogram_scalar(std::span<const double> values, double min, double width,
                      std::span<std::uint64_t> counts) {
    const std::size_t bins = counts.size();
    for (const double v : values) {
        if (std::isnan(v)) continue;
        ++counts[bin_of(v, min, width, bins)];
    }
}

void histogram_simd(std::span<const double> values, double min, double width,
                    std::span<std::uint64_t> counts) {
    const std::size_t bins = counts.size();
    constexpr std::size_t kLanes = 4;
    constexpr std::size_t kBlock = 1024;
    // Per-lane sub-histograms (the Halide scheduled-histogram pattern):
    // the serial dependence of repeated increments on one counts[] array is
    // broken by giving each lane its own copy, merged once at the end.
    std::vector<std::uint64_t> sub(kLanes * bins, 0);
    std::int32_t bin[kBlock];
    const double* p = values.data();
    std::size_t remaining = values.size();
    while (remaining > 0) {
        const std::size_t m = remaining < kBlock ? remaining : kBlock;
        // Pass 1, vectorizable: branch-free bin index per value (-1 = NaN).
        SB_SIMD_LOOP
        for (std::size_t k = 0; k < m; ++k) {
            const double v = p[k];
            const bool nan = std::isnan(v);
            // NaN is replaced by `min` before binning (a size_t cast of NaN
            // is undefined), then masked out below.
            const std::int32_t b =
                static_cast<std::int32_t>(bin_of(nan ? min : v, min, width, bins));
            bin[k] = nan ? -1 : b;
        }
        // Pass 2: scatter into the lane sub-histograms (k % kLanes picks the
        // lane, so consecutive increments never touch the same array).
        for (std::size_t k = 0; k < m; ++k) {
            if (bin[k] >= 0) {
                ++sub[(k % kLanes) * bins + static_cast<std::size_t>(bin[k])];
            }
        }
        p += m;
        remaining -= m;
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
        for (std::size_t b = 0; b < bins; ++b) counts[b] += sub[lane * bins + b];
    }
}

}  // namespace

void histogram_accumulate(std::span<const double> values, double min, double max,
                          std::span<std::uint64_t> counts, Schedule s) {
    if (counts.empty()) return;
    const double width = (max - min) / static_cast<double>(counts.size());
    if (s == Schedule::Simd && counts.size() <= 65536) {
        histogram_simd(values, min, width, counts);
    } else {
        histogram_scalar(values, min, width, counts);
    }
}

// ---- threshold ------------------------------------------------------------

namespace {

bool passes(double v, ThresholdOp op, double lo, double hi) {
    switch (op) {
        case ThresholdOp::Above: return v > lo;
        case ThresholdOp::Below: return v < lo;
        case ThresholdOp::Band: return v >= lo && v <= hi;
    }
    return false;
}

}  // namespace

std::size_t threshold_compact(std::span<const double> in, ThresholdOp op,
                              double lo, double hi, double* out, Schedule s) {
    std::size_t n = 0;
    if (s == Schedule::Simd) {
        constexpr std::size_t kBlock = 1024;
        std::uint8_t mask[kBlock];
        const double* p = in.data();
        std::size_t remaining = in.size();
        while (remaining > 0) {
            const std::size_t m = remaining < kBlock ? remaining : kBlock;
            switch (op) {
                case ThresholdOp::Above:
                    SB_SIMD_LOOP
                    for (std::size_t k = 0; k < m; ++k) mask[k] = p[k] > lo;
                    break;
                case ThresholdOp::Below:
                    SB_SIMD_LOOP
                    for (std::size_t k = 0; k < m; ++k) mask[k] = p[k] < lo;
                    break;
                case ThresholdOp::Band:
                    SB_SIMD_LOOP
                    for (std::size_t k = 0; k < m; ++k) {
                        mask[k] = p[k] >= lo && p[k] <= hi;
                    }
                    break;
            }
            // Compaction stays sequential: output order must equal input
            // order for bit-identity with the scalar path.
            for (std::size_t k = 0; k < m; ++k) {
                if (mask[k]) out[n++] = p[k];
            }
            p += m;
            remaining -= m;
        }
        return n;
    }
    for (const double v : in) {
        if (passes(v, op, lo, hi)) out[n++] = v;
    }
    return n;
}

// ---- moments --------------------------------------------------------------

MomentsAccum::MomentsAccum()
    : lo(std::numeric_limits<double>::infinity()),
      hi(-std::numeric_limits<double>::infinity()) {}

MomentsAccum moments_accumulate(std::span<const double> values, Schedule s) {
    MomentsAccum a;
    if (s == Schedule::Simd) {
        constexpr std::size_t kLanes = 4;
        double n[kLanes] = {};
        double s1[kLanes] = {};
        double s2[kLanes] = {};
        double s3[kLanes] = {};
        double lo[kLanes];
        double hi[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
            lo[l] = std::numeric_limits<double>::infinity();
            hi[l] = -std::numeric_limits<double>::infinity();
        }
        const std::size_t tail = values.size() % kLanes;
        const std::size_t main = values.size() - tail;
        for (std::size_t i = 0; i < main; i += kLanes) {
            SB_SIMD_LOOP
            for (std::size_t l = 0; l < kLanes; ++l) {
                const double v = values[i + l];
                const bool ok = !std::isnan(v);
                const double x = ok ? v : 0.0;
                n[l] += ok ? 1.0 : 0.0;
                s1[l] += x;
                s2[l] += x * x;
                s3[l] += x * x * x;
                lo[l] = std::min(lo[l], ok ? v : lo[l]);
                hi[l] = std::max(hi[l], ok ? v : hi[l]);
            }
        }
        // Merge lanes in lane order (deterministic), then the tail in index
        // order — reassociated relative to Scalar, but reproducibly so.
        for (std::size_t l = 0; l < kLanes; ++l) {
            a.n += n[l];
            a.s1 += s1[l];
            a.s2 += s2[l];
            a.s3 += s3[l];
            a.lo = std::min(a.lo, lo[l]);
            a.hi = std::max(a.hi, hi[l]);
        }
        for (std::size_t i = main; i < values.size(); ++i) {
            const double v = values[i];
            if (std::isnan(v)) continue;
            a.n += 1.0;
            a.s1 += v;
            a.s2 += v * v;
            a.s3 += v * v * v;
            a.lo = std::min(a.lo, v);
            a.hi = std::max(a.hi, v);
        }
        return a;
    }
    for (const double v : values) {
        if (std::isnan(v)) continue;
        a.n += 1.0;
        a.s1 += v;
        a.s2 += v * v;
        a.s3 += v * v * v;
        a.lo = std::min(a.lo, v);
        a.hi = std::max(a.hi, v);
    }
    return a;
}

// ---- strided copies -------------------------------------------------------

void scatter_strided(const std::byte* src, std::byte* dst, std::size_t n,
                     std::size_t dst_stride, std::size_t elem, Schedule s) {
    if (s == Schedule::Simd && elem == sizeof(std::uint64_t)) {
        // Word-wise strided store: memcpy through aligned temporaries would
        // defeat vectorization, so reinterpret via per-element memcpy into
        // locals the compiler folds into plain loads/stores.
        SB_SIMD_LOOP
        for (std::size_t k = 0; k < n; ++k) {
            std::uint64_t w;
            std::memcpy(&w, src + k * sizeof(std::uint64_t), sizeof(w));
            std::memcpy(dst + k * dst_stride * sizeof(std::uint64_t), &w,
                        sizeof(w));
        }
        return;
    }
    for (std::size_t k = 0; k < n; ++k) {
        std::memcpy(dst + k * dst_stride * elem, src + k * elem, elem);
    }
}

}  // namespace sb::core::kernels
