// The Moments component.
//
//   moments input-stream-name input-array-name [output-file]
//
// An endpoint like Histogram, but producing the statistical moments of a
// one-dimensional array per timestep: count, mean, variance (population),
// skewness, min, and max.  The ranks accumulate local power sums and
// combine them with a single elementwise allreduce; rank 0 appends one line
// per timestep to a text file.  The output is a tiny human-readable
// reduction of the data — the role the paper assigns to its endpoint
// components.
#pragma once

#include <iosfwd>
#include <optional>

#include "core/component.hpp"

namespace sb::core {

/// One timestep's moments.
struct MomentsResult {
    std::uint64_t step = 0;
    std::uint64_t count = 0;
    double mean = 0.0;
    double variance = 0.0;  // population
    double skewness = 0.0;  // 0 when undefined (n<2 or zero variance)
    double min = 0.0;
    double max = 0.0;
};

/// The collective kernel: every rank passes its partition and receives the
/// complete global result.  NaNs are skipped.
MomentsResult distributed_moments(const mpi::Communicator& comm,
                                  std::span<const double> local, std::uint64_t step);

void write_moments(std::ostream& os, const MomentsResult& m);
std::vector<MomentsResult> read_moments_file(const std::string& path);

/// Newest step id in an existing moments file, or nullopt when the file is
/// missing or holds no data row yet.  Lenient (a torn tail never throws):
/// a resuming sink uses it to skip replayed steps whose rows the previous
/// incarnation already wrote.
std::optional<std::uint64_t> last_moments_step(const std::string& path);

class Moments : public Component {
public:
    std::string name() const override { return "moments"; }
    std::string usage() const override {
        return "moments input-stream-name input-array-name [output-file]";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(2, usage());
        return Ports{{args.str(0, "input-stream-name")}, {}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(2, usage());
        Contract c;
        c.known = true;
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.exact_rank = 1;
        in.needs_float64 = true;
        c.inputs.push_back(std::move(in));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
