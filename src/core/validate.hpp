// The Validate component.
//
//   validate stream-a array-a stream-b array-b [tolerance]
//
// An endpoint that consumes two streams in lockstep and verifies they carry
// the same data: equal shapes, equal element kinds, and values equal to
// within `tolerance` (default 0: bit-exact for doubles), with both streams
// ending on the same step.  Any deviation throws, failing the workflow.
//
// This is workflow-level infrastructure the generic-component model makes
// cheap: a DAG can Fork its data through a refactored branch and the
// original one and Validate asserts equivalence "out of the box" — no
// custom comparison code, the same spirit as the paper's AIO-vs-SmartBlock
// check in §V.C.
#pragma once

#include "core/component.hpp"

namespace sb::core {

class Validate : public Component {
public:
    std::string name() const override { return "validate"; }
    std::string usage() const override {
        return "validate stream-a array-a stream-b array-b [tolerance]";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        return Ports{{args.str(0, "stream-a"), args.str(2, "stream-b")}, {}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        Contract c;
        c.known = true;
        c.inputs_equal = true;
        if (args.size() > 4 && args.real(4, "tolerance") < 0) {
            c.param_errors.push_back("validate: tolerance must be >= 0");
        }
        InputContract a;
        a.stream = args.str(0, "stream-a");
        a.array = args.str(1, "array-a");
        c.inputs.push_back(std::move(a));
        InputContract b;
        b.stream = args.str(2, "stream-b");
        b.array = args.str(3, "array-b");
        c.inputs.push_back(std::move(b));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
