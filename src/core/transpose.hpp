// The Transpose component.
//
//   transpose input-stream-name input-array-name perm
//             output-stream-name output-array-name
//
// Permutes the dimensions of an n-dimensional array: `perm` is a
// comma-separated permutation, e.g. "2,0,1" sends input dimension 2 to
// output dimension 0.  Like Dim-Reduce this exists because downstream
// components expect data in a specific row-major order (paper §III.A
// guideline 4); Transpose handles the cases where the required view is a
// re-ordering rather than an absorption of dimensions.  Labels and headers
// follow their dimensions through the permutation.
#pragma once

#include "core/component.hpp"

namespace sb::core {

/// Parses "2,0,1"-style permutations; validates it is a permutation of
/// 0..n-1.
std::vector<std::size_t> parse_permutation(const std::string& s);

/// The kernel, exposed for tests/benches: writes `dst` such that
/// dst[perm(idx)] = src[idx].  `perm[j]` is the *input* dimension that
/// becomes output dimension j.  `elem` is the element size in bytes.
void transpose_copy(std::span<const std::byte> src, const util::NdShape& in_shape,
                    std::span<const std::size_t> perm, std::span<std::byte> dst,
                    std::size_t elem);

/// Output shape under a permutation.
util::NdShape transpose_shape(const util::NdShape& in_shape,
                              std::span<const std::size_t> perm);

class Transpose : public Component {
public:
    std::string name() const override { return "transpose"; }
    std::string usage() const override {
        return "transpose input-stream-name input-array-name perm "
               "output-stream-name output-array-name   (perm e.g. 2,0,1)";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(5, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(3, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(5, usage());
        Contract c;
        c.known = true;
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        OutputContract out;
        out.stream = args.str(3, "output-stream-name");
        out.array = args.str(4, "output-array-name");
        try {
            out.perm = parse_permutation(args.str(2, "perm"));
            in.exact_rank = out.perm.size();
            out.rule = OutputContract::Shape::Permute;
        } catch (const util::ArgError& e) {
            // A malformed permutation is a deterministic first-step failure,
            // not a reason to hide the component from the analyzer.
            c.param_errors.push_back(e.what());
            out.rule = OutputContract::Shape::Unknown;
        }
        c.inputs.push_back(std::move(in));
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
