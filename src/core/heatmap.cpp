#include "core/heatmap.hpp"

#include <cmath>
#include <fstream>
#include <limits>

#include "util/timer.hpp"

namespace sb::core {

std::vector<std::uint8_t> render_gray(std::span<const double> values,
                                      std::uint64_t rows, std::uint64_t cols,
                                      std::uint64_t scale) {
    if (values.size() < rows * cols) {
        throw std::invalid_argument("render_gray: buffer smaller than rows*cols");
    }
    if (scale == 0) throw std::invalid_argument("render_gray: scale must be positive");
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const double v : values.subspan(0, rows * cols)) {
        if (std::isnan(v)) continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const bool flat = !(lo < hi);

    std::vector<std::uint8_t> px(rows * scale * cols * scale, 0);
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (std::uint64_t c = 0; c < cols; ++c) {
            const double v = values[r * cols + c];
            std::uint8_t g = 0;
            if (!std::isnan(v)) {
                g = flat ? 128
                         : static_cast<std::uint8_t>(
                               std::lround(255.0 * (v - lo) / (hi - lo)));
            }
            for (std::uint64_t dr = 0; dr < scale; ++dr) {
                for (std::uint64_t dc = 0; dc < scale; ++dc) {
                    px[(r * scale + dr) * cols * scale + c * scale + dc] = g;
                }
            }
        }
    }
    return px;
}

void write_pgm(const std::string& path, std::span<const std::uint8_t> pixels,
               std::uint64_t width, std::uint64_t height) {
    if (pixels.size() < width * height) {
        throw std::invalid_argument("write_pgm: pixel buffer too small");
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("heatmap: cannot write '" + path + "'");
    out << "P5\n" << width << ' ' << height << "\n255\n";
    out.write(reinterpret_cast<const char*>(pixels.data()),
              static_cast<std::streamsize>(width * height));
}

std::vector<std::uint8_t> read_pgm(const std::string& path, std::uint64_t& width,
                                   std::uint64_t& height) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("heatmap: cannot open '" + path + "'");
    std::string magic;
    std::uint64_t maxval = 0;
    in >> magic >> width >> height >> maxval;
    if (magic != "P5" || maxval != 255) {
        throw std::runtime_error("heatmap: '" + path + "' is not an 8-bit P5 PGM");
    }
    in.get();  // the single whitespace after the header
    std::vector<std::uint8_t> px(width * height);
    in.read(reinterpret_cast<char*>(px.data()),
            static_cast<std::streamsize>(px.size()));
    if (!in) throw std::runtime_error("heatmap: truncated PGM '" + path + "'");
    return px;
}

void Heatmap::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(3, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::string prefix = args.str(2, "output-path-prefix");
    const std::uint64_t scale = args.size() > 3 ? args.unsigned_integer(3, "scale") : 1;
    if (scale == 0) throw util::ArgError("heatmap: scale must be positive");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        if (info.shape.ndim() != 2) {
            throw std::runtime_error("heatmap: '" + in_array + "' must be 2-D, got " +
                                     info.shape.to_string());
        }
        if (info.kind != adios::DataKind::Float64) {
            throw std::runtime_error("heatmap: '" + in_array +
                                     "' must be double-precision");
        }

        // Row slabs gather back into the full image on rank 0.
        const util::Box box = util::partition_along(info.shape, 0, rank, size);
        const std::vector<double> local = reader.read<double>(in_array, box);
        const auto gathered = ctx.comm.allgatherv<double>(local);

        if (rank == 0) {
            std::vector<double> full;
            full.reserve(info.shape.volume());
            for (const auto& part : gathered) {
                full.insert(full.end(), part.begin(), part.end());
            }
            const auto px = render_gray(full, info.shape[0], info.shape[1], scale);
            write_pgm(prefix + "." + std::to_string(reader.step()) + ".pgm", px,
                      info.shape[1] * scale, info.shape[0] * scale);
        }

        record_step(ctx, reader.step(), timer.seconds(), local.size() * sizeof(double),
                    rank == 0 ? info.shape.volume() * scale * scale : 0);
        reader.end_step();
    }
}

}  // namespace sb::core
