#include "core/downsample.hpp"

#include <optional>

#include "util/timer.hpp"

namespace sb::core {

void Downsample::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(6, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::size_t dim = args.unsigned_integer(2, "dimension-index");
    const std::uint64_t stride = args.unsigned_integer(3, "stride");
    const std::string out_stream = args.str(4, "output-stream-name");
    const std::string out_array = args.str(5, "output-array-name");
    if (stride == 0) throw util::ArgError("downsample: stride must be positive");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);
    std::optional<adios::Writer> writer;

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        const util::NdShape& shape = info.shape;
        if (dim >= shape.ndim()) {
            throw std::runtime_error("downsample: dimension-index " +
                                     std::to_string(dim) + " out of range for " +
                                     shape.to_string());
        }
        const std::uint64_t kept = (shape[dim] + stride - 1) / stride;

        // Partition along the sampled dimension itself, in units of kept
        // rows, so each output block stays a contiguous hyperslab.
        const auto [k_off, k_cnt] = util::partition_range(kept, rank, size);
        const std::size_t elem = ffs::kind_size(info.kind);

        util::NdShape out_shape = shape;
        out_shape[dim] = kept;
        util::Box out_box = util::Box::whole(out_shape);
        out_box.offset[dim] = k_off;
        out_box.count[dim] = k_cnt;

        if (!writer) {
            writer.emplace(ctx.fabric, out_stream,
                           output_group("downsample", out_array, info.dim_labels,
                                        info.kind),
                           rank, size, ctx.stream_options);
        }
        writer->begin_step();
        const auto& dim_names = writer->group().find(out_array)->dimensions;
        for (std::size_t d = 0; d < out_shape.ndim(); ++d) {
            writer->set_dimension(dim_names[d], out_shape[d]);
        }
        // The sampled dimension's header shrinks to the kept rows; others
        // propagate unchanged.
        propagate_attributes(reader, *writer, AttrRules{in_array, out_array, {}, {dim}});
        if (const auto header = reader.attribute_strings(header_attr_key(in_array, dim))) {
            std::vector<std::string> filtered;
            for (std::uint64_t i = 0; i < header->size(); i += stride) {
                filtered.push_back((*header)[i]);
            }
            writer->write_attribute(header_attr_key(out_array, dim), filtered);
        }

        // Kept rows are copied straight into the pooled step buffer; they
        // tile out_box, so every byte is written.
        const std::span<std::byte> out_view = writer->put_view(out_array, out_box);
        std::uint64_t bytes_in = 0;
        std::vector<std::byte> tmp;
        for (std::uint64_t j = 0; j < k_cnt; ++j) {
            util::Box row_in = util::Box::whole(shape);
            row_in.offset[dim] = (k_off + j) * stride;
            row_in.count[dim] = 1;
            tmp.resize(row_in.volume() * elem);
            reader.read_bytes(in_array, row_in, tmp);
            bytes_in += tmp.size();

            util::Box row_out = out_box;
            row_out.offset[dim] = k_off + j;
            row_out.count[dim] = 1;
            util::copy_box(tmp, row_out, out_view, out_box, row_out, elem);
        }
        writer->end_step();

        record_step(ctx, reader.step(), timer.seconds(), bytes_in, out_view.size());
        reader.end_step();
    }
    if (!writer) {
        writer.emplace(ctx.fabric, out_stream,
                       output_group("downsample", out_array, {}), rank, size,
                       ctx.stream_options);
    }
    writer->close();
}

}  // namespace sb::core
