// Graph-level operator fusion (ROADMAP item 3, docs/PERFORMANCE.md).
//
// Every hop between adjacent components pays a publish/acquire round-trip,
// an FFS encode/decode, and a scheduling handoff per step — even when the
// producer and consumer run the same number of ranks and the data could
// flow straight through.  The planner here walks the workflow's dataflow
// graph (core/graph.hpp ports) before launch and collapses each maximal
// chain of fusible components into one synthesized fused unit that executes
// the composed kernels in a single pass per input block, reading only the
// chain's head stream and writing only its tail endpoint.
//
// Legality (all statically checked; anything else stays unfused):
//   - only the element-wise / reduction components fuse: Select, Magnitude,
//     Threshold, Dim-Reduce, Downsample mid-chain, Histogram and Moments as
//     chain tails (they are file endpoints);
//   - the connecting stream must have exactly one writer and one reader —
//     Fork/Reduce/All-Pairs fan-in/fan-out and any cross-stream hop are
//     fusion boundaries — and the downstream stage must read the array the
//     upstream stage writes;
//   - both sides must run the same process count (differing partitionings
//     re-distribute through the stream and cannot collapse);
//   - Moments only terminates an all-Magnitude prefix: its floating-point
//     sums are partition-order-sensitive, and Magnitude is the one
//     transform that preserves the partitioning Moments would have seen
//     unfused, keeping the output bit-identical (Histogram's integer counts
//     and exact min/max reductions are partition-proof, so it tails any
//     chain);
//   - a workflow containing any component with undeclared ports disables
//     fusion outright (an opaque component could open any stream, so
//     single-reader/single-writer cannot be proven).
//
// Execution preserves per-component semantics: each stage keeps its own
// instance label, StepStats sink, Compute spans, and fault points, so Fig. 9
// columns, traces, critical-path attribution, and SB_FAULT schedules name
// the original instances.  When a mid-chain stage needs a repartitioning
// the stream used to provide (e.g. Dim-Reduce removing the partitioned
// dimension), the executor falls back to an allgather of the intermediate
// (counted by the fusion.gather_fallbacks metric) rather than failing —
// fused runs never error where unfused runs would not.
//
// Gating: SB_FUSE env (unset -> on; "off"/"0"/"false" -> off), overridable
// per workflow via Workflow::set_fusion — mirrors SB_PLAN_CACHE /
// SB_READ_AHEAD.  Off reproduces the seed per-component execution exactly.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/threshold.hpp"

namespace sb::core {

/// Workflow-level fusion knob: Auto follows SB_FUSE, On/Off pin it.
enum class FusionMode { Auto, On, Off };

/// True unless SB_FUSE is "off"/"0"/"false" (read once, cached).
bool fusion_enabled_from_env();

/// Resolves a FusionMode against the environment gate.
bool fusion_enabled(FusionMode mode);

/// One fusible stage: a component's launch arguments, parsed once by the
/// planner so the executor never re-validates them mid-run.
struct FusedStage {
    enum class Kind {
        Select,
        Magnitude,
        Threshold,
        DimReduce,
        Downsample,
        Histogram,
        Moments,
    };
    Kind kind = Kind::Magnitude;
    std::size_t instance = 0;  // workflow instance index (add() order)
    std::string component;     // registry name ("dim-reduce", ...)
    std::string in_stream;
    std::string in_array;
    std::string out_stream;  // empty for the file-endpoint kinds
    std::string out_array;
    std::string out_file;  // Histogram / Moments

    std::size_t dim = 0;              // Select / Downsample
    std::vector<std::string> wanted;  // Select
    ThresholdMode tmode = ThresholdMode::Above;
    double lo = 0.0;  // Threshold
    double hi = 0.0;
    std::size_t remove = 0;  // Dim-Reduce
    std::size_t grow = 0;
    std::uint64_t stride = 1;  // Downsample
    std::size_t bins = 0;      // Histogram
};

/// A maximal fusible chain, upstream to downstream (always >= 2 stages).
struct FusedChain {
    std::vector<FusedStage> stages;

    const FusedStage& head() const { return stages.front(); }
    const FusedStage& tail() const { return stages.back(); }
    /// True when the tail publishes a stream (vs. writing a file endpoint).
    bool tail_writes_stream() const { return !tail().out_stream.empty(); }
};

/// Planner input: one workflow instance.
struct FusionCandidate {
    std::string component;
    int nprocs = 1;
    util::ArgList args;
    Ports ports;
};

struct FusionPlan {
    std::vector<FusedChain> chains;
    /// Human-readable reasons candidate links stayed unfused (for --dot /
    /// debugging; empty notes mean nothing looked fusible in the first
    /// place).
    std::vector<std::string> notes;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    /// Chain index containing instance `i`, or npos.
    std::size_t chain_of(std::size_t i) const;
    bool fused(std::size_t i) const { return chain_of(i) != npos; }
};

/// Statically plans fusion over the workflow's instances.  Pure: no streams
/// are touched, and an empty plan is always a valid (seed-semantics) answer.
/// `barrier_streams` names streams that must stay materialized — a link
/// through one of them is never fused.  The workflow passes every stream
/// with on-disk durable history here: eliding it would silently drop the
/// replay a cold-restarted or late-joining reader resumes from.
FusionPlan plan_fusion(const std::vector<FusionCandidate>& candidates,
                       const std::set<std::string>& barrier_streams = {});

/// Per-stage observability plumbing supplied by the workflow: the original
/// instance label ("magnitude#1") and stats sink, so a fused run reports
/// exactly like the unfused one.
struct FusedStageHooks {
    std::string instance;
    StepStats* stats = nullptr;
};

/// Runs one rank of a fused chain to end of stream: reads the head's input
/// stream, applies every stage per input block, writes the tail endpoint.
/// `hooks` parallels chain.stages.  ctx.comm is the fused unit's
/// communicator; ctx.attempt carries restart semantics to file endpoints.
void run_fused_chain(RunContext& ctx, const FusedChain& chain,
                     const std::vector<FusedStageHooks>& hooks);

}  // namespace sb::core
