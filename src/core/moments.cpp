#include "core/moments.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/kernels.hpp"
#include "util/timer.hpp"

namespace sb::core {

MomentsResult distributed_moments(const mpi::Communicator& comm,
                                  std::span<const double> local, std::uint64_t step) {
    // Local accumulators (n, sum, sum of squares, sum of cubes, min, max):
    // single-pass in the kernel layer; the Simd schedule lane-splits the
    // sums, which shifts the result by at most rounding order (kernels.hpp).
    const kernels::MomentsAccum acc =
        kernels::moments_accumulate(local, kernels::active_schedule());
    double lo = acc.lo;
    double hi = acc.hi;

    const double sums_in[4] = {acc.n, acc.s1, acc.s2, acc.s3};
    const auto sums = comm.allreduce_vec<double>(sums_in, mpi::ReduceOp::Sum);
    lo = comm.allreduce(lo, mpi::ReduceOp::Min);
    hi = comm.allreduce(hi, mpi::ReduceOp::Max);

    MomentsResult m;
    m.step = step;
    m.count = static_cast<std::uint64_t>(sums[0]);
    if (m.count == 0) return m;
    const double N = sums[0];
    m.mean = sums[1] / N;
    m.variance = std::max(0.0, sums[2] / N - m.mean * m.mean);
    if (m.count >= 2 && m.variance > 0.0) {
        const double third_central =
            sums[3] / N - 3.0 * m.mean * sums[2] / N + 2.0 * m.mean * m.mean * m.mean;
        m.skewness = third_central / std::pow(m.variance, 1.5);
    }
    m.min = lo;
    m.max = hi;
    return m;
}

void write_moments(std::ostream& os, const MomentsResult& m) {
    const auto old_precision =
        os.precision(std::numeric_limits<double>::max_digits10);
    os << m.step << ' ' << m.count << ' ' << m.mean << ' ' << m.variance << ' '
       << m.skewness << ' ' << m.min << ' ' << m.max << "\n";
    os.precision(old_precision);
}

std::optional<std::uint64_t> last_moments_step(const std::string& path) {
    std::ifstream in(path);
    std::optional<std::uint64_t> last;
    std::string line;
    while (in && std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream is(line);
        std::uint64_t step = 0;
        if (is >> step) {
            if (!last || step > *last) last = step;
        }
    }
    return last;
}

std::vector<MomentsResult> read_moments_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("moments: cannot open '" + path + "'");
    std::vector<MomentsResult> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream is(line);
        MomentsResult m;
        if (!(is >> m.step >> m.count >> m.mean >> m.variance >> m.skewness >> m.min >>
              m.max)) {
            throw std::runtime_error("moments: malformed line: " + line);
        }
        out.push_back(m);
    }
    return out;
}

void Moments::run(RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(2, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::string out_file = args.size() > 2 ? args.str(2, "output-file")
                                                 : "moments_" + in_array + ".txt";

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);

    std::ofstream out;
    std::optional<std::uint64_t> written;
    if (rank == 0) {
        // Restarted (warm or cold) incarnations append and skip steps whose
        // rows the previous incarnation already wrote — an input ack lost in
        // the crash makes the replay at-least-once, never duplicated output.
        const bool append = ctx.attempt > 0 || ctx.resume;
        if (append) written = last_moments_step(out_file);
        std::error_code ec;
        const bool has_prior =
            append && std::filesystem::file_size(out_file, ec) > 0 && !ec;
        out.open(out_file, append ? std::ios::app : std::ios::trunc);
        if (!out) throw std::runtime_error("moments: cannot write '" + out_file + "'");
        if (!has_prior) out << "# step count mean variance skewness min max\n";
    }

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        if (info.shape.ndim() != 1) {
            throw std::runtime_error("moments: '" + in_array + "' must be 1-D, got " +
                                     info.shape.to_string());
        }
        if (info.kind != adios::DataKind::Float64) {
            throw std::runtime_error("moments: '" + in_array +
                                     "' must be double-precision");
        }

        const util::Box box = util::partition_along(info.shape, 0, rank, size);
        const std::vector<double> local = reader.read<double>(in_array, box);
        const MomentsResult m = distributed_moments(ctx.comm, local, reader.step());

        if (rank == 0 && !(written && reader.step() <= *written)) {
            write_moments(out, m);
            out.flush();
        }
        record_step(ctx, reader.step(), timer.seconds(), local.size() * sizeof(double),
                    rank == 0 ? sizeof(MomentsResult) : 0);
        reader.end_step();
    }
}

}  // namespace sb::core
