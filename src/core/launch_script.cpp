#include "core/launch_script.hpp"

#include <sstream>

namespace sb::core {

namespace {

bool is_launcher(const std::string& tok) {
    return tok == "aprun" || tok == "mpirun" || tok == "srun" || tok == "mpiexec";
}

bool is_proc_flag(const std::string& tok) {
    return tok == "-n" || tok == "-np" || tok == "--ntasks";
}

}  // namespace

std::vector<LaunchEntry> parse_launch_script(const std::string& text) {
    std::vector<LaunchEntry> entries;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        // Strip comments.
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        util::ArgList toks = util::ArgList::split(line);
        if (toks.size() == 0) continue;
        if (toks.size() == 1 && toks.str(0, "token") == "wait") continue;

        const auto fail = [&](const std::string& msg) -> void {
            throw util::ArgError("launch script line " + std::to_string(lineno) + ": " +
                                 msg + ": " + line);
        };

        std::size_t i = 0;
        LaunchEntry e;
        e.nprocs = 1;
        e.line = lineno;
        if (is_launcher(toks.str(i, "launcher"))) {
            ++i;
            if (i >= toks.size() || !is_proc_flag(toks.str(i, "flag"))) {
                fail("expected -n/-np after launcher");
            }
            ++i;
            e.nprocs = static_cast<int>(toks.integer(i, "process count"));
            if (e.nprocs <= 0) fail("process count must be positive");
            ++i;
        }
        if (i >= toks.size()) fail("missing component name");
        e.component = toks.str(i++, "component");

        while (i < toks.size()) {
            std::string tok = toks.str(i++, "argument");
            if (tok == "&") continue;  // background marker
            if (tok == "<") {
                if (i >= toks.size()) fail("'<' with no file");
                tok = toks.str(i++, "input file");
            }
            // "&" glued to the last token: "in.cracksm&"
            if (!tok.empty() && tok.back() == '&') tok.pop_back();
            if (!tok.empty()) e.args.push_back(std::move(tok));
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

Workflow build_workflow(flexpath::Fabric& fabric, const std::string& script,
                        flexpath::StreamOptions options) {
    Workflow wf(fabric, options);
    for (LaunchEntry& e : parse_launch_script(script)) {
        wf.add(e.component, e.nprocs, std::move(e.args), e.line);
    }
    return wf;
}

}  // namespace sb::core
