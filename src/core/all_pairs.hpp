// The All-Pairs component (paper §VI, future work).
//
//   all-pairs input-stream-name input-array-name
//             output-stream-name output-array-name
//
// The SmartBlock components of the paper's evaluation all shrink (or
// preserve) the data; §VI notes that *data-increasing* analytics such as
// all-pairs calculations are common and fit the same approach.  This
// component demonstrates that: from a one-dimensional input of n values it
// produces the n x n matrix of pairwise absolute differences
// out[i][j] = |x_i - x_j|.  Each rank computes a slab of rows, reading the
// full input vector (which is small relative to the output).
#pragma once

#include "core/component.hpp"

namespace sb::core {

class AllPairs : public Component {
public:
    std::string name() const override { return "all-pairs"; }
    std::string usage() const override {
        return "all-pairs input-stream-name input-array-name "
               "output-stream-name output-array-name";
    }
    Ports ports(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        return Ports{{args.str(0, "input-stream-name")},
                     {args.str(2, "output-stream-name")}};
    }
    Contract contract(const util::ArgList& args) const override {
        args.require_at_least(4, usage());
        Contract c;
        c.known = true;
        InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.exact_rank = 1;
        in.needs_float64 = true;
        c.inputs.push_back(std::move(in));
        OutputContract out;
        out.stream = args.str(2, "output-stream-name");
        out.array = args.str(3, "output-array-name");
        out.rule = OutputContract::Shape::Square1D;
        out.kind = OutputContract::Kind::Float64;
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::core
