#include "fault/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace sb::fault {

namespace detail {
std::atomic<int> g_armed{0};
}  // namespace detail

namespace {

const char* action_name(Action a) {
    switch (a) {
        case Action::Throw: return "throw";
        case Action::Delay: return "delay";
        case Action::Crash: return "crash";
        case Action::Torn: return "torn";
    }
    return "?";
}

std::string trim(std::string s) {
    const auto notspace = [](char c) { return c != ' ' && c != '\t' && c != '\n'; };
    while (!s.empty() && !notspace(s.front())) s.erase(s.begin());
    while (!s.empty() && !notspace(s.back())) s.pop_back();
    return s;
}

}  // namespace

FaultSpec parse_spec(const std::string& entry) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("fault spec '" + entry +
                                    "': expected <point>=<action>");
    }
    FaultSpec spec;
    spec.point = trim(entry.substr(0, eq));
    std::string rhs = trim(entry.substr(eq + 1));

    // Action word runs to the first modifier character.
    const auto mod = rhs.find_first_of("@%x");
    std::string word = rhs.substr(0, mod);
    if (word == "throw") {
        spec.action = Action::Throw;
    } else if (word == "crash") {
        spec.action = Action::Crash;
    } else if (word.rfind("delay:", 0) == 0) {
        spec.action = Action::Delay;
        spec.delay_ms = std::stod(word.substr(6));
        spec.max_fires = 0;  // delays default to every eligible hit
    } else if (word.rfind("torn:", 0) == 0) {
        spec.action = Action::Torn;
        spec.torn_bytes = std::stoull(word.substr(5));
        if (spec.torn_bytes == 0) {
            throw std::invalid_argument("fault spec '" + entry +
                                        "': torn:<bytes> needs bytes > 0");
        }
    } else {
        throw std::invalid_argument(
            "fault spec '" + entry + "': unknown action '" + word +
            "' (throw | crash | delay:<ms> | torn:<bytes>)");
    }

    std::size_t i = mod;
    while (i != std::string::npos && i < rhs.size()) {
        const char kind = rhs[i++];
        std::size_t used = 0;
        const std::string tail = rhs.substr(i);
        try {
            if (kind == '@') {
                spec.at_hit = std::stoull(tail, &used);
            } else if (kind == '%') {
                spec.probability = std::stod(tail, &used);
            } else if (kind == 'x') {
                spec.max_fires = std::stoull(tail, &used);
            }
        } catch (const std::exception&) {
            used = 0;
        }
        if (used == 0) {
            throw std::invalid_argument("fault spec '" + entry +
                                        "': malformed modifier '" + kind + tail +
                                        "'");
        }
        i += used;
    }
    if (spec.at_hit > 0) spec.probability = -1.0;  // @N wins over %p
    return spec;
}

struct Registry::Armed {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::mt19937_64 rng;
};

Registry& Registry::global() {
    static Registry* r = new Registry();  // never destroyed: outlives statics
    return *r;
}

std::vector<Registry::Armed>& Registry::specs_locked() {
    if (!specs_) specs_ = new std::vector<Armed>();
    return *specs_;
}

void Registry::arm(FaultSpec spec) {
    std::lock_guard lock(mu_);
    auto& specs = specs_locked();
    Armed a;
    a.spec = std::move(spec);
    a.rng.seed(seed_ ^ (specs.size() + 1) * 0x9e3779b97f4a7c15ull);
    specs.push_back(std::move(a));
    detail::g_armed.store(static_cast<int>(specs.size()), std::memory_order_relaxed);
    SB_LOG(Info) << "fault: armed " << specs.back().spec.point << " ("
                 << action_name(specs.back().spec.action) << ")";
}

std::size_t Registry::arm_from_env(const char* value) {
    if (!value || !*value) return 0;
    std::size_t armed = 0;
    const std::string s(value);
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find_first_of(";,", start);
        if (end == std::string::npos) end = s.size();
        const std::string entry = trim(s.substr(start, end - start));
        start = end + 1;
        if (entry.empty()) continue;
        if (entry.rfind("seed=", 0) == 0) {
            set_seed(std::stoull(entry.substr(5)));
            continue;
        }
        arm(parse_spec(entry));
        ++armed;
    }
    return armed;
}

void Registry::disarm_all() {
    std::lock_guard lock(mu_);
    specs_locked().clear();
    detail::g_armed.store(0, std::memory_order_relaxed);
}

void Registry::set_seed(std::uint64_t seed) {
    std::lock_guard lock(mu_);
    seed_ = seed;
    auto& specs = specs_locked();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        specs[i].rng.seed(seed_ ^ (i + 1) * 0x9e3779b97f4a7c15ull);
    }
}

std::uint64_t Registry::hits(std::string_view point) const {
    std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    if (specs_) {
        for (const Armed& a : *specs_) {
            if (a.spec.point == point) n += a.hits;
        }
    }
    return n;
}

std::uint64_t Registry::fires(std::string_view point) const {
    std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    if (specs_) {
        for (const Armed& a : *specs_) {
            if (a.spec.point == point) n += a.fires;
        }
    }
    return n;
}

bool Registry::any_armed() const noexcept {
    return detail::g_armed.load(std::memory_order_relaxed) > 0;
}

void Registry::on_hit(std::string_view point, std::string_view scope) {
    // Decided under the lock, performed outside it (Throw/Crash unwind
    // through arbitrary callers; Delay must not serialize unrelated hits).
    Action action = Action::Throw;
    double delay_ms = 0.0;
    std::uint64_t torn_bytes = 0;
    std::string what;
    bool fire = false;
    {
        std::lock_guard lock(mu_);
        if (!specs_) return;
        std::string full;
        for (Armed& a : *specs_) {
            const std::string& p = a.spec.point;
            bool match = false;
            if (!p.empty() && p.back() == '*') {
                if (full.empty()) {
                    full = std::string(point);
                    if (!scope.empty()) full += ":" + std::string(scope);
                }
                match = full.compare(0, p.size() - 1,
                                     p.substr(0, p.size() - 1)) == 0;
            } else if (p == point) {
                match = true;
            } else if (!scope.empty() && p.size() == point.size() + 1 + scope.size() &&
                       p.compare(0, point.size(), point) == 0 &&
                       p[point.size()] == ':' &&
                       p.compare(point.size() + 1, scope.size(), scope) == 0) {
                match = true;
            }
            if (!match) continue;
            ++a.hits;
            if (a.spec.max_fires > 0 && a.fires >= a.spec.max_fires) continue;
            bool eligible;
            if (a.spec.at_hit > 0) {
                eligible = a.hits == a.spec.at_hit;
            } else if (a.spec.probability >= 0.0) {
                eligible = std::uniform_real_distribution<double>(0.0, 1.0)(a.rng) <
                           a.spec.probability;
            } else {
                eligible = true;
            }
            if (!eligible) continue;
            ++a.fires;
            fire = true;
            action = a.spec.action;
            delay_ms = a.spec.delay_ms;
            torn_bytes = a.spec.torn_bytes;
            what = "injected " + std::string(action_name(action)) + " at " +
                   std::string(point) +
                   (scope.empty() ? "" : ":" + std::string(scope)) + " (hit " +
                   std::to_string(a.hits) + " of spec '" + a.spec.point + "')";
            break;  // one fire per hit — first matching spec wins
        }
    }
    if (!fire) return;
    obs::Registry::global()
        .counter("fault.fires", {{"point", std::string(point)}})
        .inc();
    SB_LOG(Warn) << "fault: " << what;
    switch (action) {
        case Action::Delay:
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
            return;
        case Action::Throw:
            throw InjectedFault(what);
        case Action::Crash:
            throw InjectedCrash(what);
        case Action::Torn:
            throw TornWrite(what, torn_bytes);
    }
}

namespace {

/// Arms SB_FAULT at static-init time, so workflows launched from main()
/// inherit the environment schedule without any call-in.
struct EnvArm {
    EnvArm() {
        try {
            Registry::global().arm_from_env(std::getenv("SB_FAULT"));
        } catch (const std::exception& e) {
            SB_LOG(Error) << "fault: ignoring malformed SB_FAULT: " << e.what();
        }
    }
};
const EnvArm g_env_arm;

}  // namespace

}  // namespace sb::fault
