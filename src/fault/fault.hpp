// sb::fault — deterministic, seedable fault injection.
//
// Long-running in situ pipelines fail component-by-component, not as a
// whole; reproducing the paper's deployment scenario therefore needs a way
// to *cause* those failures on demand.  This registry arms named injection
// points threaded through the runtime — flexpath publish/acquire, spool
// reload, ffs decode, component run/step bodies — and fires a configured
// action (throw, delay, or crash-the-rank) at the Nth hit or with
// probability p.  Everything is deterministic under a fixed seed, so a
// chaos test replays the exact same failure schedule every run.
//
// Like SB_METRICS / SB_CHECK, the subsystem is always compiled in and costs
// one relaxed atomic load per hit() while nothing is armed.  Arm via the
// SB_FAULT environment variable or the programmatic API:
//
//   SB_FAULT="seed=7; flexpath.acquire:velos.fp=throw@5"
//   SB_FAULT="component.step=crash%0.01x3; ffs.decode=delay:20"
//
// Grammar: entries separated by ';' or ','.  "seed=N" reseeds the
// generators; every other entry is "<point>[:<scope>]=<action>" where
// action is "throw", "crash", "delay:<ms>", or "torn:<bytes>" (a disk
// fault: the instrumented write lands short by that many bytes, then the
// rank crashes — only write-path points honor it), followed by optional
// modifiers "@N" (fire on the Nth matching hit, 1-based), "%p" (fire with
// probability p per hit), and "xM" (fire at most M times; default 1,
// 0 = unlimited).  A point ending in '*' prefix-matches the full
// "point:scope" string.  See docs/RESILIENCE.md for the point reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sb::fault {

namespace detail {
extern std::atomic<int> g_armed;  // number of armed specs, process-wide
}

/// What an armed injection point does when it fires.
enum class Action {
    Throw,  // throw InjectedFault out of the instrumented call
    Delay,  // sleep delay_ms, then continue normally
    Crash,  // throw InjectedCrash — models the rank dying mid-operation
    Torn,   // throw TornWrite — the write lands torn_bytes short, then crashes
};

/// Thrown by Action::Throw: an injected, recoverable component failure.
class InjectedFault : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown by Action::Crash: models a rank crash.  The in-process MPI
/// stand-in has no real process to kill, so a crash is an exception the
/// component cannot have handled — the supervisor treats it exactly like a
/// vanished rank (see core/workflow.hpp).
class InjectedCrash : public InjectedFault {
public:
    using InjectedFault::InjectedFault;
};

/// Thrown by Action::Torn: models a power cut mid-write.  A write-path
/// injection point that understands torn writes catches this, performs the
/// write `bytes` short of complete, and rethrows as InjectedCrash (the torn
/// data is on disk; the rank is gone).  Points that don't understand torn
/// writes let it propagate — it is still an InjectedFault.
class TornWrite : public InjectedFault {
public:
    TornWrite(const std::string& what, std::uint64_t bytes)
        : InjectedFault(what), bytes_(bytes) {}
    /// How many trailing bytes of the instrumented write to drop.
    std::uint64_t bytes() const noexcept { return bytes_; }

private:
    std::uint64_t bytes_;
};

/// One armed injection, as parsed from SB_FAULT or built programmatically.
struct FaultSpec {
    /// "point", "point:scope", or a trailing-'*' prefix of "point:scope".
    std::string point;
    Action action = Action::Throw;
    /// Fire on exactly the Nth matching hit (1-based).  0 = every hit is
    /// eligible (subject to `probability`).
    std::uint64_t at_hit = 0;
    /// Fire with this per-hit probability; negative = disabled (fire on
    /// every eligible hit).  Ignored when at_hit is set.
    double probability = -1.0;
    double delay_ms = 0.0;  // Action::Delay sleep
    std::uint64_t torn_bytes = 0;  // Action::Torn shortfall
    /// Stop firing after this many fires; 0 = unlimited.
    std::uint64_t max_fires = 1;
};

/// Parses one SB_FAULT entry ("point=throw@3"); throws std::invalid_argument
/// on malformed input.
FaultSpec parse_spec(const std::string& entry);

/// Process-wide registry of armed faults.  Thread-safe.
class Registry {
public:
    static Registry& global();

    void arm(FaultSpec spec);

    /// Parses an SB_FAULT-style string ("seed=N; point=action; ...") and
    /// arms every entry.  nullptr/empty is a no-op.  Returns the number of
    /// specs armed.  Throws std::invalid_argument on malformed entries.
    std::size_t arm_from_env(const char* value);

    /// Disarms everything and resets hit/fire counts (tests isolate cases
    /// this way).  Does not reset the seed.
    void disarm_all();

    /// Reseeds the per-spec generators (probability mode).  Deterministic:
    /// the same seed and hit sequence fire the same faults.
    void set_seed(std::uint64_t seed);

    /// Matching hits / fires recorded against specs armed with exactly this
    /// point string.
    std::uint64_t hits(std::string_view point) const;
    std::uint64_t fires(std::string_view point) const;

    bool any_armed() const noexcept;

    /// Slow path of hit(); call through hit() only.
    void on_hit(std::string_view point, std::string_view scope);

private:
    Registry() = default;
    struct Armed;
    mutable std::mutex mu_;
    std::vector<Armed>* specs_ = nullptr;  // defined in fault.cpp
    std::uint64_t seed_ = 0x5eedf001u;
    std::vector<Armed>& specs_locked();
};

/// An injection point.  `scope` narrows the point to one instance (a stream
/// or component name): a spec armed as "point" matches every scope, one
/// armed as "point:scope" matches that scope only.  Free when nothing is
/// armed (one relaxed atomic load).
inline void hit(std::string_view point, std::string_view scope = {}) {
    if (detail::g_armed.load(std::memory_order_relaxed) == 0) return;
    Registry::global().on_hit(point, scope);
}

}  // namespace sb::fault
