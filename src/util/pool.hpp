// Size-classed, generation-aware recycling pool for step buffers.
//
// The publish hot path allocates one (or more) payload buffers per component
// per step, hands them to the transport, and frees them when every reader
// rank has released the step.  In steady state the sizes repeat step after
// step, so those allocations — and the page faults of fresh large blocks —
// are pure tax.  The pool closes the loop: `acquire(n)` hands out a
// `std::shared_ptr<std::vector<std::byte>>` whose deleter returns the
// storage to a per-size-class free list instead of the allocator, and the
// next `acquire` of that class reuses it.  Because ownership is the ordinary
// shared_ptr refcount, a buffer can never be recycled while *anything* still
// references it — a step retained for SB_FAULT replay pins its payloads
// exactly like a live reader does, so a retired buffer cannot alias a
// replayable step by construction.
//
// A/B gate: the SB_POOL env var ("off"/"0"/"false" disables; anything else,
// or unset, enables) mirrors SB_PLAN_CACHE, and set_enabled() overrides it
// programmatically (benches toggle legs this way).  Disabled, acquire() is a
// plain allocation and retired buffers free normally — byte-for-byte the
// seed's allocation behaviour.
//
// Generations: bump_generation() invalidates every buffer currently
// outstanding (they free instead of recycling when dropped) and discards the
// free lists — tests and benches isolate runs this way without waiting for
// stragglers.
//
// Under SB_CHECK the pool poisons recycled storage and registers the range
// with sb::check's lifetime quarantine (check/lifetime.hpp), so a read
// through a stale span into a retired buffer is reported as use-after-retire
// instead of silently aliasing the next step's data.
//
// Observability (docs/OBSERVABILITY.md): pool.hits / pool.misses /
// pool.retires counters, pool.bytes_recycled / pool.bytes_allocated byte
// counters, and pool.free_bytes / pool.outstanding_bytes gauges whose
// high-water marks bound the pool's memory footprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sb::obs {
class Counter;
class Gauge;
}  // namespace sb::obs

namespace sb::util {

/// A pooled byte buffer: an ordinary shared vector whose storage returns to
/// the pool when the last reference drops.  Converts implicitly to the
/// transport's `std::shared_ptr<const std::vector<std::byte>>`.
using PooledBytes = std::shared_ptr<std::vector<std::byte>>;

/// Whether acquire() recycles at all.  Initialized from the SB_POOL env var;
/// set_enabled() overrides (benches A/B legs, smartblock_run --pool=).
bool pool_enabled() noexcept;
void set_pool_enabled(bool on) noexcept;

class BufferPool {
public:
    /// The process-wide pool every publish path draws from.
    static BufferPool& global();

    BufferPool();
    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /// A buffer of exactly `n` bytes (capacity rounded up to the size
    /// class).  Contents are unspecified — callers fill the whole buffer.
    /// Never null; with the pool disabled this is a plain allocation.
    PooledBytes acquire(std::size_t n);

    /// Invalidates every outstanding buffer (they free on retire instead of
    /// recycling) and drops the free lists.
    void bump_generation();

    /// Drops the free lists (keeps the current generation).
    void trim();

    // ---- introspection (tests, benches) ------------------------------------
    std::size_t free_buffers() const;
    std::size_t free_bytes() const;
    std::uint64_t generation() const;

private:
    struct Shelf {
        std::vector<std::vector<std::byte>> buffers;  // each sized == capacity
    };

    void retire(std::vector<std::byte>&& storage, std::uint64_t gen) noexcept;
    void drop_free_locked();

    /// Deleter on every handed-out buffer: routes the storage back here.
    struct Retire {
        BufferPool* pool = nullptr;
        std::uint64_t gen = 0;
        void operator()(std::vector<std::byte>* v) const noexcept;
    };

    mutable std::mutex mu_;
    std::vector<Shelf> shelves_;  // indexed by size-class exponent
    std::uint64_t generation_ = 1;
    std::size_t free_bytes_ = 0;
    std::size_t outstanding_bytes_ = 0;

    // Resolved once; the registry guarantees pointer stability.
    obs::Counter* hits_ = nullptr;
    obs::Counter* misses_ = nullptr;
    obs::Counter* retires_ = nullptr;
    obs::Counter* bytes_recycled_ = nullptr;
    obs::Counter* bytes_allocated_ = nullptr;
    obs::Gauge* free_bytes_gauge_ = nullptr;
    obs::Gauge* outstanding_gauge_ = nullptr;
};

/// Shorthand for BufferPool::global().acquire(n) — the publish paths' one
/// call site per buffer.
inline PooledBytes acquire_bytes(std::size_t n) {
    return BufferPool::global().acquire(n);
}

}  // namespace sb::util
