// Multi-dimensional shapes, bounding boxes, and hyperslab copies.
//
// All arrays in SmartBlock are dense, row-major (C order: the last dimension
// varies fastest), matching how ADIOS expects simulations to pack their
// output.  A `Box` describes a hyperslab of a global array as an offset and a
// count per dimension; the FlexPath MxN redistribution engine is built on
// `intersect()` and `copy_box()` below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sb::util {

/// Shape of an n-dimensional array: one extent per dimension.
class NdShape {
public:
    NdShape() = default;
    explicit NdShape(std::vector<std::uint64_t> dims) : dims_(std::move(dims)) {}
    NdShape(std::initializer_list<std::uint64_t> dims) : dims_(dims) {}

    std::size_t ndim() const noexcept { return dims_.size(); }
    std::uint64_t operator[](std::size_t i) const { return dims_[i]; }
    std::uint64_t& operator[](std::size_t i) { return dims_[i]; }
    const std::vector<std::uint64_t>& dims() const noexcept { return dims_; }

    /// Total number of elements (1 for a 0-d scalar).
    std::uint64_t volume() const noexcept;

    /// Row-major strides, in elements.
    std::vector<std::uint64_t> strides() const;

    /// Linear row-major offset of a multi-index (must have ndim() entries).
    std::uint64_t linear_index(std::span<const std::uint64_t> idx) const;

    bool operator==(const NdShape&) const = default;

    std::string to_string() const;

private:
    std::vector<std::uint64_t> dims_;
};

/// A hyperslab of a global array: offset + count per dimension.
struct Box {
    std::vector<std::uint64_t> offset;
    std::vector<std::uint64_t> count;

    Box() = default;
    Box(std::vector<std::uint64_t> off, std::vector<std::uint64_t> cnt)
        : offset(std::move(off)), count(std::move(cnt)) {}

    /// The box covering an entire array of the given shape.
    static Box whole(const NdShape& shape);

    std::size_t ndim() const noexcept { return offset.size(); }
    std::uint64_t volume() const noexcept;
    bool empty() const noexcept { return volume() == 0; }

    /// True if this box lies entirely within an array of shape `shape`.
    bool within(const NdShape& shape) const;

    bool operator==(const Box&) const = default;

    std::string to_string() const;
};

/// Intersection of two boxes, or nullopt when they do not overlap.
/// Both boxes must have the same rank.
std::optional<Box> intersect(const Box& a, const Box& b);

/// Copies the elements of `region` (given in *global* coordinates) from a
/// source hyperslab buffer into a destination hyperslab buffer.
///
/// `src` holds the elements of box `src_box` in row-major order; `dst` holds
/// the elements of box `dst_box`.  `region` must be contained in both boxes.
/// `elem_size` is the size of one element in bytes.
void copy_box(std::span<const std::byte> src, const Box& src_box,
              std::span<std::byte> dst, const Box& dst_box,
              const Box& region, std::size_t elem_size);

/// One contiguous run of a hyperslab copy, in bytes relative to the source
/// and destination slab buffers: memcpy(dst + dst_offset, src + src_offset,
/// length).
struct CopyRun {
    std::uint64_t src_offset = 0;
    std::uint64_t dst_offset = 0;
    std::uint64_t length = 0;

    bool operator==(const CopyRun&) const = default;
};

/// A compiled hyperslab copy: the exact memcpy sequence copy_box would
/// perform, resolved once so repeated copies with the same geometry (the
/// steady-state MxN redistribution) skip all offset arithmetic.
using CopyPlan = std::vector<CopyRun>;

/// Resolves the copy of `region` between slabs `src_box` and `dst_box`
/// into contiguous runs (trailing dimensions that are full in both slabs
/// are collapsed into single runs).  Same preconditions as copy_box.
CopyPlan compile_copy_plan(const Box& src_box, const Box& dst_box,
                           const Box& region, std::size_t elem_size);

/// Replays a compiled plan.  The caller guarantees the buffers match the
/// geometry the plan was compiled for (checked by assert only).
void execute_copy_plan(std::span<const std::byte> src, std::span<std::byte> dst,
                       const CopyPlan& plan);

/// Evenly partitions `n` items among `size` parts; returns {offset, count}
/// for part `rank`.  The first `n % size` parts receive one extra item, so
/// every part's count differs by at most one — the paper's "approximately
/// equal amount of data" rule.
std::pair<std::uint64_t, std::uint64_t>
partition_range(std::uint64_t n, int rank, int size);

/// Partition an array of shape `shape` along dimension `dim` for `rank` of
/// `size`: the returned box covers the rank's slab (full extent in every
/// other dimension).  Ranks beyond the extent receive an empty box.
Box partition_along(const NdShape& shape, std::size_t dim, int rank, int size);

}  // namespace sb::util
