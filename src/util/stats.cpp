#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace sb::util {

Summary summarize(std::span<const double> xs) {
    Summary s;
    s.n = xs.size();
    if (xs.empty()) return s;
    s.min = xs[0];
    s.max = xs[0];
    double sum = 0.0;
    for (double x : xs) {
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
        sum += x;
    }
    s.mean = sum / static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs) var += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
    return s;
}

double mean(std::span<const double> xs) { return summarize(xs).mean; }

double percentile(std::span<const double> xs, double p) {
    if (xs.empty()) return 0.0;
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

namespace {

std::string format_scaled(double v, const char* const units[], int nunits) {
    int u = 0;
    while (v >= 1024.0 && u < nunits - 1) {
        v /= 1024.0;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
    return buf;
}

}  // namespace

std::string format_rate(double bytes_per_sec) {
    static const char* const units[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    return format_scaled(bytes_per_sec, units, 5);
}

std::string format_bytes(double bytes) {
    static const char* const units[] = {"B", "KB", "MB", "GB", "TB"};
    return format_scaled(bytes, units, 5);
}

}  // namespace sb::util
