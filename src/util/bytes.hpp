// Byte-copy helper shared by the wire/transport layers.
#pragma once

#include <cstddef>
#include <cstring>

namespace sb::util {

/// std::memcpy that tolerates empty ranges.  Passing a null pointer to
/// memcpy is undefined behaviour even when n == 0 (UBSan halts on it), and
/// empty spans/vectors legitimately return null data() — e.g. a rank
/// contributing zero elements to an allgatherv, or a variable with an empty
/// shape.
inline void copy_bytes(void* dst, const void* src, std::size_t n) {
    if (n != 0) std::memcpy(dst, src, n);
}

}  // namespace sb::util
