// Minimal thread-safe leveled logging.
//
// Components run as many concurrent rank threads; the logger serializes
// whole lines so interleaved output stays readable.  The level is settable
// globally (SB_LOG env var or set_level) and checked cheaply before
// formatting.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace sb::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& s);

namespace detail {
void log_line(LogLevel lvl, const std::string& msg);
}

/// Stream-style log statement: LOG(Info) << "x=" << x;
/// The temporary flushes one serialized line on destruction.
class LogStatement {
public:
    explicit LogStatement(LogLevel lvl) : lvl_(lvl) {}
    ~LogStatement() { detail::log_line(lvl_, os_.str()); }
    LogStatement(const LogStatement&) = delete;
    LogStatement& operator=(const LogStatement&) = delete;

    template <typename T>
    LogStatement& operator<<(const T& v) {
        os_ << v;
        return *this;
    }

private:
    LogLevel lvl_;
    std::ostringstream os_;
};

}  // namespace sb::util

#define SB_LOG_ENABLED(lvl) \
    (static_cast<int>(::sb::util::LogLevel::lvl) >= static_cast<int>(::sb::util::log_level()))

#define SB_LOG(lvl)                        \
    if (!SB_LOG_ENABLED(lvl)) {            \
    } else                                 \
        ::sb::util::LogStatement(::sb::util::LogLevel::lvl)
