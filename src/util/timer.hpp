// Wall-clock timing helpers used by the benchmark harnesses.
#pragma once

#include <chrono>

namespace sb::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
public:
    WallTimer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace sb::util
