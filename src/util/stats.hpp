// Small statistics helpers for the evaluation harnesses (per-component
// timestep times averaged over a communicator, throughput summaries, ...).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace sb::util {

struct Summary {
    std::size_t n = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;  // population standard deviation
};

/// Summary statistics of a sample; all-zero summary for an empty span.
Summary summarize(std::span<const double> xs);

double mean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100].
double percentile(std::span<const double> xs, double p);

/// "12.3 KB/s"-style human formatting of a bytes-per-second rate.
std::string format_rate(double bytes_per_sec);

/// "12.3 MB"-style human formatting of a byte count.
std::string format_bytes(double bytes);

}  // namespace sb::util
