#include "util/argparse.hpp"

#include <sstream>

namespace sb::util {

const std::string& ArgList::str(std::size_t i, const std::string& name) const {
    if (i >= args_.size()) {
        throw ArgError("missing argument <" + name + "> at position " +
                       std::to_string(i));
    }
    return args_[i];
}

std::int64_t ArgList::integer(std::size_t i, const std::string& name) const {
    const std::string& s = str(i, name);
    try {
        std::size_t pos = 0;
        const std::int64_t v = std::stoll(s, &pos);
        if (pos != s.size()) throw std::invalid_argument(s);
        return v;
    } catch (const std::exception&) {
        throw ArgError("argument <" + name + "> must be an integer, got '" + s + "'");
    }
}

std::uint64_t ArgList::unsigned_integer(std::size_t i, const std::string& name) const {
    const std::int64_t v = integer(i, name);
    if (v < 0) {
        throw ArgError("argument <" + name + "> must be non-negative, got " +
                       std::to_string(v));
    }
    return static_cast<std::uint64_t>(v);
}

double ArgList::real(std::size_t i, const std::string& name) const {
    const std::string& s = str(i, name);
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size()) throw std::invalid_argument(s);
        return v;
    } catch (const std::exception&) {
        throw ArgError("argument <" + name + "> must be a number, got '" + s + "'");
    }
}

std::vector<std::string> ArgList::rest(std::size_t i) const {
    if (i >= args_.size()) return {};
    return {args_.begin() + static_cast<std::ptrdiff_t>(i), args_.end()};
}

void ArgList::require_at_least(std::size_t n, const std::string& usage) const {
    if (args_.size() < n) {
        throw ArgError("expected at least " + std::to_string(n) +
                       " arguments, got " + std::to_string(args_.size()) +
                       "\nusage: " + usage);
    }
}

ArgList ArgList::split(const std::string& line) {
    std::istringstream is(line);
    std::vector<std::string> out;
    std::string tok;
    while (is >> tok) out.push_back(tok);
    return ArgList(std::move(out));
}

}  // namespace sb::util
