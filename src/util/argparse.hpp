// Positional-argument helper for SmartBlock components.
//
// Components in the paper are configured entirely through positional
// command-line parameters (Figs. 1-3), e.g.
//     select input-stream input-array dim-index output-stream output-array q1 q2 ...
// ArgList wraps an argv-style vector and provides typed, validated access
// with useful error messages naming the missing/invalid parameter.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sb::util {

/// Error thrown when a component's arguments are missing or malformed.
class ArgError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class ArgList {
public:
    ArgList() = default;
    explicit ArgList(std::vector<std::string> args) : args_(std::move(args)) {}

    std::size_t size() const noexcept { return args_.size(); }
    const std::vector<std::string>& raw() const noexcept { return args_; }

    /// Positional string argument; `name` is used in error messages.
    const std::string& str(std::size_t i, const std::string& name) const;

    /// Positional integer argument (decimal).
    std::int64_t integer(std::size_t i, const std::string& name) const;

    /// Positional non-negative integer.
    std::uint64_t unsigned_integer(std::size_t i, const std::string& name) const;

    /// Positional floating-point argument.
    double real(std::size_t i, const std::string& name) const;

    /// All arguments from position `i` to the end (possibly empty).
    std::vector<std::string> rest(std::size_t i) const;

    /// Throws unless at least `n` arguments are present.  `usage` is the
    /// component's usage line, included in the error.
    void require_at_least(std::size_t n, const std::string& usage) const;

    /// Splits a command line on whitespace (no quoting).
    static ArgList split(const std::string& line);

private:
    std::vector<std::string> args_;
};

}  // namespace sb::util
