#include "util/ndarray.hpp"

#include <cassert>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace sb::util {

std::uint64_t NdShape::volume() const noexcept {
    std::uint64_t v = 1;
    for (auto d : dims_) v *= d;
    return v;
}

std::vector<std::uint64_t> NdShape::strides() const {
    std::vector<std::uint64_t> s(dims_.size(), 1);
    for (std::size_t i = dims_.size(); i-- > 1;) {
        s[i - 1] = s[i] * dims_[i];
    }
    return s;
}

std::uint64_t NdShape::linear_index(std::span<const std::uint64_t> idx) const {
    if (idx.size() != dims_.size()) {
        throw std::invalid_argument("linear_index: rank mismatch");
    }
    std::uint64_t off = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        off = off * dims_[i] + idx[i];
    }
    return off;
}

std::string NdShape::to_string() const {
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i) os << ',';
        os << dims_[i];
    }
    os << ')';
    return os.str();
}

Box Box::whole(const NdShape& shape) {
    return Box(std::vector<std::uint64_t>(shape.ndim(), 0), shape.dims());
}

std::uint64_t Box::volume() const noexcept {
    std::uint64_t v = 1;
    for (auto c : count) v *= c;
    return v;
}

bool Box::within(const NdShape& shape) const {
    if (ndim() != shape.ndim()) return false;
    for (std::size_t i = 0; i < ndim(); ++i) {
        if (offset[i] + count[i] > shape[i]) return false;
    }
    return true;
}

std::string Box::to_string() const {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < ndim(); ++i) {
        if (i) os << ", ";
        os << offset[i] << '+' << count[i];
    }
    os << ']';
    return os.str();
}

std::optional<Box> intersect(const Box& a, const Box& b) {
    if (a.ndim() != b.ndim()) {
        throw std::invalid_argument("intersect: rank mismatch");
    }
    Box r;
    r.offset.resize(a.ndim());
    r.count.resize(a.ndim());
    for (std::size_t i = 0; i < a.ndim(); ++i) {
        const std::uint64_t lo = std::max(a.offset[i], b.offset[i]);
        const std::uint64_t hi =
            std::min(a.offset[i] + a.count[i], b.offset[i] + b.count[i]);
        if (hi <= lo) return std::nullopt;
        r.offset[i] = lo;
        r.count[i] = hi - lo;
    }
    return r;
}

namespace {

// Linear element offset of global coordinate `gidx` inside hyperslab `box`
// stored row-major.
std::uint64_t slab_offset(const Box& box, std::span<const std::uint64_t> gidx) {
    std::uint64_t off = 0;
    for (std::size_t i = 0; i < box.ndim(); ++i) {
        off = off * box.count[i] + (gidx[i] - box.offset[i]);
    }
    return off;
}

}  // namespace

void copy_box(std::span<const std::byte> src, const Box& src_box,
              std::span<std::byte> dst, const Box& dst_box,
              const Box& region, std::size_t elem_size) {
    const std::size_t nd = region.ndim();
    if (src_box.ndim() != nd || dst_box.ndim() != nd) {
        throw std::invalid_argument("copy_box: rank mismatch");
    }
    if (region.empty()) return;
    assert(src.size() >= src_box.volume() * elem_size);
    assert(dst.size() >= dst_box.volume() * elem_size);

    if (nd == 0) {  // scalar
        std::memcpy(dst.data(), src.data(), elem_size);
        return;
    }

    // Iterate over all rows of the region (all dims but the last); each row
    // is a contiguous run of region.count[nd-1] elements in both slabs.
    std::vector<std::uint64_t> idx(region.offset);
    const std::uint64_t row_elems = region.count[nd - 1];
    const std::size_t row_bytes = row_elems * elem_size;
    for (;;) {
        const std::uint64_t soff = slab_offset(src_box, idx) * elem_size;
        const std::uint64_t doff = slab_offset(dst_box, idx) * elem_size;
        std::memcpy(dst.data() + doff, src.data() + soff, row_bytes);

        // Advance the multi-index over dims [0, nd-1), odometer style.
        std::size_t d = nd - 1;
        for (;;) {
            if (d == 0) return;
            --d;
            if (++idx[d] < region.offset[d] + region.count[d]) break;
            idx[d] = region.offset[d];
        }
    }
}

std::pair<std::uint64_t, std::uint64_t>
partition_range(std::uint64_t n, int rank, int size) {
    if (size <= 0 || rank < 0 || rank >= size) {
        throw std::invalid_argument("partition_range: bad rank/size");
    }
    const std::uint64_t base = n / static_cast<std::uint64_t>(size);
    const std::uint64_t extra = n % static_cast<std::uint64_t>(size);
    const std::uint64_t r = static_cast<std::uint64_t>(rank);
    const std::uint64_t count = base + (r < extra ? 1 : 0);
    const std::uint64_t offset = r * base + std::min(r, extra);
    return {offset, count};
}

Box partition_along(const NdShape& shape, std::size_t dim, int rank, int size) {
    if (dim >= shape.ndim()) {
        throw std::invalid_argument("partition_along: dim out of range");
    }
    Box b = Box::whole(shape);
    auto [off, cnt] = partition_range(shape[dim], rank, size);
    b.offset[dim] = off;
    b.count[dim] = cnt;
    return b;
}

}  // namespace sb::util
