#include "util/ndarray.hpp"

#include <cassert>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "check/lifetime.hpp"

namespace sb::util {

std::uint64_t NdShape::volume() const noexcept {
    std::uint64_t v = 1;
    for (auto d : dims_) v *= d;
    return v;
}

std::vector<std::uint64_t> NdShape::strides() const {
    std::vector<std::uint64_t> s(dims_.size(), 1);
    for (std::size_t i = dims_.size(); i-- > 1;) {
        s[i - 1] = s[i] * dims_[i];
    }
    return s;
}

std::uint64_t NdShape::linear_index(std::span<const std::uint64_t> idx) const {
    if (idx.size() != dims_.size()) {
        throw std::invalid_argument("linear_index: rank mismatch");
    }
    std::uint64_t off = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        off = off * dims_[i] + idx[i];
    }
    return off;
}

std::string NdShape::to_string() const {
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i) os << ',';
        os << dims_[i];
    }
    os << ')';
    return os.str();
}

Box Box::whole(const NdShape& shape) {
    return Box(std::vector<std::uint64_t>(shape.ndim(), 0), shape.dims());
}

std::uint64_t Box::volume() const noexcept {
    std::uint64_t v = 1;
    for (auto c : count) v *= c;
    return v;
}

bool Box::within(const NdShape& shape) const {
    if (ndim() != shape.ndim()) return false;
    for (std::size_t i = 0; i < ndim(); ++i) {
        if (offset[i] + count[i] > shape[i]) return false;
    }
    return true;
}

std::string Box::to_string() const {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < ndim(); ++i) {
        if (i) os << ", ";
        os << offset[i] << '+' << count[i];
    }
    os << ']';
    return os.str();
}

std::optional<Box> intersect(const Box& a, const Box& b) {
    if (a.ndim() != b.ndim()) {
        throw std::invalid_argument("intersect: rank mismatch");
    }
    Box r;
    r.offset.resize(a.ndim());
    r.count.resize(a.ndim());
    for (std::size_t i = 0; i < a.ndim(); ++i) {
        const std::uint64_t lo = std::max(a.offset[i], b.offset[i]);
        const std::uint64_t hi =
            std::min(a.offset[i] + a.count[i], b.offset[i] + b.count[i]);
        if (hi <= lo) return std::nullopt;
        r.offset[i] = lo;
        r.count[i] = hi - lo;
    }
    return r;
}

namespace {

// Core of copy_box / compile_copy_plan: visits every contiguous run of the
// region copy as (src_byte_offset, dst_byte_offset, run_bytes).  Trailing
// dimensions that are full in *both* slabs are collapsed into a single run,
// and the remaining dimensions are walked odometer-style with the byte
// offsets advanced incrementally from precomputed strides — no per-row
// slab-offset rederivation.
template <typename EmitRun>
void for_each_run(const Box& src_box, const Box& dst_box, const Box& region,
                  std::size_t elem_size, EmitRun&& emit) {
    const std::size_t nd = region.ndim();
    if (src_box.ndim() != nd || dst_box.ndim() != nd) {
        throw std::invalid_argument("copy_box: rank mismatch");
    }
    if (region.empty()) return;

    if (nd == 0) {  // scalar
        emit(std::uint64_t{0}, std::uint64_t{0}, elem_size);
        return;
    }

    // Collapse trailing dimensions: a dimension may fold into the
    // contiguous run when the region spans its full extent in both slabs
    // (containment then forces the offsets to coincide too).  The first
    // non-full dimension can still contribute its partial count as the
    // outermost factor of the run.
    std::size_t split = nd - 1;
    while (split > 0 && region.count[split] == src_box.count[split] &&
           region.count[split] == dst_box.count[split]) {
        --split;
    }
    std::uint64_t run_elems = region.count[split];
    for (std::size_t d = split + 1; d < nd; ++d) run_elems *= region.count[d];
    const std::uint64_t run_bytes = run_elems * elem_size;

    // Byte strides of each slab dimension, and each dimension's incremental
    // advance delta: stepping dim d after exhausting dims (d, split)
    // rewinds the inner dimensions, so the net move is
    // stride[d] - sum over inner dims of (count-1)*stride.
    std::uint64_t soff = 0, doff = 0;  // run start offsets, bytes
    std::vector<std::uint64_t> sstep(split), dstep(split);
    {
        std::uint64_t sstride = elem_size, dstride = elem_size;
        std::uint64_t srewind = 0, drewind = 0;
        for (std::size_t d = nd; d-- > 0;) {
            soff += (region.offset[d] - src_box.offset[d]) * sstride;
            doff += (region.offset[d] - dst_box.offset[d]) * dstride;
            if (d < split) {
                sstep[d] = sstride - srewind;
                dstep[d] = dstride - drewind;
                srewind += (region.count[d] - 1) * sstride;
                drewind += (region.count[d] - 1) * dstride;
            }
            sstride *= src_box.count[d];
            dstride *= dst_box.count[d];
        }
    }

    if (split == 0) {
        emit(soff, doff, run_bytes);
        return;
    }
    std::vector<std::uint64_t> idx(split, 0);
    for (;;) {
        emit(soff, doff, run_bytes);
        std::size_t d = split;
        for (;;) {
            if (d == 0) return;
            --d;
            if (++idx[d] < region.count[d]) {
                soff += sstep[d];
                doff += dstep[d];
                break;
            }
            idx[d] = 0;
        }
    }
}

}  // namespace

void copy_box(std::span<const std::byte> src, const Box& src_box,
              std::span<std::byte> dst, const Box& dst_box,
              const Box& region, std::size_t elem_size) {
    assert(src.size() >= src_box.volume() * elem_size);
    assert(dst.size() >= dst_box.volume() * elem_size);
    // Read chokepoint of the sb::check view-lifetime guard: a source span
    // that end_step already invalidated is caught here.
    check::note_read(src.data(), src.size());
    for_each_run(src_box, dst_box, region, elem_size,
                 [&](std::uint64_t soff, std::uint64_t doff, std::uint64_t n) {
                     std::memcpy(dst.data() + doff, src.data() + soff, n);
                 });
}

CopyPlan compile_copy_plan(const Box& src_box, const Box& dst_box,
                           const Box& region, std::size_t elem_size) {
    CopyPlan plan;
    if (region.ndim() > 0 && !region.empty()) {
        // Runs per copy = region volume / collapsed run length; reserve the
        // worst case (one run per innermost row) cheaply via the first run.
        plan.reserve(region.volume() / std::max<std::uint64_t>(
                                           region.count[region.ndim() - 1], 1));
    }
    for_each_run(src_box, dst_box, region, elem_size,
                 [&](std::uint64_t soff, std::uint64_t doff, std::uint64_t n) {
                     plan.push_back(CopyRun{soff, doff, n});
                 });
    return plan;
}

void execute_copy_plan(std::span<const std::byte> src, std::span<std::byte> dst,
                       const CopyPlan& plan) {
    check::note_read(src.data(), src.size());
    for (const CopyRun& r : plan) {
        assert(r.src_offset + r.length <= src.size());
        assert(r.dst_offset + r.length <= dst.size());
        std::memcpy(dst.data() + r.dst_offset, src.data() + r.src_offset, r.length);
    }
}

std::pair<std::uint64_t, std::uint64_t>
partition_range(std::uint64_t n, int rank, int size) {
    if (size <= 0 || rank < 0 || rank >= size) {
        throw std::invalid_argument("partition_range: bad rank/size");
    }
    const std::uint64_t base = n / static_cast<std::uint64_t>(size);
    const std::uint64_t extra = n % static_cast<std::uint64_t>(size);
    const std::uint64_t r = static_cast<std::uint64_t>(rank);
    const std::uint64_t count = base + (r < extra ? 1 : 0);
    const std::uint64_t offset = r * base + std::min(r, extra);
    return {offset, count};
}

Box partition_along(const NdShape& shape, std::size_t dim, int rank, int size) {
    if (dim >= shape.ndim()) {
        throw std::invalid_argument("partition_along: dim out of range");
    }
    Box b = Box::whole(shape);
    auto [off, cnt] = partition_range(shape[dim], rank, size);
    b.offset[dim] = off;
    b.count[dim] = cnt;
    return b;
}

}  // namespace sb::util
