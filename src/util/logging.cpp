#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sb::util {

namespace {

// Elapsed-time origin: first use of the logger, which for SB_LOG-enabled
// runs is effectively process start.
std::chrono::steady_clock::time_point log_epoch() {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

// Anchor the epoch during static initialization rather than at first log.
[[maybe_unused]] const auto g_epoch_anchor = log_epoch();

// Compact per-thread id: sequential in first-log order, so a workflow's
// rank threads come out as small stable numbers instead of opaque pthread
// handles.
unsigned thread_log_id() {
    static std::atomic<unsigned> next{0};
    thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::atomic<int> g_level = [] {
    if (const char* env = std::getenv("SB_LOG")) {
        try {
            return static_cast<int>(parse_log_level(env));
        } catch (...) {
            // fall through to default
        }
    }
    return static_cast<int>(LogLevel::Warn);
}();

std::mutex& log_mutex() {
    static std::mutex m;
    return m;
}

const char* level_name(LogLevel lvl) {
    switch (lvl) {
        case LogLevel::Trace: return "TRACE";
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}

}  // namespace

LogLevel log_level() noexcept {
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel lvl) noexcept {
    g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
    std::string t;
    t.reserve(s.size());
    for (char c : s) t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    if (t == "trace") return LogLevel::Trace;
    if (t == "debug") return LogLevel::Debug;
    if (t == "info") return LogLevel::Info;
    if (t == "warn" || t == "warning") return LogLevel::Warn;
    if (t == "error") return LogLevel::Error;
    if (t == "off" || t == "none") return LogLevel::Off;
    throw std::invalid_argument("unknown log level: " + s);
}

namespace detail {

void log_line(LogLevel lvl, const std::string& msg) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - log_epoch())
            .count();
    const unsigned tid = thread_log_id();
    const std::lock_guard<std::mutex> lock(log_mutex());
    std::fprintf(stderr, "[%9.3fs %-5s t%02u] %s\n", elapsed, level_name(lvl), tid,
                 msg.c_str());
}

}  // namespace detail

}  // namespace sb::util
