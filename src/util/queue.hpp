// Bounded, closable, blocking MPMC queue.
//
// This is the buffering primitive behind FlexPath's writer-side queues
// (paper §IV point 4): a writer can run ahead of its readers by up to the
// queue capacity, overlapping computation with downstream I/O; when the
// queue is full the writer blocks (backpressure).  All waits use condition
// variables with predicates — never spinning (Core Guidelines CP.42).
//
// The queue stays obs-free so it remains a standalone primitive, but its
// mutex and blocked waits do feed the sb::check lock-order / wait-for
// analyzers (one relaxed atomic load each when SB_CHECK is off).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "check/mutex.hpp"
#include "check/waits.hpp"

namespace sb::util {

/// Thrown by push()/try_push_for() once the queue is closed.  Typed (and
/// named) so workflow supervision can tell orderly teardown — a peer
/// aborted the stream and closed its queue — from a logic bug pushing into
/// a queue that was never meant to close.
class QueueAborted : public std::runtime_error {
public:
    explicit QueueAborted(const std::string& name)
        : std::runtime_error("queue '" + name + "' closed: push rejected"),
          name_(name) {}
    const std::string& queue_name() const noexcept { return name_; }

private:
    std::string name_;
};

template <typename T>
class BoundedQueue {
public:
    /// capacity == 0 gives rendezvous semantics: push() blocks until a
    /// consumer has popped the item (used by the "synchronous handoff"
    /// ablation).  `name` labels the queue in sb::check diagnostics.
    explicit BoundedQueue(std::size_t capacity, std::string name = {})
        : capacity_(capacity),
          name_(std::move(name)),
          mu_("util.BoundedQueue('" + name_ + "').mu") {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Blocks until there is room, then enqueues.  Throws QueueAborted if
    /// the queue was closed before the push was accepted (rendezvous mode:
    /// before the item was taken by a consumer).
    void push(T item) {
        std::unique_lock lock(mu_);
        if (capacity_ == 0) {
            // Rendezvous: enqueue, then wait for the item to be taken.
            if (closed_) throw QueueAborted(name_);
            q_.push_back(std::move(item));
            const std::uint64_t my_seq = ++pushed_;
            not_empty_.notify_all();
            timed_wait(popped_cv_, lock, blocked_push_s_, blocked_pushes_,
                       check::WaitKind::QueuePush,
                       [&] { return closed_ || popped_ >= my_seq; });
            if (popped_ < my_seq) throw QueueAborted(name_);
            return;
        }
        timed_wait(not_full_, lock, blocked_push_s_, blocked_pushes_,
                   check::WaitKind::QueuePush,
                   [&] { return closed_ || q_.size() < capacity_; });
        if (closed_) throw QueueAborted(name_);
        q_.push_back(std::move(item));
        not_empty_.notify_one();
    }

    /// push() with a deadline: blocks at most `seconds` for room.  Returns
    /// true on success; false on timeout, leaving `item` intact so the
    /// caller can report or retry.  Throws QueueAborted when closed.
    /// Rendezvous queues (capacity 0) have no bounded-wait semantics and
    /// fall back to the blocking push.
    bool try_push_for(T& item, double seconds) {
        std::unique_lock lock(mu_);
        if (capacity_ == 0) {
            lock.unlock();
            push(std::move(item));
            return true;
        }
        bool ok = closed_ || q_.size() < capacity_;
        if (!ok) {
            std::string what;
            if (check::enabled()) {
                what = "queue '" + name_ + "' push (deadline " +
                       std::to_string(seconds) + "s) size=" +
                       std::to_string(q_.size()) + "/cap=" +
                       std::to_string(capacity_);
            }
            const auto t0 = std::chrono::steady_clock::now();
            ok = check::wait_checked_for(
                not_full_, lock, check::WaitKind::QueuePush, what,
                [&] { return closed_ || q_.size() < capacity_; }, seconds);
            blocked_push_s_ +=
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            ++blocked_pushes_;
        }
        if (!ok) return false;
        if (closed_) throw QueueAborted(name_);
        q_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; nullopt signals end of stream.
    std::optional<T> pop() {
        std::unique_lock lock(mu_);
        timed_wait(not_empty_, lock, blocked_pop_s_, blocked_pops_,
                   check::WaitKind::QueuePop,
                   [&] { return closed_ || !q_.empty(); });
        if (q_.empty()) return std::nullopt;
        T item = std::move(q_.front());
        q_.pop_front();
        ++popped_;
        not_full_.notify_one();
        popped_cv_.notify_all();
        return item;
    }

    /// Non-blocking pop; nullopt when currently empty (closed or not).
    std::optional<T> try_pop() {
        std::lock_guard lock(mu_);
        if (q_.empty()) return std::nullopt;
        T item = std::move(q_.front());
        q_.pop_front();
        ++popped_;
        not_full_.notify_one();
        popped_cv_.notify_all();
        return item;
    }

    /// After close(), pushes fail and pops drain the remaining items then
    /// return nullopt.
    void close() {
        std::lock_guard lock(mu_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
        popped_cv_.notify_all();
    }

    bool closed() const {
        std::lock_guard lock(mu_);
        return closed_;
    }

    std::size_t size() const {
        std::lock_guard lock(mu_);
        return q_.size();
    }

    // ---- blocked-time accounting -------------------------------------------
    // Seconds spent waiting in push()/pop() because the queue was full/empty
    // (backpressure and starvation, respectively), and how many calls had to
    // wait at all.  FlexPath's Stream republishes these per stream through
    // sb::obs with a stream= label (this header stays obs-free so the queue
    // remains a standalone primitive).

    double blocked_push_seconds() const {
        std::lock_guard lock(mu_);
        return blocked_push_s_;
    }
    double blocked_pop_seconds() const {
        std::lock_guard lock(mu_);
        return blocked_pop_s_;
    }
    std::uint64_t blocked_pushes() const {
        std::lock_guard lock(mu_);
        return blocked_pushes_;
    }
    std::uint64_t blocked_pops() const {
        std::lock_guard lock(mu_);
        return blocked_pops_;
    }

private:
    /// cv.wait(lock, pred), accounting the time actually spent blocked into
    /// `seconds`/`stalls` (both protected by mu_, which the caller holds and
    /// the wait reacquires).  The satisfied-immediately path costs nothing.
    /// Blocked waits register in the sb::check wait-for table under `kind`.
    template <typename Pred>
    void timed_wait(std::condition_variable_any& cv,
                    std::unique_lock<check::CheckedMutex>& lock, double& seconds,
                    std::uint64_t& stalls, check::WaitKind kind, Pred pred) {
        if (pred()) return;
        std::string what;
        if (check::enabled()) {
            what = "queue '" + name_ + "' " +
                   (kind == check::WaitKind::QueuePush ? "push" : "pop") +
                   " size=" + std::to_string(q_.size()) + "/cap=" +
                   std::to_string(capacity_);
        }
        const auto t0 = std::chrono::steady_clock::now();
        check::wait_checked(cv, lock, kind, what, pred);
        seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                       .count();
        ++stalls;
    }

    const std::size_t capacity_;
    const std::string name_;
    mutable check::CheckedMutex mu_;
    std::condition_variable_any not_empty_;
    std::condition_variable_any not_full_;
    std::condition_variable_any popped_cv_;
    std::deque<T> q_;
    bool closed_ = false;
    std::uint64_t pushed_ = 0;
    std::uint64_t popped_ = 0;
    double blocked_push_s_ = 0.0;
    double blocked_pop_s_ = 0.0;
    std::uint64_t blocked_pushes_ = 0;
    std::uint64_t blocked_pops_ = 0;
};

}  // namespace sb::util
