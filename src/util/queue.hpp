// Bounded, closable, blocking MPMC queue.
//
// This is the buffering primitive behind FlexPath's writer-side queues
// (paper §IV point 4): a writer can run ahead of its readers by up to the
// queue capacity, overlapping computation with downstream I/O; when the
// queue is full the writer blocks (backpressure).  All waits use condition
// variables with predicates — never spinning (Core Guidelines CP.42).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace sb::util {

template <typename T>
class BoundedQueue {
public:
    /// capacity == 0 gives rendezvous semantics: push() blocks until a
    /// consumer has popped the item (used by the "synchronous handoff"
    /// ablation).
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Blocks until there is room (or the queue is closed).  Returns false
    /// if the queue was closed and the item was not enqueued.
    bool push(T item) {
        std::unique_lock lock(mu_);
        if (capacity_ == 0) {
            // Rendezvous: enqueue, then wait for the item to be taken.
            if (closed_) return false;
            q_.push_back(std::move(item));
            const std::uint64_t my_seq = ++pushed_;
            not_empty_.notify_all();
            popped_cv_.wait(lock, [&] { return closed_ || popped_ >= my_seq; });
            return popped_ >= my_seq;
        }
        not_full_.wait(lock, [&] { return closed_ || q_.size() < capacity_; });
        if (closed_) return false;
        q_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; nullopt signals end of stream.
    std::optional<T> pop() {
        std::unique_lock lock(mu_);
        not_empty_.wait(lock, [&] { return closed_ || !q_.empty(); });
        if (q_.empty()) return std::nullopt;
        T item = std::move(q_.front());
        q_.pop_front();
        ++popped_;
        not_full_.notify_one();
        popped_cv_.notify_all();
        return item;
    }

    /// Non-blocking pop; nullopt when currently empty (closed or not).
    std::optional<T> try_pop() {
        std::lock_guard lock(mu_);
        if (q_.empty()) return std::nullopt;
        T item = std::move(q_.front());
        q_.pop_front();
        ++popped_;
        not_full_.notify_one();
        popped_cv_.notify_all();
        return item;
    }

    /// After close(), pushes fail and pops drain the remaining items then
    /// return nullopt.
    void close() {
        std::lock_guard lock(mu_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
        popped_cv_.notify_all();
    }

    bool closed() const {
        std::lock_guard lock(mu_);
        return closed_;
    }

    std::size_t size() const {
        std::lock_guard lock(mu_);
        return q_.size();
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::condition_variable popped_cv_;
    std::deque<T> q_;
    bool closed_ = false;
    std::uint64_t pushed_ = 0;
    std::uint64_t popped_ = 0;
};

}  // namespace sb::util
