#include "util/pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/check.hpp"
#include "check/lifetime.hpp"
#include "obs/metrics.hpp"

namespace sb::util {
namespace {

// Buffers below the smallest class still recycle; they just share shelf 0.
constexpr std::size_t kMinClassBytes = 256;
// Per-class cap on parked buffers; beyond it, retires free immediately.
constexpr std::size_t kShelfCapacity = 8;
// 0xEF poison marks recycled storage under SB_CHECK so stale reads are
// visibly garbage even when the quarantine misses them.
constexpr std::byte kPoison{0xEF};

std::size_t class_index(std::size_t n) noexcept {
    std::size_t cls = kMinClassBytes;
    std::size_t idx = 0;
    while (cls < n) {
        cls <<= 1;
        ++idx;
    }
    return idx;
}

std::size_t class_bytes(std::size_t idx) noexcept {
    return kMinClassBytes << idx;
}

bool pool_enabled_from_env() {
    const char* v = std::getenv("SB_POOL");
    if (v == nullptr) return true;
    const std::string s(v);
    return !(s == "off" || s == "0" || s == "false");
}

std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{pool_enabled_from_env()};
    return flag;
}

}  // namespace

bool pool_enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }

void set_pool_enabled(bool on) noexcept {
    enabled_flag().store(on, std::memory_order_relaxed);
}

BufferPool& BufferPool::global() {
    // Leaked on purpose: buffers handed to streams can retire during static
    // destruction (thread teardown, retained steps), after a function-local
    // static pool would already be gone.
    static BufferPool* pool = new BufferPool();
    return *pool;
}

BufferPool::BufferPool() {
    auto& reg = obs::Registry::global();
    hits_ = &reg.counter("pool.hits", {});
    misses_ = &reg.counter("pool.misses", {});
    retires_ = &reg.counter("pool.retires", {});
    bytes_recycled_ = &reg.counter("pool.bytes_recycled", {});
    bytes_allocated_ = &reg.counter("pool.bytes_allocated", {});
    free_bytes_gauge_ = &reg.gauge("pool.free_bytes", {});
    outstanding_gauge_ = &reg.gauge("pool.outstanding_bytes", {});
}

void BufferPool::Retire::operator()(std::vector<std::byte>* v) const noexcept {
    if (v == nullptr) return;
    if (pool != nullptr) pool->retire(std::move(*v), gen);
    delete v;
}

PooledBytes BufferPool::acquire(std::size_t n) {
    if (!pool_enabled() || n == 0) {
        return std::make_shared<std::vector<std::byte>>(n);
    }
    const std::size_t idx = class_index(n);
    std::vector<std::byte> storage;
    bool hit = false;
    std::uint64_t gen = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        gen = generation_;
        if (idx < shelves_.size() && !shelves_[idx].buffers.empty()) {
            storage = std::move(shelves_[idx].buffers.back());
            shelves_[idx].buffers.pop_back();
            free_bytes_ -= storage.size();
            hit = true;
        }
        outstanding_bytes_ += class_bytes(idx);
        outstanding_gauge_->set(static_cast<double>(outstanding_bytes_));
    }
    if (hit) {
        // Leaving quarantine: the range is live again, stale-view tracking for
        // it must not fire on the new owner's reads.
        if (check::enabled()) check::note_reacquired(storage.data());
        storage.resize(n);  // shrink-only: stored size == class capacity
        hits_->inc();
        bytes_recycled_->add(n);
    } else {
        storage.reserve(class_bytes(idx));
        storage.resize(n);
        misses_->inc();
        bytes_allocated_->add(n);
    }
    auto* raw = new std::vector<std::byte>(std::move(storage));
    return PooledBytes(raw, Retire{this, gen});
}

void BufferPool::retire(std::vector<std::byte>&& storage, std::uint64_t gen) noexcept {
    const std::size_t cap = storage.capacity();
    {
        std::lock_guard<std::mutex> lock(mu_);
        const std::size_t idx = class_index(cap == 0 ? 1 : cap);
        if (class_bytes(idx) <= outstanding_bytes_) {
            outstanding_bytes_ -= class_bytes(idx);
        } else {
            outstanding_bytes_ = 0;
        }
        outstanding_gauge_->set(static_cast<double>(outstanding_bytes_));
        if (gen == generation_ && pool_enabled() && cap >= kMinClassBytes &&
            cap == class_bytes(idx)) {
            if (shelves_.size() <= idx) shelves_.resize(idx + 1);
            if (shelves_[idx].buffers.size() < kShelfCapacity) {
                storage.resize(cap);  // park at full class size
                if (check::enabled()) {
                    std::fill(storage.begin(), storage.end(), kPoison);
                    check::note_retired(storage.data(), storage.size(), "pooled step buffer");
                }
                free_bytes_ += cap;
                free_bytes_gauge_->set(static_cast<double>(free_bytes_));
                retires_->inc();
                shelves_[idx].buffers.push_back(std::move(storage));
                return;
            }
        }
    }
    retires_->inc();
    // storage frees here, outside the lock.
}

void BufferPool::drop_free_locked() {
    for (auto& shelf : shelves_) {
        for (auto& buf : shelf.buffers) {
            // The address is about to become invalid; the quarantine entry
            // must go with it or a future unrelated allocation at the same
            // address would trip a false use-after-retire.
            if (check::enabled()) check::note_reacquired(buf.data());
        }
        shelf.buffers.clear();
    }
    free_bytes_ = 0;
    free_bytes_gauge_->set(0.0);
}

void BufferPool::bump_generation() {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    drop_free_locked();
}

void BufferPool::trim() {
    std::lock_guard<std::mutex> lock(mu_);
    drop_free_locked();
}

std::size_t BufferPool::free_buffers() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& shelf : shelves_) n += shelf.buffers.size();
    return n;
}

std::size_t BufferPool::free_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_bytes_;
}

std::uint64_t BufferPool::generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
}

}  // namespace sb::util
