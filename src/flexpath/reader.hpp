// Per-rank reader handle on a FlexPath stream.
//
// One ReaderPort lives on each rank of the consuming component.  begin_step
// blocks until the next assembled step is available (or returns false at end
// of stream); the rank then inspects the decoded self-describing metadata,
// reads any bounding boxes it wants (the MxN redistribution happens here:
// the requested box is assembled from whichever writer blocks intersect it),
// and calls end_step to retire the step.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "flexpath/stream.hpp"

namespace sb::flexpath {

class ReaderPort {
public:
    ReaderPort(Fabric& fabric, const std::string& stream_name, int rank, int nranks);

    ReaderPort(const ReaderPort&) = delete;
    ReaderPort& operator=(const ReaderPort&) = delete;

    /// Blocks until the next step is available; false at end of stream.
    bool begin_step();

    /// Decoded metadata of the current step.
    const StepMeta& meta() const;

    /// The declaration of variable `var` in the current step.
    const VarDecl& var(const std::string& var) const;

    /// Reads the hyperslab `box` (global coordinates) of `var` into `dest`,
    /// which receives box.volume() elements row-major.  Throws if any part
    /// of the box was not covered by writer blocks.
    void read_bytes(const std::string& var, const util::Box& box,
                    std::span<std::byte> dest) const;

    template <typename T>
    std::vector<T> read(const std::string& var, const util::Box& box) const {
        static_assert(std::is_trivially_copyable_v<T>);
        if (ffs::kind_size(this->var(var).kind) != sizeof(T)) {
            throw std::runtime_error("read '" + var + "': element size mismatch");
        }
        std::vector<T> out(box.volume());
        read_bytes(var, box,
                   std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()),
                                        out.size() * sizeof(T)));
        return out;
    }

    /// Retires the current step for this rank.
    void end_step();

    /// Step index of the currently acquired step.
    std::uint64_t current_step() const;

    const std::string& stream_name() const noexcept { return stream_->name(); }

private:
    std::shared_ptr<Stream> stream_;
    std::shared_ptr<const StepData> current_;
    StepMeta meta_;
    std::uint64_t gen_ = 0;  // steps completed by this rank
    obs::Counter* bytes_read_ = nullptr;  // flexpath.bytes_read{stream=}
    obs::Counter* reads_ = nullptr;       // flexpath.reads{stream=}
};

}  // namespace sb::flexpath
