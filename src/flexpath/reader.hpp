// Per-rank reader handle on a FlexPath stream.
//
// One ReaderPort lives on each rank of the consuming component.  begin_step
// blocks until the step at this rank's *cursor* (its count of completed
// steps) is available (or returns false at end of stream); the rank then
// inspects the decoded self-describing metadata, reads any bounding boxes it
// wants (the MxN redistribution happens here: the requested box is assembled
// from whichever writer blocks intersect it), and calls end_step to retire
// the step for this rank.  Ranks of one reader group need not stay in
// lockstep: the stream holds up to StreamOptions::read_ahead consecutive
// steps in flight, so this rank may run ahead of slow peers by the window
// depth (see docs/PERFORMANCE.md, "Reader-side step pipelining").
//
// Redistribution fast path: the first read of a (var, box) resolves the
// writer-block intersections into a flat copy plan of contiguous runs,
// cached and replayed on subsequent steps for as long as the writer layout
// generation (StepData::layout_gen) is unchanged.  When the requested box
// coincides exactly with a single writer block, try_read_view returns a
// zero-copy span pinned by the step's shared payload instead.
#pragma once

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "flexpath/stream.hpp"

namespace sb::obs {
class Histogram;
}  // namespace sb::obs

namespace sb::flexpath {

class ReaderPort {
public:
    ReaderPort(Fabric& fabric, const std::string& stream_name, int rank, int nranks);
    ~ReaderPort();

    ReaderPort(const ReaderPort&) = delete;
    ReaderPort& operator=(const ReaderPort&) = delete;

    /// Blocks until the next step is available; false at end of stream.
    bool begin_step();

    /// Decoded metadata of the current step (shared with the other reader
    /// ranks of the step — decoded once, not once per rank).
    const StepMeta& meta() const;

    /// The declaration of variable `var` in the current step.
    const VarDecl& var(const std::string& var) const;

    /// Reads the hyperslab `box` (global coordinates) of `var` into `dest`,
    /// which receives box.volume() elements row-major.  Throws if any part
    /// of the box was not covered by writer blocks.
    void read_bytes(const std::string& var, const util::Box& box,
                    std::span<std::byte> dest) const;

    template <typename T>
    std::vector<T> read(const std::string& var, const util::Box& box) const {
        static_assert(std::is_trivially_copyable_v<T>);
        if (ffs::kind_size(this->var(var).kind) != sizeof(T)) {
            throw std::runtime_error("read '" + var + "': element size mismatch");
        }
        std::vector<T> out(box.volume());
        read_bytes(var, box,
                   std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()),
                                        out.size() * sizeof(T)));
        return out;
    }

    /// Zero-copy read: when `box` coincides exactly with a single writer
    /// block, returns a view of that block's payload (box.volume() elements
    /// row-major) without copying; empty optional otherwise.  The view is
    /// pinned by the step's shared payload and stays valid until this
    /// rank's end_step().
    std::optional<std::span<const std::byte>>
    try_read_view_bytes(const std::string& var, const util::Box& box) const;

    template <typename T>
    std::optional<std::span<const T>> try_read_view(const std::string& var,
                                                    const util::Box& box) const {
        static_assert(std::is_trivially_copyable_v<T>);
        if (ffs::kind_size(this->var(var).kind) != sizeof(T)) {
            throw std::runtime_error("read '" + var + "': element size mismatch");
        }
        const auto raw = try_read_view_bytes(var, box);
        if (!raw) return std::nullopt;
        return std::span<const T>(reinterpret_cast<const T*>(raw->data()),
                                  raw->size() / sizeof(T));
    }

    /// Retires the current step for this rank.
    void end_step();

    /// Step index of the currently acquired step.
    std::uint64_t current_step() const;

    /// True when the current step's data was dropped under
    /// OnDataLoss::ZeroFill: metadata is intact but every read returns
    /// zeros (see docs/RESILIENCE.md).
    bool step_lossy() const;

    const std::string& stream_name() const noexcept { return stream_->name(); }

    int rank() const noexcept { return rank_; }

    /// Disables/enables the copy-plan cache (benchmarking the uncached
    /// path; also honours SB_PLAN_CACHE=off at construction).
    void set_plan_cache_enabled(bool on) noexcept { plan_cache_enabled_ = on; }

private:
    /// A (var, box) read resolved against one writer layout generation:
    /// per intersecting block, the compiled runs into the destination.
    struct CachedPlan {
        std::uint64_t layout_gen = 0;
        struct BlockRuns {
            std::size_t block = 0;  // index into the step's sorted block list
            util::CopyPlan runs;
        };
        std::vector<BlockRuns> blocks;
        /// Index of the single block covering the box exactly, or -1.
        std::ptrdiff_t exact_block = -1;
    };
    /// Owning cache key (stored in the map)…
    struct PlanKey {
        std::string var;
        std::vector<std::uint64_t> offset;
        std::vector<std::uint64_t> count;
    };
    /// …and its borrowing twin for lookups: the hot path (cache hit every
    /// step of a steady-state workflow) probes with views over the caller's
    /// var name and box, allocating nothing; an owning key is built only on
    /// a miss.
    struct PlanKeyView {
        std::string_view var;
        std::span<const std::uint64_t> offset;
        std::span<const std::uint64_t> count;
    };
    struct PlanKeyLess {
        using is_transparent = void;
        template <typename X, typename Y>
        static int cmp_seq(const X& x, const Y& y) {
            const std::size_t n = std::min(x.size(), y.size());
            for (std::size_t i = 0; i < n; ++i) {
                if (x[i] != y[i]) return x[i] < y[i] ? -1 : 1;
            }
            if (x.size() == y.size()) return 0;
            return x.size() < y.size() ? -1 : 1;
        }
        template <typename A, typename B>
        bool operator()(const A& a, const B& b) const {
            if (a.var != b.var) return a.var < b.var;
            if (const int c = cmp_seq(a.offset, b.offset)) return c < 0;
            return cmp_seq(a.count, b.count) < 0;
        }
    };

    const CachedPlan& plan_for(const std::string& var, const VarDecl& decl,
                               const util::Box& box, std::size_t elem) const;
    static CachedPlan compile_plan(const std::vector<Block>* blocks,
                                   const std::string& var, const util::Box& box,
                                   std::size_t elem);

    std::shared_ptr<Stream> stream_;
    std::shared_ptr<const StepData> current_;
    const StepMeta* meta_ = nullptr;  // points into current_'s shared cache
    std::uint64_t cursor_ = 0;  // steps completed by this rank
    int rank_ = 0;
    bool plan_cache_enabled_ = true;
    mutable std::map<PlanKey, CachedPlan, PlanKeyLess> plans_;
    obs::Counter* bytes_read_ = nullptr;   // flexpath.bytes_read{rank=,stream=}
    obs::Counter* reads_ = nullptr;        // flexpath.reads{rank=,stream=}
    obs::Counter* plan_hits_ = nullptr;    // flexpath.plan_hits{rank=,stream=}
    obs::Counter* plan_misses_ = nullptr;  // flexpath.plan_misses{rank=,stream=}
    obs::Counter* zero_copy_reads_ = nullptr;  // flexpath.zero_copy_reads{...}
    obs::Histogram* plan_compile_seconds_ = nullptr;
};

}  // namespace sb::flexpath
