#include "flexpath/writer.hpp"

#include <exception>

#include "obs/metrics.hpp"
#include "util/pool.hpp"

namespace sb::flexpath {

WriterPort::WriterPort(Fabric& fabric, const std::string& stream_name, int rank,
                       int nranks, const StreamOptions& opts)
    : stream_(fabric.get(stream_name)), rank_(rank) {
    stream_->attach_writer(nranks, opts);
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"stream", stream_->name()}};
    bytes_written_ = &reg.counter("flexpath.bytes_written", labels);
    puts_ = &reg.counter("flexpath.puts", labels);
}

WriterPort::~WriterPort() {
    // Unwinding out of a failed component must not look like an orderly
    // close: counting this rank toward writers_closed would signal a false
    // end-of-stream (or trip the incomplete-step check) before the
    // supervisor decides whether to restart.  Abandon instead — the
    // supervisor's detach_writer() rolls the stream back.
    if (std::uncaught_exceptions() > 0) {
        closed_ = true;
        return;
    }
    try {
        close();
    } catch (...) {
        // Destructor must not throw; close errors surface via explicit close().
    }
}

void WriterPort::declare(const VarDecl& decl) {
    pending_.var_decls[decl.name] = decl;
}

void WriterPort::put(const std::string& var, util::Box box,
                     std::shared_ptr<const std::vector<std::byte>> data) {
    const auto it = pending_.var_decls.find(var);
    if (it == pending_.var_decls.end()) {
        throw std::logic_error("put '" + var + "': variable not declared this step");
    }
    const std::size_t elem = ffs::kind_size(it->second.kind);
    if (data->size() != box.volume() * elem) {
        throw std::invalid_argument("put '" + var + "': buffer size " +
                                    std::to_string(data->size()) + " != box volume " +
                                    std::to_string(box.volume()) + " x " +
                                    std::to_string(elem));
    }
    bytes_written_->add(data->size());
    puts_->inc();
    pending_.blocks[var].push_back(Block{std::move(box), std::move(data)});
}

std::span<std::byte> WriterPort::put_view(const std::string& var, util::Box box) {
    const auto it = pending_.var_decls.find(var);
    if (it == pending_.var_decls.end()) {
        throw std::logic_error("put_view '" + var + "': variable not declared this step");
    }
    const std::size_t size = box.volume() * ffs::kind_size(it->second.kind);
    util::PooledBytes buf = util::acquire_bytes(size);
    const std::span<std::byte> view{buf->data(), size};
    bytes_written_->add(size);
    puts_->inc();
    pending_.blocks[var].push_back(Block{std::move(box), std::move(buf)});
    return view;
}

void WriterPort::put_attr(const std::string& name, std::vector<std::string> values) {
    pending_.string_attrs[name] = std::move(values);
}

void WriterPort::put_attr(const std::string& name, double value) {
    pending_.double_attrs[name] = value;
}

void WriterPort::end_step() {
    if (closed_) throw std::logic_error("end_step after close");
    stream_->submit(rank_, std::move(pending_));
    pending_ = Contribution{};
    ++steps_;
}

void WriterPort::close() {
    if (closed_) return;
    closed_ = true;
    stream_->close_writer(rank_);
}

}  // namespace sb::flexpath
