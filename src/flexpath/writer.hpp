// Per-rank writer handle on a FlexPath stream.
//
// One WriterPort lives on each rank of the producing component.  Per step a
// rank declares its variables (global shape, kind, dimension labels), puts
// its local block(s), optionally attaches attributes (e.g. the Select
// header), and calls end_step(); the stream assembles the step once every
// rank of the group has done so.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string>

#include "flexpath/stream.hpp"
#include "util/bytes.hpp"

namespace sb::flexpath {

class WriterPort {
public:
    /// Opens (creating if needed) stream `stream_name` on `fabric` for
    /// writer rank `rank` of a group of `nranks`.
    WriterPort(Fabric& fabric, const std::string& stream_name, int rank, int nranks,
               const StreamOptions& opts = {});

    /// Closes the port (idempotent); when all ranks of the group have
    /// closed, end-of-stream propagates downstream.
    ~WriterPort();

    WriterPort(const WriterPort&) = delete;
    WriterPort& operator=(const WriterPort&) = delete;

    /// Declares a variable for the current step.  Every rank must declare
    /// identically (the components compute the global shape collectively).
    void declare(const VarDecl& decl);

    /// Contributes this rank's block of `var` for the current step.  `data`
    /// holds the block's elements row-major and is shared, not copied.
    void put(const std::string& var, util::Box box,
             std::shared_ptr<const std::vector<std::byte>> data);

    /// Copying convenience: packs a typed span into a fresh buffer.
    template <typename T>
    void put(const std::string& var, const util::Box& box, std::span<const T> data) {
        static_assert(std::is_trivially_copyable_v<T>);
        auto buf = std::make_shared<std::vector<std::byte>>(data.size_bytes());
        util::copy_bytes(buf->data(), data.data(), data.size_bytes());
        put(var, box, std::move(buf));
    }

    /// Zero-copy put: contributes a block for `var` and returns a mutable
    /// span over its (pooled) storage, sized box.volume() * kind_size.  The
    /// caller must fill *every* byte before end_step(); the buffer then
    /// belongs to the stream, which retires it back to util::BufferPool when
    /// all readers release the step.  This is the write-path analogue of
    /// try_read_view: the component's output buffer *is* the transport
    /// buffer.
    std::span<std::byte> put_view(const std::string& var, util::Box box);

    void put_attr(const std::string& name, std::vector<std::string> values);
    void put_attr(const std::string& name, double value);

    /// Ends the current step: submits this rank's contribution.  May block
    /// on writer-side buffer backpressure (only the group's last-arriving
    /// rank can block).
    void end_step();

    void close();

    std::uint64_t steps_written() const noexcept { return steps_; }

    const std::string& stream_name() const noexcept { return stream_->name(); }

private:
    std::shared_ptr<Stream> stream_;
    int rank_;
    Contribution pending_;
    std::uint64_t steps_ = 0;
    bool closed_ = false;
    obs::Counter* bytes_written_ = nullptr;  // flexpath.bytes_written{stream=}
    obs::Counter* puts_ = nullptr;           // flexpath.puts{stream=}
};

}  // namespace sb::flexpath
