#include "flexpath/reader.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace sb::flexpath {

ReaderPort::ReaderPort(Fabric& fabric, const std::string& stream_name, int rank,
                       int nranks)
    : stream_(fabric.get(stream_name)) {
    (void)rank;
    stream_->attach_reader(nranks);
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"stream", stream_->name()}};
    bytes_read_ = &reg.counter("flexpath.bytes_read", labels);
    reads_ = &reg.counter("flexpath.reads", labels);
}

bool ReaderPort::begin_step() {
    if (current_) throw std::logic_error("begin_step: step already in progress");
    current_ = stream_->acquire(gen_);
    if (!current_) return false;
    meta_ = decode_step_meta(current_->meta);
    return true;
}

const StepMeta& ReaderPort::meta() const {
    if (!current_) throw std::logic_error("meta: no step in progress");
    return meta_;
}

const VarDecl& ReaderPort::var(const std::string& var) const {
    const auto it = meta().vars.find(var);
    if (it == meta_.vars.end()) {
        throw std::runtime_error("stream '" + stream_->name() + "' step " +
                                 std::to_string(meta_.step) + " has no variable '" +
                                 var + "'");
    }
    return it->second;
}

void ReaderPort::read_bytes(const std::string& var, const util::Box& box,
                            std::span<std::byte> dest) const {
    const VarDecl& decl = this->var(var);
    const std::size_t elem = ffs::kind_size(decl.kind);
    if (box.ndim() != decl.global_shape.ndim()) {
        throw std::invalid_argument("read '" + var + "': selection rank " +
                                    std::to_string(box.ndim()) + " != variable rank " +
                                    std::to_string(decl.global_shape.ndim()));
    }
    if (!box.within(decl.global_shape)) {
        throw std::invalid_argument("read '" + var + "': selection " + box.to_string() +
                                    " outside global shape " +
                                    decl.global_shape.to_string());
    }
    if (dest.size() < box.volume() * elem) {
        throw std::invalid_argument("read '" + var + "': destination too small");
    }
    if (box.empty()) return;

    // MxN assembly: copy every writer block's intersection with the request.
    std::uint64_t covered = 0;
    const auto bit = current_->blocks.find(var);
    if (bit != current_->blocks.end()) {
        for (const Block& b : bit->second) {
            const auto region = util::intersect(b.box, box);
            if (!region) continue;
            util::copy_box(std::span<const std::byte>(*b.data), b.box, dest, box,
                           *region, elem);
            covered += region->volume();
        }
    }
    if (covered != box.volume()) {
        throw std::runtime_error("read '" + var + "': selection " + box.to_string() +
                                 " only covered by " + std::to_string(covered) + "/" +
                                 std::to_string(box.volume()) + " elements");
    }
    bytes_read_->add(box.volume() * elem);
    reads_->inc();
}

void ReaderPort::end_step() {
    if (!current_) throw std::logic_error("end_step: no step in progress");
    current_.reset();
    stream_->release(gen_);
    ++gen_;
}

std::uint64_t ReaderPort::current_step() const {
    if (!current_) throw std::logic_error("current_step: no step in progress");
    return meta_.step;
}

}  // namespace sb::flexpath
