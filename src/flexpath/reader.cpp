#include "flexpath/reader.hpp"

#include <cstdlib>
#include <stdexcept>

#include "check/lifetime.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sb::flexpath {

namespace {

/// Stale-generation plans are pruned once the cache grows past this; a
/// steady-state workflow re-requests the same boxes every step, so live
/// plans number (vars x boxes per rank), far below the bound.
constexpr std::size_t kMaxPlans = 1024;

bool plan_cache_enabled_from_env() {
    const char* v = std::getenv("SB_PLAN_CACHE");
    if (!v) return true;
    const std::string s(v);
    return !(s == "off" || s == "0" || s == "false");
}

}  // namespace

ReaderPort::ReaderPort(Fabric& fabric, const std::string& stream_name, int rank,
                       int nranks)
    : stream_(fabric.get(stream_name)),
      rank_(rank),
      plan_cache_enabled_(plan_cache_enabled_from_env()) {
    // Resume cursor: 0 on a fresh stream, or the oldest un-acknowledged
    // step when this port belongs to a restarted component incarnation
    // replacing a detached reader group (replay).
    cursor_ = stream_->attach_reader(nranks);
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"stream", stream_->name()},
                             {"rank", std::to_string(rank)}};
    bytes_read_ = &reg.counter("flexpath.bytes_read", labels);
    reads_ = &reg.counter("flexpath.reads", labels);
    plan_hits_ = &reg.counter("flexpath.plan_hits", labels);
    plan_misses_ = &reg.counter("flexpath.plan_misses", labels);
    zero_copy_reads_ = &reg.counter("flexpath.zero_copy_reads", labels);
    plan_compile_seconds_ = &reg.histogram("flexpath.plan_compile_seconds", labels);
}

ReaderPort::~ReaderPort() {
    // Views cannot outlive their port; drop them from the guard entirely.
    check::forget_views(this);
}

bool ReaderPort::begin_step() {
    if (current_) {
        if (check::enabled()) {
            check::report(check::Kind::Usage,
                          "begin_step with a step already in progress on stream '" +
                              stream_->name() + "' rank " + std::to_string(rank_));
        }
        throw std::logic_error("begin_step: step already in progress");
    }
    const bool instr = obs::enabled();
    const double t0 = instr ? obs::steady_seconds() : 0.0;
    current_ = stream_->acquire(cursor_);
    if (!current_) return false;
    if (instr) {
        // Step span: how long this consumer rank waited for the step to be
        // deliverable (prefetch + upstream supply, everything behind
        // acquire).  The actor is the consuming component instance.
        obs::SpanStore::global().record(stream_->name(), current_->step,
                                        obs::SegmentKind::WaitIn, t0,
                                        obs::steady_seconds(), rank_);
    }
    meta_ = &current_->decoded_meta();
    return true;
}

const StepMeta& ReaderPort::meta() const {
    if (!current_) throw std::logic_error("meta: no step in progress");
    return *meta_;
}

const VarDecl& ReaderPort::var(const std::string& var) const {
    const StepMeta& m = meta();
    const auto it = m.vars.find(var);
    if (it == m.vars.end()) {
        throw std::runtime_error("stream '" + stream_->name() + "' step " +
                                 std::to_string(m.step) + " has no variable '" +
                                 var + "'");
    }
    return it->second;
}

ReaderPort::CachedPlan ReaderPort::compile_plan(const std::vector<Block>* blocks,
                                                const std::string& var,
                                                const util::Box& box,
                                                std::size_t elem) {
    CachedPlan plan;
    std::uint64_t covered = 0;
    if (blocks) {
        for (std::size_t i = 0; i < blocks->size(); ++i) {
            const Block& b = (*blocks)[i];
            const auto region = util::intersect(b.box, box);
            if (!region) continue;
            plan.blocks.push_back(
                {i, util::compile_copy_plan(b.box, box, *region, elem)});
            covered += region->volume();
            if (b.box == box) plan.exact_block = static_cast<std::ptrdiff_t>(i);
        }
    }
    if (covered != box.volume()) {
        throw std::runtime_error("read '" + var + "': selection " + box.to_string() +
                                 " only covered by " + std::to_string(covered) + "/" +
                                 std::to_string(box.volume()) + " elements");
    }
    return plan;
}

const ReaderPort::CachedPlan& ReaderPort::plan_for(const std::string& var,
                                                   const VarDecl& decl,
                                                   const util::Box& box,
                                                   std::size_t elem) const {
    (void)decl;
    // Transparent probe: no string/vector copies on the (overwhelmingly
    // common) cache-hit path.
    const PlanKeyView key{var, box.offset, box.count};
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second.layout_gen == current_->layout_gen) {
        plan_hits_->inc();
        return it->second;
    }

    const bool instr = obs::enabled();
    const double t0 = instr ? obs::steady_seconds() : 0.0;
    const auto bit = current_->blocks.find(var);
    CachedPlan plan = compile_plan(
        bit == current_->blocks.end() ? nullptr : &bit->second, var, box, elem);
    plan.layout_gen = current_->layout_gen;
    if (instr) plan_compile_seconds_->observe(obs::steady_seconds() - t0);
    plan_misses_->inc();

    if (it == plans_.end()) {
        // A new key into a grown cache: drop plans from dead generations
        // first (a layout change strands every previously compiled plan).
        if (plans_.size() >= kMaxPlans) {
            std::erase_if(plans_, [&](const auto& kv) {
                return kv.second.layout_gen != current_->layout_gen;
            });
        }
        it = plans_.emplace(PlanKey{var, box.offset, box.count}, std::move(plan))
                 .first;
    } else {
        it->second = std::move(plan);
    }
    return it->second;
}

void ReaderPort::read_bytes(const std::string& var, const util::Box& box,
                            std::span<std::byte> dest) const {
    const VarDecl& decl = this->var(var);
    const std::size_t elem = ffs::kind_size(decl.kind);
    if (box.ndim() != decl.global_shape.ndim()) {
        throw std::invalid_argument("read '" + var + "': selection rank " +
                                    std::to_string(box.ndim()) + " != variable rank " +
                                    std::to_string(decl.global_shape.ndim()));
    }
    if (!box.within(decl.global_shape)) {
        throw std::invalid_argument("read '" + var + "': selection " + box.to_string() +
                                    " outside global shape " +
                                    decl.global_shape.to_string());
    }
    if (dest.size() < box.volume() * elem) {
        throw std::invalid_argument("read '" + var + "': destination too small");
    }
    if (box.empty()) return;
    if (current_->lossy) {
        // ZeroFill degradation: the step's data was shed while the reader
        // group was detached — metadata survives, the payload reads as
        // zeros (step_lossy() lets components tell).
        std::fill_n(dest.begin(), box.volume() * elem, std::byte{0});
        bytes_read_->add(box.volume() * elem);
        reads_->inc();
        return;
    }

    // MxN assembly: replay the cached copy plan (compiled on first touch of
    // this (var, box) under the current writer layout).
    const auto bit = current_->blocks.find(var);
    const std::vector<Block>* blocks =
        bit == current_->blocks.end() ? nullptr : &bit->second;
    if (plan_cache_enabled_) {
        const CachedPlan& plan = plan_for(var, decl, box, elem);
        for (const auto& br : plan.blocks) {
            const Block& b = (*blocks)[br.block];
            util::execute_copy_plan(std::span<const std::byte>(*b.data), dest,
                                    br.runs);
        }
    } else {
        const CachedPlan plan = compile_plan(blocks, var, box, elem);
        for (const auto& br : plan.blocks) {
            const Block& b = (*blocks)[br.block];
            util::execute_copy_plan(std::span<const std::byte>(*b.data), dest,
                                    br.runs);
        }
    }
    bytes_read_->add(box.volume() * elem);
    reads_->inc();
}

std::optional<std::span<const std::byte>>
ReaderPort::try_read_view_bytes(const std::string& var, const util::Box& box) const {
    const VarDecl& decl = this->var(var);
    const std::size_t elem = ffs::kind_size(decl.kind);
    if (box.ndim() != decl.global_shape.ndim() || !box.within(decl.global_shape) ||
        box.empty()) {
        return std::nullopt;
    }
    if (current_->lossy) return std::nullopt;  // no payload to view; read_bytes zero-fills
    const auto bit = current_->blocks.find(var);
    if (bit == current_->blocks.end()) return std::nullopt;

    const Block* exact = nullptr;
    if (plan_cache_enabled_) {
        // Resolving through the plan cache means a later fallback
        // read_bytes of the same box replays the already compiled plan.
        const CachedPlan& plan = plan_for(var, decl, box, elem);
        if (plan.exact_block < 0) return std::nullopt;
        exact = &bit->second[static_cast<std::size_t>(plan.exact_block)];
    } else {
        for (const Block& b : bit->second) {
            if (b.box == box) {
                exact = &b;
                break;
            }
        }
        if (!exact) return std::nullopt;
    }
    zero_copy_reads_->inc();
    bytes_read_->add(box.volume() * elem);
    reads_->inc();
    const auto view =
        std::span<const std::byte>(*exact->data).first(box.volume() * elem);
    if (check::enabled()) {
        // Lifetime guard: the view dies at this rank's end_step; register it
        // with the payload as keep-alive so a later read through the stale
        // span is caught and attributed to this var/box.
        check::register_view(this, view.data(), view.size(),
                             "stream '" + stream_->name() + "' var '" + var +
                                 "' box " + box.to_string() + " step " +
                                 std::to_string(meta_->step) + " rank " +
                                 std::to_string(rank_),
                             exact->data);
    }
    return view;
}

void ReaderPort::end_step() {
    if (!current_) {
        if (check::enabled()) {
            check::report(check::Kind::Usage,
                          "end_step without a step in progress (double end_step?) "
                          "on stream '" +
                              stream_->name() + "' rank " + std::to_string(rank_));
        }
        throw std::logic_error("end_step: no step in progress");
    }
    // Expire this rank's zero-copy views before the step can be retired:
    // from here on, any read through one of them is use-after-end_step.
    check::expire_views(this);
    current_.reset();
    meta_ = nullptr;
    stream_->release(cursor_);
    ++cursor_;
}

std::uint64_t ReaderPort::current_step() const {
    if (!current_) throw std::logic_error("current_step: no step in progress");
    return meta_->step;
}

bool ReaderPort::step_lossy() const {
    if (!current_) throw std::logic_error("step_lossy: no step in progress");
    return current_->lossy;
}

}  // namespace sb::flexpath
