#include "flexpath/stream.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "check/mutex.hpp"
#include "check/waits.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace sb::flexpath {

namespace {

/// Stalls shorter than this are aggregated into the histograms but not
/// worth an individual slice in the timeline view.
constexpr double kStallSliceSeconds = 10e-6;

constexpr std::size_t kDefaultReadAhead = 2;

}  // namespace

std::size_t resolve_read_ahead(const StreamOptions& opts) {
    if (opts.read_ahead > 0) return opts.read_ahead;
    const char* v = std::getenv("SB_READ_AHEAD");
    if (!v) return kDefaultReadAhead;
    const std::string s(v);
    if (s == "off" || s == "0" || s == "false") return 1;
    char* end = nullptr;
    const unsigned long n = std::strtoul(s.c_str(), &end, 10);
    if (end != s.c_str() && *end == '\0' && n > 0) return static_cast<std::size_t>(n);
    return kDefaultReadAhead;
}

double resolve_liveness_seconds(const StreamOptions& opts) {
    if (opts.liveness_ms >= 0.0) return opts.liveness_ms / 1e3;
    const char* v = std::getenv("SB_LIVENESS_MS");
    if (!v) return 0.0;
    const std::string s(v);
    if (s == "off" || s == "0" || s == "false") return 0.0;
    char* end = nullptr;
    const double ms = std::strtod(s.c_str(), &end);
    if (end != s.c_str() && *end == '\0' && ms > 0.0) return ms / 1e3;
    return 0.0;
}

const StepMeta& StepData::decoded_meta() const {
    const std::lock_guard lock(meta_cache_->mu);
    if (!meta_cache_->decoded) {
        meta_cache_->meta = decode_step_meta(meta);
        meta_cache_->decoded = true;
    }
    return meta_cache_->meta;
}

// ---- step metadata <-> FFS wire format -----------------------------------

ffs::Bytes encode_step_meta(const StepMeta& m) {
    ffs::Record rec(ffs::TypeDescriptor{"smartblock.step_meta", {}});
    rec.add_scalar<std::uint64_t>("step", m.step);

    std::vector<std::string> var_names;
    var_names.reserve(m.vars.size());
    for (const auto& [name, decl] : m.vars) {
        var_names.push_back(name);
        rec.add_scalar<std::int32_t>("v." + name + ".kind",
                                     static_cast<std::int32_t>(decl.kind));
        rec.add_array<std::uint64_t>("v." + name + ".shape",
                                     decl.global_shape.dims(),
                                     {decl.global_shape.ndim()});
        rec.add_strings("v." + name + ".labels", decl.dim_labels);
    }
    rec.add_strings("vars", std::move(var_names));

    std::vector<std::string> sattr_names;
    for (const auto& [name, vals] : m.string_attrs) {
        sattr_names.push_back(name);
        rec.add_strings("as." + name, vals);
    }
    rec.add_strings("sattrs", std::move(sattr_names));

    std::vector<std::string> dattr_names;
    for (const auto& [name, val] : m.double_attrs) {
        dattr_names.push_back(name);
        rec.add_scalar<double>("ad." + name, val);
    }
    rec.add_strings("dattrs", std::move(dattr_names));

    return ffs::encode(rec);
}

StepMeta decode_step_meta(std::span<const std::byte> wire) {
    const ffs::Record rec = ffs::decode(wire);
    StepMeta m;
    m.step = rec.get_scalar<std::uint64_t>("step");
    for (const std::string& name : rec.get_strings("vars")) {
        VarDecl d;
        d.name = name;
        d.kind = static_cast<DataKind>(rec.get_scalar<std::int32_t>("v." + name + ".kind"));
        d.global_shape = util::NdShape(rec.get_array<std::uint64_t>("v." + name + ".shape"));
        d.dim_labels = rec.get_strings("v." + name + ".labels");
        m.vars.emplace(name, std::move(d));
    }
    for (const std::string& name : rec.get_strings("sattrs")) {
        m.string_attrs.emplace(name, rec.get_strings("as." + name));
    }
    for (const std::string& name : rec.get_strings("dattrs")) {
        m.double_attrs.emplace(name, rec.get_scalar<double>("ad." + name));
    }
    return m;
}

// ---- spool encoding ---------------------------------------------------------

namespace {

/// Builds the spool record *borrowing* every block payload: the record holds
/// spans into the blocks, so `blocks` must outlive it.  No payload is copied
/// until (unless) the record is actually serialized.
ffs::Record make_spool_record(const std::map<std::string, std::vector<Block>>& blocks) {
    ffs::Record rec(ffs::TypeDescriptor{"smartblock.spool", {}});
    std::uint64_t i = 0;
    for (const auto& [var, blks] : blocks) {
        for (const Block& b : blks) {
            const std::string p = "b" + std::to_string(i++);
            rec.add_strings(p + ".var", {var});
            rec.add_array<std::uint64_t>(p + ".offset", b.box.offset,
                                         {b.box.offset.size()});
            rec.add_array<std::uint64_t>(p + ".count", b.box.count,
                                         {b.box.count.size()});
            rec.add_borrowed(p + ".data", ffs::Kind::Byte, {b.data->size()}, *b.data);
        }
    }
    rec.add_scalar<std::uint64_t>("nblocks", i);
    return rec;
}

}  // namespace

ffs::Bytes encode_step_blocks(const std::map<std::string, std::vector<Block>>& blocks) {
    return ffs::encode(make_spool_record(blocks));
}

std::map<std::string, std::vector<Block>> decode_step_blocks(
    std::span<const std::byte> wire) {
    ffs::Record rec = ffs::decode(wire);
    std::map<std::string, std::vector<Block>> out;
    const std::uint64_t n = rec.get_scalar<std::uint64_t>("nblocks");
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string p = "b" + std::to_string(i);
        Block b;
        b.box.offset = rec.get_array<std::uint64_t>(p + ".offset");
        b.box.count = rec.get_array<std::uint64_t>(p + ".count");
        // Adopt the decoded payload: one copy from the wire total, instead
        // of wire -> record -> block.
        b.data = std::make_shared<const std::vector<std::byte>>(
            rec.take_bytes(p + ".data"));
        out[rec.get_strings(p + ".var").at(0)].push_back(std::move(b));
    }
    return out;
}

namespace {

std::string spool_file_path(const std::string& dir, const std::string& stream,
                            std::uint64_t step) {
    std::string safe = stream;
    for (char& c : safe) {
        if (c == '/' || c == '\\') c = '_';
    }
    return dir + "/" + safe + "." + std::to_string(step) + ".spool";
}

}  // namespace

// ---- Stream ----------------------------------------------------------------

Stream::Stream(std::string name)
    : name_(std::move(name)), mu_("flexpath.Stream('" + name_ + "').mu") {
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"stream", name_}};
    ins_.steps_assembled = &reg.counter("flexpath.steps_assembled", labels);
    ins_.steps_retired = &reg.counter("flexpath.steps_retired", labels);
    ins_.steps_replayed = &reg.counter("flexpath.steps_replayed", labels);
    ins_.steps_skipped = &reg.counter("flexpath.steps_skipped", labels);
    ins_.replay_suppressed = &reg.counter("flexpath.replay_suppressed", labels);
    ins_.aborts = &reg.counter("flexpath.aborts", labels);
    ins_.spool_bytes_written = &reg.counter("flexpath.spool_bytes_written", labels);
    ins_.spool_bytes_read = &reg.counter("flexpath.spool_bytes_read", labels);
    ins_.queue_depth = &reg.gauge("flexpath.queue_depth", labels);
    ins_.blocked_push_seconds = &reg.gauge("flexpath.queue_blocked_push_seconds", labels);
    ins_.blocked_pop_seconds = &reg.gauge("flexpath.queue_blocked_pop_seconds", labels);
    ins_.read_ahead_depth = &reg.gauge("flexpath.read_ahead_depth", labels);
    ins_.backpressure_wait = &reg.histogram("flexpath.backpressure_wait_seconds", labels);
    ins_.acquire_wait = &reg.histogram("flexpath.acquire_wait_seconds", labels);
    ins_.prefetch_wait = &reg.histogram("flexpath.prefetch_wait_seconds", labels);
    ins_.spool_write_seconds = &reg.histogram("flexpath.spool_write_seconds", labels);
    ins_.spool_read_seconds = &reg.histogram("flexpath.spool_read_seconds", labels);
}

Stream::~Stream() {
    {
        std::lock_guard lock(mu_);
        shutdown_ = true;
        if (queue_) queue_->close();
        prefetch_cv_.notify_all();
        reader_cv_.notify_all();
    }
    if (prefetcher_.joinable()) prefetcher_.join();
}

void Stream::open_durable(const StreamOptions& opts) {
    std::lock_guard lock(mu_);
    open_durable_locked(opts);
}

void Stream::open_durable_locked(const StreamOptions& opts) {
    if (log_ || !durable::resolve_enabled(opts.durable)) return;
    auto log = std::make_unique<durable::Log>(name_, opts.durable);
    // Recovered state is only installed into a pristine stream (nothing
    // assembled or fetched yet) — the cold-restart / late-join paths.  A
    // stream already streaming keeps its live state and just starts
    // appending.
    const bool pristine = next_step_ == 0 && next_fetch_ == 0 &&
                          window_.empty() && pending_.empty();
    if (pristine && (log->next_step() > 0 || log->complete())) {
        next_step_ = log->next_step();
        layout_gen_ = log->max_layout_gen();
        const std::uint64_t base =
            opts.durable.replay_history ? 0 : log->acked();
        window_base_ = base;
        demand_ = base;
        // A step whose frame was quarantined (or lost entirely) goes
        // through the same data-loss policy as a warm-path shed.
        const auto drop = [&](std::uint64_t step, std::uint64_t layout_gen,
                              const ffs::Bytes* meta) {
            if (opts.on_data_loss == OnDataLoss::ZeroFill && meta != nullptr) {
                auto data = std::make_shared<StepData>();
                data->step = step;
                data->meta = *meta;
                data->layout_gen = layout_gen;
                data->lossy = true;
                window_.push_back(InFlight{window_base_ + window_.size(),
                                           std::move(data), 0, true});
                ++lost_steps_;
                ins_.steps_skipped->inc();
                return;
            }
            if (opts.on_data_loss == OnDataLoss::Fail) {
                // An unloaded entry whose reload throws the frame's
                // SpoolError: the poisoned-prefetch machinery surfaces it
                // from acquire(), exactly like a failed spool reload.
                auto data = std::make_shared<StepData>();
                data->step = step;
                data->layout_gen = layout_gen;
                data->in_log = true;
                window_.push_back(InFlight{window_base_ + window_.size(),
                                           std::move(data), 0, false});
                return;
            }
            // Skip (or ZeroFill with no surviving metadata): the step
            // vacates its reader cursor.
            recovery_skipped_.push_back(step);
            ++lost_steps_;
            ins_.steps_skipped->inc();
        };
        std::uint64_t expect = base;
        for (const durable::RecoveredStep& rs : log->recovered()) {
            while (expect < rs.step) {  // frame lost entirely (resync gap)
                drop(expect, layout_gen_, nullptr);
                ++expect;
            }
            if (rs.state == durable::RecoveredStep::State::Ok) {
                auto data = std::make_shared<StepData>();
                data->step = rs.step;
                data->layout_gen = rs.layout_gen;
                data->in_log = true;
                window_.push_back(InFlight{window_base_ + window_.size(),
                                           std::move(data), 0, false});
            } else {
                drop(rs.step, rs.layout_gen, &rs.meta);
            }
            ++expect;
        }
        next_fetch_ = window_base_ + window_.size();
        if (log->complete()) eos_ = true;
        SB_LOG(Info) << "stream " << name_ << ": durable recovery installed "
                     << window_.size() << " step(s) at cursor " << window_base_
                     << " (next step " << next_step_ << ", "
                     << recovery_skipped_.size() << " skipped"
                     << (eos_ ? ", complete)" : ")");
    }
    log_ = std::move(log);
}

durable::Log* Stream::durable_log() const {
    std::lock_guard lock(mu_);
    return log_.get();
}

void Stream::set_cold_source_replay() {
    std::lock_guard lock(mu_);
    cold_source_replay_ = true;
}

std::uint64_t Stream::reader_cursor_for_step(std::uint64_t step) const {
    std::lock_guard lock(mu_);
    std::uint64_t skipped = 0;
    for (const std::uint64_t s : recovery_skipped_) {
        if (s < step) ++skipped;
    }
    return step - skipped;
}

void Stream::attach_writer(int nranks, const StreamOptions& opts) {
    if (nranks <= 0) throw std::invalid_argument("attach_writer: nranks must be positive");
    std::lock_guard lock(mu_);
    if (writer_size_ == 0) {
        open_durable_locked(opts);  // no-op when Workflow already opened it
        writer_size_ = nranks;
        opts_ = opts;
        read_ahead_ = resolve_read_ahead(opts);
        liveness_s_ = resolve_liveness_seconds(opts);
        // A relaunched process resumes submitting at the durable frontier
        // (next_step_ is 0 on a fresh stream, reproducing the seed).
        rank_submits_.assign(static_cast<std::size_t>(nranks), next_step_);
        if (cold_source_replay_) {
            // A restarted source regenerates from step 0; the log already
            // holds the first next_step_ of them.
            replay_drop_.assign(static_cast<std::size_t>(nranks), next_step_);
            cold_source_replay_ = false;
        }
        queue_ = std::make_unique<util::BoundedQueue<StepData>>(opts.queue_capacity,
                                                                name_);
        // Readers blocked in acquire() are woken by the prefetcher once it
        // delivers a step; the prefetcher itself may already be idling
        // (attach_reader ran first), so hand it the new queue.
        start_prefetcher_locked();
        prefetch_cv_.notify_all();
    } else if (writer_size_ != nranks) {
        throw std::logic_error("stream '" + name_ +
                               "': writer ranks disagree on group size");
    }
}

void Stream::merge_locked(Contribution& dst, Contribution&& c) {
    for (auto& [name, decl] : c.var_decls) {
        auto [it, inserted] = dst.var_decls.try_emplace(name, decl);
        if (!inserted && !(it->second == decl)) {
            throw std::logic_error("stream '" + name_ + "': writer ranks disagree on variable '" +
                                   name + "' declaration");
        }
    }
    for (auto& [name, blks] : c.blocks) {
        auto& dstblks = dst.blocks[name];
        for (auto& b : blks) {
            if (!b.box.empty()) dstblks.push_back(std::move(b));
        }
    }
    for (auto& [name, vals] : c.string_attrs) {
        auto [it, inserted] = dst.string_attrs.try_emplace(name, vals);
        if (!inserted && it->second != vals) {
            throw std::logic_error("stream '" + name_ +
                                   "': writer ranks disagree on attribute '" + name + "'");
        }
    }
    for (auto& [name, val] : c.double_attrs) {
        auto [it, inserted] = dst.double_attrs.try_emplace(name, val);
        if (!inserted && it->second != val) {
            throw std::logic_error("stream '" + name_ +
                                   "': writer ranks disagree on attribute '" + name + "'");
        }
    }
}

StepData Stream::assemble_locked(std::uint64_t step) {
    Contribution pending = std::move(pending_.at(step));
    pending_.erase(step);
    pending_counts_.erase(step);

    StepMeta meta;
    meta.step = step;
    meta.vars = pending.var_decls;
    meta.string_attrs = pending.string_attrs;
    meta.double_attrs = pending.double_attrs;

    // Validate blocks against declarations.
    for (const auto& [name, blks] : pending.blocks) {
        const auto it = meta.vars.find(name);
        if (it == meta.vars.end()) {
            throw std::logic_error("stream '" + name_ + "': data for undeclared variable '" +
                                   name + "'");
        }
        for (const Block& b : blks) {
            if (!b.box.within(it->second.global_shape)) {
                throw std::logic_error("stream '" + name_ + "': block " + b.box.to_string() +
                                       " outside global shape " +
                                       it->second.global_shape.to_string() +
                                       " of variable '" + name + "'");
            }
        }
    }

    StepData sd;
    sd.step = step;
    sd.meta = encode_step_meta(meta);
    sd.blocks = std::move(pending.blocks);

    // Deterministic block order: contributions arrive in rank-arrival order,
    // which varies step to step; sorting by box makes "same layout" mean
    // "same block at the same index", which is what lets reader-side copy
    // plans reference blocks by index across steps of one generation.
    //
    // Fast path: when every var matches the cached layout (same var set,
    // shape, block count, every box known), each block is *placed* at its
    // cached sorted position instead of re-sorted, and by construction the
    // layout is unchanged — layout_gen_ stays put without building and
    // comparing a full layout signature every step.
    bool cache_hit = layout_gen_ != 0 && sd.blocks.size() == layout_cache_.size();
    if (cache_hit) {
        for (auto& [name, blks] : sd.blocks) {
            const auto it = layout_cache_.find(name);
            if (it == layout_cache_.end() || !it->second.usable ||
                it->second.sorted_boxes.size() != blks.size() ||
                !(it->second.shape == meta.vars.at(name).global_shape)) {
                cache_hit = false;
                break;
            }
        }
    }
    if (cache_hit) {
        for (auto& [name, blks] : sd.blocks) {
            const VarLayoutCache& cache = layout_cache_.at(name);
            scratch_blocks_.clear();
            scratch_blocks_.resize(blks.size());
            bool placed_all = true;
            for (Block& b : blks) {
                const auto pos = cache.index.find(b.box);
                if (pos == cache.index.end() ||
                    scratch_blocks_[pos->second].data != nullptr) {
                    placed_all = false;
                    break;
                }
                scratch_blocks_[pos->second] = std::move(b);
            }
            if (!placed_all) {
                // Partitioning changed (or this step duplicates a box).
                // Move the blocks already in the scratch back into the
                // vacated slots (data == nullptr marks moved-from; order is
                // irrelevant, the sort path below canonicalizes everything).
                std::size_t si = 0;
                for (Block& slot : blks) {
                    if (slot.data != nullptr) continue;
                    while (si < scratch_blocks_.size() &&
                           scratch_blocks_[si].data == nullptr) {
                        ++si;
                    }
                    if (si == scratch_blocks_.size()) break;
                    slot = std::move(scratch_blocks_[si++]);
                }
                cache_hit = false;
                break;
            }
            blks.swap(scratch_blocks_);
        }
    }
    if (!cache_hit) {
        for (auto& [name, blks] : sd.blocks) {
            std::sort(blks.begin(), blks.end(), [](const Block& a, const Block& b) {
                return std::tie(a.box.offset, a.box.count) <
                       std::tie(b.box.offset, b.box.count);
            });
        }
        // Layout generation: bump when any variable's shape or block
        // partitioning differs from the previous step, and rebuild the
        // sorted-order cache to match.
        bool same = layout_gen_ != 0 && sd.blocks.size() == layout_cache_.size();
        if (same) {
            for (const auto& [name, blks] : sd.blocks) {
                const auto it = layout_cache_.find(name);
                if (it == layout_cache_.end() ||
                    !(it->second.shape == meta.vars.at(name).global_shape) ||
                    it->second.sorted_boxes.size() != blks.size()) {
                    same = false;
                    break;
                }
                for (std::size_t i = 0; i < blks.size(); ++i) {
                    if (!(blks[i].box == it->second.sorted_boxes[i])) {
                        same = false;
                        break;
                    }
                }
                if (!same) break;
            }
        }
        if (!same) {
            ++layout_gen_;
            layout_cache_.clear();
            for (const auto& [name, blks] : sd.blocks) {
                VarLayoutCache& cache = layout_cache_[name];
                cache.shape = meta.vars.at(name).global_shape;
                cache.sorted_boxes.reserve(blks.size());
                for (std::size_t i = 0; i < blks.size(); ++i) {
                    cache.sorted_boxes.push_back(blks[i].box);
                    if (!cache.index.emplace(blks[i].box, i).second) {
                        cache.usable = false;  // duplicate box: always sort
                    }
                }
            }
        }
    }
    sd.layout_gen = layout_gen_;
    return sd;
}

void Stream::abort() {
    std::lock_guard lock(mu_);
    if (aborted_) return;
    aborted_ = true;
    ins_.aborts->inc();
    if (queue_) queue_->close();
    reader_cv_.notify_all();
    prefetch_cv_.notify_all();
}

void Stream::submit(int rank, Contribution c) {
    fault::hit("flexpath.publish", name_);
    std::optional<StepData> completed;
    double assemble_t0 = 0.0;
    durable::Log* log = nullptr;
    {
        std::lock_guard lock(mu_);
        log = log_.get();
        if (aborted_) throw StreamAborted(name_);
        if (writer_size_ == 0) {
            throw std::logic_error("stream '" + name_ + "': submit before attach_writer");
        }
        if (rank < 0 || rank >= writer_size_) {
            throw std::out_of_range("stream '" + name_ + "': bad writer rank");
        }
        // Replay suppression: a restarted source regenerates its
        // deterministic sequence from step 0, but the stream already
        // assembled the first writer_resume_step() of them — drop those
        // re-submissions without assigning them a step.
        if (!replay_drop_.empty() &&
            replay_drop_[static_cast<std::size_t>(rank)] > 0) {
            --replay_drop_[static_cast<std::size_t>(rank)];
            ins_.replay_suppressed->inc();
            return;
        }
        // This rank's n-th submit always belongs to step n, regardless of
        // how far ahead of its peers the rank is running.
        const std::uint64_t step = rank_submits_[static_cast<std::size_t>(rank)]++;
        if (obs::enabled() && !pending_counts_.count(step)) {
            pending_t0_[step] = obs::steady_seconds();  // assembly window opens
        }
        merge_locked(pending_[step], std::move(c));
        if (++pending_counts_[step] == writer_size_) {
            // Every rank submits steps in order, so steps complete in
            // order: this must be the next step to queue.
            if (step != next_step_) {
                throw std::logic_error("stream '" + name_ + "': step " +
                                       std::to_string(step) +
                                       " completed out of order");
            }
            ++next_step_;
            completed = assemble_locked(step);
            const auto pt = pending_t0_.find(step);
            if (pt != pending_t0_.end()) {
                assemble_t0 = pt->second;
                pending_t0_.erase(pt);
            }
        }
    }
    if (completed) {
        const bool instr = obs::enabled();
        ins_.steps_assembled->inc();
        if (instr && assemble_t0 > 0.0) {
            // Step span: first contribution -> fully assembled.  The actor
            // is the producing component instance (the submitting thread's
            // ScopedActor label, set by the workflow).
            obs::SpanStore::global().record(name_, completed->step,
                                            obs::SegmentKind::Assemble,
                                            assemble_t0, obs::steady_seconds(),
                                            rank);
        }
        // Durable log (preferred) or volatile spool: park the step's data
        // on disk so deep buffers stay memory-bounded; readers load it back
        // on acquire.  Both take the same scatter-gather path: the record
        // borrows the block payloads and encode_segments splices them into
        // the stream of header bytes, so the bulk data goes record -> disk
        // with no intermediate packet copy — byte-identical to the
        // contiguous encode_step_blocks() packet.
        if (log != nullptr) {
            const ffs::Record spool_rec = make_spool_record(completed->blocks);
            const ffs::EncodedSegments segs = ffs::encode_segments(spool_rec);
            log->append_step(completed->step, completed->layout_gen,
                             completed->meta, segs);
            completed->blocks.clear();
            completed->in_log = true;
        } else if (!opts_.spool_dir.empty()) {
            const std::string path =
                spool_file_path(opts_.spool_dir, name_, completed->step);
            const double t0 = instr ? obs::steady_seconds() : 0.0;
            const ffs::Record spool_rec = make_spool_record(completed->blocks);
            const ffs::EncodedSegments segs = ffs::encode_segments(spool_rec);
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) {
                throw std::runtime_error("stream '" + name_ + "': cannot spool to '" +
                                         path + "'");
            }
            for (const auto& seg : segs.segments) {
                out.write(reinterpret_cast<const char*>(seg.data()),
                          static_cast<std::streamsize>(seg.size()));
            }
            if (instr) {
                ins_.spool_write_seconds->observe(obs::steady_seconds() - t0);
                ins_.spool_bytes_written->add(segs.total);
            }
            completed->blocks.clear();
            completed->spool_path = path;
        }
        // Pushed outside mu_ so other ranks can begin the next step while
        // this (last-arriving) rank blocks on a full queue — backpressure
        // lands exactly where FlexPath's bounded writer-side buffer puts it.
        SB_LOG(Debug) << "stream " << name_ << ": step " << completed->step << " queued";
        const std::uint64_t step_id = completed->step;
        const double push_t0 = instr ? obs::steady_seconds() : 0.0;
        // The queue-residency span opens at push start, so it includes any
        // backpressure wait (documented in StepData::t_enqueued; the
        // critical-path analyzer never uses Queue, so no double count).
        completed->t_enqueued = push_t0;
        try {
            if (liveness_s_ > 0.0) {
                if (!queue_->try_push_for(*completed, liveness_s_)) {
                    // No consumer progress for the whole liveness interval:
                    // presume the reader group hung/died rather than block
                    // this writer forever.
                    throw PeerLivenessError(
                        "stream '" + name_ + "': no reader progress within " +
                        std::to_string(liveness_s_ * 1e3) +
                        " ms (queue full at step " +
                        std::to_string(completed->step) + ")");
                }
            } else {
                queue_->push(std::move(*completed));
            }
        } catch (const util::QueueAborted&) {
            // The queue only closes on abort (writers close after their
            // last submit, never during one).
            throw StreamAborted(name_);
        }
        if (instr) {
            const double push_t1 = obs::steady_seconds();
            const double waited = push_t1 - push_t0;
            ins_.backpressure_wait->observe(waited);
            ins_.queue_depth->set(static_cast<double>(queue_->size()));
            ins_.blocked_push_seconds->set(queue_->blocked_push_seconds());
            auto& tl = obs::TraceLog::global();
            tl.counter("queue depth", name_, static_cast<double>(queue_->size()));
            if (waited >= kStallSliceSeconds) {
                tl.slice("backpressure", name_, "backpressure", push_t0, push_t1,
                         step_id);
            }
            obs::SpanStore::global().record(name_, step_id,
                                            obs::SegmentKind::BackpressureOut,
                                            push_t0, push_t1, rank);
        }
    }
}

void Stream::close_writer(int rank) {
    std::lock_guard lock(mu_);
    if (aborted_) return;  // nothing left to signal
    if (writer_size_ == 0 || rank < 0 || rank >= writer_size_) {
        throw std::logic_error("stream '" + name_ + "': close_writer before attach");
    }
    if (++writers_closed_ == writer_size_) {
        if (!pending_.empty()) {
            throw std::logic_error("stream '" + name_ +
                                   "': writer group closed with " +
                                   std::to_string(pending_.size()) +
                                   " incomplete step(s)");
        }
        queue_->close();
        // Durably mark the clean close, so a replayed reader of the
        // recovered log terminates instead of waiting for a writer.
        if (log_) log_->append_eos();
        SB_LOG(Debug) << "stream " << name_ << ": writer group closed";
    }
}

void Stream::detach_writer(bool source_replays_from_zero) {
    std::lock_guard lock(mu_);
    if (writer_size_ == 0) return;
    if (!pending_.empty()) {
        SB_LOG(Warn) << "stream " << name_ << ": discarding " << pending_.size()
                     << " partial step(s) from a dead writer incarnation";
    }
    // Roll back to the assembly frontier: everything short of a fully
    // assembled step is regenerated by the relaunched incarnation.
    pending_.clear();
    pending_counts_.clear();
    pending_t0_.clear();
    for (auto& s : rank_submits_) s = next_step_;
    writers_closed_ = 0;
    if (source_replays_from_zero) {
        replay_drop_.assign(static_cast<std::size_t>(writer_size_), next_step_);
    }
}

std::uint64_t Stream::writer_resume_step() const {
    std::lock_guard lock(mu_);
    return next_step_;
}

std::uint64_t Stream::attach_reader(int nranks) {
    if (nranks <= 0) throw std::invalid_argument("attach_reader: nranks must be positive");
    std::lock_guard lock(mu_);
    if (reader_size_ == 0) {
        reader_size_ = nranks;
        start_prefetcher_locked();
    } else if (reader_detached_) {
        // A replacement group reattaches; it may be a different size (the
        // supervisor relaunches with the same count today, but the stream
        // does not care — acknowledgement counts were voided on detach).
        reader_size_ = nranks;
        reader_detached_ = false;
        if (!window_.empty()) {
            ins_.steps_replayed->add(window_.size());
            SB_LOG(Info) << "stream " << name_ << ": reader reattached, replaying "
                         << window_.size() << " retained step(s) from cursor "
                         << window_base_;
            if (obs::enabled()) {
                obs::TraceLog::global().slice("replay", name_, "restart",
                                              detach_t0_, obs::steady_seconds(),
                                              window_base_);
            }
        }
        demand_ = window_base_;
        prefetch_cv_.notify_all();  // deferred spool reloads may now proceed
    } else if (reader_size_ != nranks) {
        throw std::logic_error("stream '" + name_ +
                               "': reader ranks disagree on group size");
    }
    return window_base_;
}

void Stream::detach_reader() {
    std::lock_guard lock(mu_);
    if (reader_size_ == 0 || reader_detached_ || aborted_) return;
    reader_detached_ = true;
    detach_t0_ = obs::steady_seconds();
    // Void partial acknowledgements: a step not released by *every* rank of
    // the dead incarnation is replayed in full to the replacement group.
    for (auto& e : window_) e.released = 0;
    demand_ = window_base_;
    prefetch_cv_.notify_all();  // switch the prefetcher into retention mode
    SB_LOG(Info) << "stream " << name_ << ": reader detached with "
                 << window_.size() << " step(s) retained (cursor "
                 << window_base_ << ")";
}

void Stream::skip_reader_to(std::uint64_t cursor) {
    durable::Log* log = nullptr;
    std::uint64_t ack_step = 0;
    {
        std::lock_guard lock(mu_);
        if (cursor <= window_base_) return;
        if (cursor > window_base_ + window_.size()) {
            throw std::logic_error(
                "stream '" + name_ + "': skip_reader_to(" + std::to_string(cursor) +
                ") beyond fetched window [" + std::to_string(window_base_) + ", " +
                std::to_string(window_base_ + window_.size()) + ")");
        }
        while (window_base_ < cursor) {
            InFlight& front = window_.front();
            if (front.loaded && front.data && !front.data->lossy &&
                !front.data->blocks.empty()) {
                --window_payloads_;
            }
            if (front.data && !front.data->spool_path.empty()) {
                std::error_code ec;
                std::filesystem::remove(front.data->spool_path, ec);
            }
            if (front.data) {
                log = log_.get();
                ack_step = front.data->step + 1;
            }
            window_.pop_front();
            ++window_base_;
            ins_.steps_retired->inc();
        }
        demand_ = std::max(demand_, window_base_);
        prefetch_cv_.notify_all();
    }
    // Acknowledge off mu_ (the log serializes internally; recovery takes
    // the max frontier, so interleaved acks are harmless).
    if (log != nullptr) {
        log->append_ack(ack_step);
        log->collect(ack_step);
    }
}

void Stream::start_prefetcher_locked() {
    // Needs both sides: the reader group size bounds retirement, the queue
    // exists once a writer attached.  Whichever attach completes the pair
    // starts the thread.  A recovered durable log substitutes for the
    // writer side: its installed window entries still need reloading even
    // if no writer ever attaches (a late-joining reader of a finished
    // stream).
    if (prefetcher_started_ || reader_size_ == 0 || (!queue_ && !log_)) return;
    if (aborted_ || shutdown_) return;
    prefetcher_started_ = true;
    prefetcher_ = std::thread([this] { prefetch_loop(); });
}

namespace {

/// Whether a window entry holds in-memory block data (counts against the
/// retention bound).
bool entry_has_payload(const Stream&, const std::shared_ptr<StepData>& data,
                       bool loaded) {
    return loaded && data && !data->lossy && !data->blocks.empty();
}

}  // namespace

void Stream::shed_retained_locked() {
    // Spooled streams spill to disk instead of dropping; Fail never drops.
    if (opts_.on_data_loss == OnDataLoss::Fail || !opts_.spool_dir.empty()) return;
    while (window_payloads_ >= read_ahead_ + opts_.retain_steps) {
        if (opts_.on_data_loss == OnDataLoss::Skip) {
            if (window_.empty()) break;
            InFlight& front = window_.front();
            if (entry_has_payload(*this, front.data, front.loaded)) {
                --window_payloads_;
            }
            SB_LOG(Warn) << "stream " << name_ << ": retention exhausted, skipping "
                         << "step at cursor " << front.cursor;
            window_.pop_front();
            ++window_base_;
            ++lost_steps_;
            ins_.steps_skipped->inc();
        } else {  // ZeroFill: the oldest payload-bearing step loses its data
            bool found = false;
            for (auto& e : window_) {
                if (!entry_has_payload(*this, e.data, e.loaded)) continue;
                SB_LOG(Warn) << "stream " << name_
                             << ": retention exhausted, zero-filling step at cursor "
                             << e.cursor;
                e.data->blocks.clear();
                e.data->lossy = true;
                --window_payloads_;
                ++lost_steps_;
                ins_.steps_skipped->inc();
                found = true;
                break;
            }
            if (!found) break;
        }
    }
}

void Stream::prefetch_loop() {
    check::ThreadLabel label("prefetch:" + name_);
    std::unique_lock lock(mu_);
    for (;;) {
        // Oldest spool-parked window entry a reader wants soon; reloads are
        // deferred entirely while the reader group is detached.
        const auto reload_index = [&]() -> std::ptrdiff_t {
            if (reader_detached_) return -1;
            for (std::size_t i = 0; i < window_.size(); ++i) {
                if (window_[i].loaded) continue;
                if (window_[i].cursor < demand_ + read_ahead_) {
                    return static_cast<std::ptrdiff_t>(i);
                }
                return -1;  // entries are cursor-ordered
            }
            return -1;
        };
        const auto unloaded_any = [&] {
            for (const auto& e : window_) {
                if (!e.loaded) return true;
            }
            return false;
        };
        const auto can_fetch = [&] {
            if (eos_) return false;
            if (!queue_) return false;  // no writer yet (log-only replay)
            if (!reader_detached_) {
                return window_.size() < read_ahead_ &&
                       next_fetch_ < demand_ + (read_ahead_ - 1);
            }
            // Retention mode: keep draining the writer.  Spooled streams
            // park further steps on disk, so only in-memory payloads count
            // against the retention bound; past it the data-loss policy
            // decides whether to shed (Fail = stop fetching, apply
            // backpressure to the writer instead).
            if (!opts_.spool_dir.empty()) return true;
            if (window_payloads_ < read_ahead_ + opts_.retain_steps) return true;
            return opts_.on_data_loss != OnDataLoss::Fail;
        };
        const auto ready = [&] {
            return shutdown_ || aborted_ || reload_index() >= 0 || can_fetch() ||
                   (eos_ && !unloaded_any());
        };
        if (!ready()) {
            // Idle (window full, or no demand yet at read_ahead=1): list the
            // wait in the wait-for table so stall dumps explain the pipeline
            // state, but never report it as a stall itself — an idle
            // prefetcher is readers not draining, not blocked progress.
            if (check::enabled()) {
                const check::ScopedWait wait(
                    check::WaitKind::StreamPrefetch,
                    "stream '" + name_ + "' prefetch cursor=" +
                        std::to_string(next_fetch_) + " window=" +
                        std::to_string(window_.size()) + "/" +
                        std::to_string(read_ahead_) + " demand=" +
                        std::to_string(demand_));
                prefetch_cv_.wait(lock, ready);
            } else {
                prefetch_cv_.wait(lock, ready);
            }
        }
        if (shutdown_ || aborted_) return;
        if (eos_ && !unloaded_any()) return;  // drained and fully loaded
        const bool instr = obs::enabled();

        // Spool reload of a window entry whose data was deferred while the
        // reader group was detached (the I/O runs off mu_, like a fetch).
        const std::ptrdiff_t ri = reload_index();
        if (ri >= 0) {
            // Held by shared_ptr: the entry cannot vanish under us (release
            // only retires *loaded* steps, and we are attached, so no shed).
            std::shared_ptr<StepData> data =
                window_[static_cast<std::size_t>(ri)].data;
            const std::uint64_t cursor =
                window_[static_cast<std::size_t>(ri)].cursor;
            lock.unlock();
            try {
                load_spooled(*data, instr);
            } catch (...) {
                lock.lock();
                prefetch_error_ = std::current_exception();
                aborted_ = true;
                if (queue_) queue_->close();
                reader_cv_.notify_all();
                return;
            }
            lock.lock();
            if (shutdown_ || aborted_) return;
            // Re-find by cursor: skip_reader_to may have advanced the base.
            if (cursor >= window_base_ && cursor < window_base_ + window_.size()) {
                InFlight& e = window_[static_cast<std::size_t>(cursor - window_base_)];
                e.loaded = true;
                if (entry_has_payload(*this, e.data, e.loaded)) ++window_payloads_;
                reader_cv_.notify_all();
            }
            continue;
        }
        if (!can_fetch()) continue;  // woken for a reload that got skipped

        // Spool reloads of freshly popped steps are deferred while detached:
        // retained data stays parked on disk until a replacement group
        // reattaches and actually demands it.
        const bool defer_reload = reader_detached_;
        util::BoundedQueue<StepData>* queue = queue_.get();
        lock.unlock();

        // Both the (blocking) queue pop and the spool reload run off mu_:
        // reader ranks keep acquiring/releasing window steps while the next
        // step is fetched and decoded.
        const double pop_t0 = instr ? obs::steady_seconds() : 0.0;
        std::optional<StepData> item = queue->pop();  // blocks, own cv
        if (instr) {
            const double pop_t1 = obs::steady_seconds();
            const double waited = pop_t1 - pop_t0;
            ins_.prefetch_wait->observe(waited);
            ins_.queue_depth->set(static_cast<double>(queue->size()));
            ins_.blocked_pop_seconds->set(queue->blocked_pop_seconds());
            auto& tl = obs::TraceLog::global();
            tl.counter("queue depth", name_, static_cast<double>(queue->size()));
            if (waited >= kStallSliceSeconds) {
                tl.slice("prefetch wait", name_, "prefetch", pop_t0, pop_t1,
                         item ? item->step : 0);
            }
            if (item && item->t_enqueued > 0.0) {
                obs::SpanStore::global().record(name_, item->step,
                                                obs::SegmentKind::Queue,
                                                item->t_enqueued, pop_t1);
            }
        }
        bool loaded = true;
        if (item && (item->in_log || !item->spool_path.empty())) {
            if (defer_reload) {
                loaded = false;
            } else {
                try {
                    load_spooled(*item, instr);
                } catch (...) {
                    // A fetch failure poisons the stream: readers rethrow the
                    // original error from acquire(), writers unwind through
                    // the closed queue.
                    lock.lock();
                    prefetch_error_ = std::current_exception();
                    aborted_ = true;
                    if (queue_) queue_->close();
                    reader_cv_.notify_all();
                    return;
                }
            }
        }

        lock.lock();
        if (shutdown_ || aborted_) return;
        if (!item) {
            eos_ = true;  // queue closed and drained: no step >= next_fetch_
            reader_cv_.notify_all();
            // Not done yet: deferred spool reloads may still be pending for
            // a reattached reader — loop until the window is fully loaded.
            continue;
        }
        if (reader_detached_) shed_retained_locked();
        auto data = std::make_shared<StepData>(std::move(*item));
        const bool payload = entry_has_payload(*this, data, loaded);
        window_.push_back(InFlight{next_fetch_, std::move(data), 0, loaded});
        if (payload) ++window_payloads_;
        ++next_fetch_;
        if (instr) {
            ins_.read_ahead_depth->set(static_cast<double>(window_.size()));
        }
        reader_cv_.notify_all();
    }
}

void Stream::load_spooled(StepData& item, bool instr) {
    const double sp_t0 = instr ? obs::steady_seconds() : 0.0;
    fault::hit("flexpath.spool_reload", name_);
    if (item.in_log) {
        // The step's blocks live in the durable log: load the frame back by
        // step index (both checksums re-verified; throws SpoolError with
        // file/offset/step context for a quarantined or corrupted frame).
        // The frame stays in the log for crash recovery until collected.
        durable::LoadedStep loaded = log_->load_step(item.step);
        if (item.meta.empty()) item.meta = std::move(loaded.meta);
        item.layout_gen = loaded.layout_gen;
        item.blocks = decode_step_blocks(loaded.payload);
        if (instr) {
            const double sp_t1 = obs::steady_seconds();
            ins_.spool_read_seconds->observe(sp_t1 - sp_t0);
            if (sp_t1 - sp_t0 >= kStallSliceSeconds) {
                obs::TraceLog::global().slice("spool reload", name_, "prefetch",
                                              sp_t0, sp_t1);
            }
        }
        return;
    }
    std::ifstream in(item.spool_path, std::ios::binary);
    if (!in) {
        throw SpoolError("stream '" + name_ + "': missing spool file",
                         item.spool_path, 0, item.step);
    }
    const std::string packet((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    item.blocks = decode_step_blocks(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(packet.data()), packet.size()));
    std::filesystem::remove(item.spool_path);
    item.spool_path.clear();
    if (instr) {
        const double sp_t1 = obs::steady_seconds();
        ins_.spool_read_seconds->observe(sp_t1 - sp_t0);
        ins_.spool_bytes_read->add(packet.size());
        if (sp_t1 - sp_t0 >= kStallSliceSeconds) {
            obs::TraceLog::global().slice("spool reload", name_, "prefetch",
                                          sp_t0, sp_t1);
        }
    }
}

std::shared_ptr<const StepData> Stream::acquire(std::uint64_t cursor) {
    fault::hit("flexpath.acquire", name_);
    std::unique_lock lock(mu_);
    if (reader_size_ == 0) {
        throw std::logic_error("stream '" + name_ + "': acquire before attach_reader");
    }
    if (cursor < window_base_) {
        // A correctly restarted reader resumes at attach_reader()'s cursor;
        // anything below the window base was already retired or skipped.
        throw std::logic_error("stream '" + name_ + "': acquire cursor " +
                               std::to_string(cursor) + " behind window base " +
                               std::to_string(window_base_) +
                               " (stale reader incarnation?)");
    }
    if (cursor + 1 > demand_) {
        // Demand drives the prefetcher: at read_ahead=1 it fetches only
        // cursors a rank has actually asked for (the seed's on-demand
        // lockstep protocol); deeper windows fetch read_ahead-1 beyond.
        demand_ = cursor + 1;
        prefetch_cv_.notify_one();
    }
    const bool instr = obs::enabled();
    double wait_t0 = 0.0;
    const auto note_wait_end = [&] {
        if (wait_t0 == 0.0) return;
        const double t1 = obs::steady_seconds();
        ins_.acquire_wait->observe(t1 - wait_t0);
        if (t1 - wait_t0 >= kStallSliceSeconds) {
            obs::TraceLog::global().slice("acquire wait", name_, "acquire",
                                          wait_t0, t1);
        }
    };
    const auto in_window = [&] {
        return cursor >= window_base_ && cursor < window_base_ + window_.size() &&
               window_[static_cast<std::size_t>(cursor - window_base_)].loaded;
    };
    for (;;) {
        if (aborted_) {
            if (prefetch_error_) std::rethrow_exception(prefetch_error_);
            throw StreamAborted(name_);
        }
        if (in_window()) {
            std::shared_ptr<const StepData> data =
                window_[static_cast<std::size_t>(cursor - window_base_)].data;
            note_wait_end();
            return data;
        }
        if (eos_ && cursor >= next_fetch_) {
            note_wait_end();
            return nullptr;
        }
        if (instr && wait_t0 == 0.0) wait_t0 = obs::steady_seconds();
        // Waiting for the prefetcher to deliver this cursor's step — which
        // may in turn be waiting on window space (slow peers) or on the
        // writer group.
        std::string what;
        if (check::enabled()) {
            what = "stream '" + name_ + "' acquire cursor=" + std::to_string(cursor) +
                   " window=" + std::to_string(window_.size()) + "/" +
                   std::to_string(read_ahead_) +
                   " queued=" + std::to_string(queue_ ? queue_->size() : 0) +
                   (writer_size_ == 0 ? " (no writer attached)" : "");
        }
        const auto pred = [&] {
            return aborted_ || in_window() || (eos_ && cursor >= next_fetch_);
        };
        if (liveness_s_ > 0.0) {
            if (!check::wait_checked_for(reader_cv_, lock,
                                         check::WaitKind::StreamAcquire, what,
                                         pred, liveness_s_)) {
                note_wait_end();
                // No writer progress for the whole liveness interval:
                // presume the writer group hung/died rather than block this
                // reader forever.
                throw PeerLivenessError(
                    "stream '" + name_ + "': no step at cursor " +
                    std::to_string(cursor) + " within " +
                    std::to_string(liveness_s_ * 1e3) + " ms" +
                    (writer_size_ == 0 ? " (no writer attached)" : ""));
            }
        } else {
            check::wait_checked(reader_cv_, lock, check::WaitKind::StreamAcquire,
                                what, pred);
        }
    }
}

void Stream::release(std::uint64_t cursor) {
    durable::Log* log = nullptr;
    std::uint64_t ack_step = 0;
    {
        std::lock_guard lock(mu_);
        if (aborted_) return;
        // A rank of a detached (dead) incarnation racing its own teardown must
        // not acknowledge steps the replacement group still needs.
        if (reader_detached_) return;
        if (cursor < window_base_ || cursor >= window_base_ + window_.size()) {
            throw std::logic_error("stream '" + name_ + "': release without matching acquire");
        }
        ++window_[static_cast<std::size_t>(cursor - window_base_)].released;
        bool retired = false;
        // Ranks release their cursors in order, so fully-released steps form a
        // prefix of the window and retirement stays in cursor order.
        while (!window_.empty() && window_.front().released >= reader_size_) {
            InFlight& front = window_.front();
            if (entry_has_payload(*this, front.data, front.loaded)) {
                --window_payloads_;
            }
            if (front.data) {
                log = log_.get();
                ack_step = front.data->step + 1;
            }
            window_.pop_front();
            ++window_base_;
            ins_.steps_retired->inc();
            retired = true;
        }
        if (retired) {
            if (obs::enabled()) {
                ins_.read_ahead_depth->set(static_cast<double>(window_.size()));
            }
            prefetch_cv_.notify_one();  // window space freed; only the prefetcher cares
        }
    }
    // The durable acknowledgement (and any retention GC) runs off mu_: the
    // log serializes internally, and recovery takes the max frontier, so
    // out-of-order appends from racing ranks are harmless.
    if (log != nullptr) {
        log->append_ack(ack_step);
        log->collect(ack_step);
    }
}

bool Stream::reader_detached() const {
    std::lock_guard lock(mu_);
    return reader_detached_;
}

std::uint64_t Stream::steps_lost() const {
    std::lock_guard lock(mu_);
    return lost_steps_;
}

std::size_t Stream::queued_steps() const {
    std::lock_guard lock(mu_);
    return queue_ ? queue_->size() : 0;
}

bool Stream::writer_attached() const {
    std::lock_guard lock(mu_);
    return writer_size_ > 0;
}

std::size_t Stream::read_ahead() const {
    std::lock_guard lock(mu_);
    return read_ahead_;
}

std::size_t Stream::in_flight_steps() const {
    std::lock_guard lock(mu_);
    return window_.size();
}

// ---- Fabric ----------------------------------------------------------------

std::shared_ptr<Stream> Fabric::get(const std::string& name) {
    std::lock_guard lock(mu_);
    auto it = streams_.find(name);
    if (it == streams_.end()) {
        it = streams_.emplace(name, std::make_shared<Stream>(name)).first;
    }
    return it->second;
}

void Fabric::abort_all() {
    std::vector<std::shared_ptr<Stream>> snapshot;
    {
        std::lock_guard lock(mu_);
        for (auto& [name, s] : streams_) snapshot.push_back(s);
    }
    for (auto& s : snapshot) s->abort();
}

std::vector<std::string> Fabric::stream_names() const {
    std::lock_guard lock(mu_);
    std::vector<std::string> out;
    out.reserve(streams_.size());
    for (const auto& [name, s] : streams_) out.push_back(name);
    return out;
}

}  // namespace sb::flexpath
