// FlexPath-like publish/subscribe stream transport.
//
// The paper's FlexPath connects a *writer group* (the W ranks of an upstream
// component) to a *reader group* (the R ranks of a downstream component)
// through a named stream, and carries out the MxN redistribution: each writer
// rank contributes a hyperslab block of a global array per timestep; each
// reader rank requests a bounding box and receives exactly the data inside
// it, regardless of how the writers partitioned the array.
//
// This module reproduces the four assembly properties of paper §IV:
//   1. Streams are addressed purely by name (Fabric registry), so workflows
//      are wired by matching output/input stream names at launch.
//   2. Launch order is irrelevant: a stream springs into existence on first
//      open from either side; readers block until writers produce, writers
//      buffer until readers consume.
//   3. Writer and reader group sizes are independent (full MxN).
//   4. Completed steps are buffered writer-side in a bounded queue, letting
//      the upstream component compute ahead of its consumers (asynchronous
//      overlap); a full queue applies backpressure.
//
// The asynchronous overlap extends to the consumer side: readers hold a
// bounded *in-flight step window* (StreamOptions::read_ahead, default 2)
// with per-rank cursors, so a fast reader rank starts step N+1 while slow
// peers still hold N, and a per-stream prefetch thread pops the queue and
// reloads spooled blocks outside the stream mutex, overlapping fetch cost
// with downstream compute (docs/PERFORMANCE.md, "Reader-side step
// pipelining").
//
// Step metadata (variable names, kinds, global shapes, dimension labels,
// attributes) is carried as a self-describing FFS packet, decoded by
// readers, so downstream components discover everything from the stream
// itself — the property that makes SmartBlock components generic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "check/mutex.hpp"
#include "durable/log.hpp"
#include "ffs/encode.hpp"
#include "ffs/type.hpp"
#include "util/ndarray.hpp"
#include "util/queue.hpp"

namespace sb::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace sb::obs

namespace sb::flexpath {

using DataKind = ffs::Kind;

/// Reload failures carry the exact file, byte offset, and step that could
/// not be read back (see durable::SpoolError).
using durable::SpoolError;

/// One writer rank's block of one variable for one step.  The payload is
/// shared (never copied) between writer buffering and reader access.
struct Block {
    util::Box box;  // global coordinates
    std::shared_ptr<const std::vector<std::byte>> data;  // row-major in box
};

/// Declaration of a variable within a step.
struct VarDecl {
    std::string name;
    DataKind kind = DataKind::Float64;
    util::NdShape global_shape;
    std::vector<std::string> dim_labels;  // empty, or one label per dimension

    bool operator==(const VarDecl&) const = default;
};

/// Decoded view of a step's metadata.
struct StepMeta {
    std::uint64_t step = 0;
    std::map<std::string, VarDecl> vars;
    std::map<std::string, std::vector<std::string>> string_attrs;
    std::map<std::string, double> double_attrs;
};

/// Encodes/decodes step metadata through the FFS wire format.
ffs::Bytes encode_step_meta(const StepMeta& m);
StepMeta decode_step_meta(std::span<const std::byte> wire);

/// A fully assembled timestep, as seen by readers.
struct StepData {
    std::uint64_t step = 0;
    ffs::Bytes meta;  // FFS-encoded metadata packet (see encode_step_meta)
    std::map<std::string, std::vector<Block>> blocks;  // var name -> blocks
    /// When the stream spools (StreamOptions::spool_dir), buffered steps
    /// park their blocks in this file instead of memory until acquired.
    std::string spool_path;
    /// True when the step's blocks live in the stream's durable log
    /// (StreamOptions::durable) instead of memory or a spool file; readers
    /// load them back by step index, and the frame stays in the log for
    /// crash recovery until garbage-collected.
    bool in_log = false;
    /// Writer-layout generation: bumped by the stream whenever the block
    /// partitioning or any variable shape differs from the previous step.
    /// Reader-side copy plans compiled under one generation stay valid for
    /// every step carrying the same generation.
    std::uint64_t layout_gen = 0;
    /// True when the step's data was dropped under OnDataLoss::ZeroFill:
    /// metadata (shapes, labels, attributes) is intact but every read
    /// returns zeros (ReaderPort::step_lossy / adios::Reader::step_data_lost
    /// let components tell).
    bool lossy = false;
    /// Steady-clock instant the assembling rank began queueing the step
    /// (0 when metrics were off): the prefetcher closes the step's Queue
    /// span segment against this (docs/OBSERVABILITY.md, "Step provenance
    /// spans").  Includes any backpressure wait of the push itself.
    double t_enqueued = 0.0;

    /// The decoded metadata packet, decoded lazily on first access and
    /// shared by every reader rank of the step (one decode per step, not
    /// one per rank).  Thread-safe.
    const StepMeta& decoded_meta() const;

private:
    // Explicit mutex + flag rather than std::call_once: decode can throw
    // (corrupt packet, injected ffs.decode fault), and the next caller must
    // retry — exceptional call_once retry deadlocks under TSan's
    // interceptors.
    struct MetaCache {
        std::mutex mu;
        bool decoded = false;
        StepMeta meta;
    };
    std::shared_ptr<MetaCache> meta_cache_ = std::make_shared<MetaCache>();
};

/// Encodes/decodes a step's blocks for disk spooling (exposed for tests).
ffs::Bytes encode_step_blocks(const std::map<std::string, std::vector<Block>>& blocks);
std::map<std::string, std::vector<Block>> decode_step_blocks(
    std::span<const std::byte> wire);

/// Per-rank, per-step contribution handed to the stream by a writer.
struct Contribution {
    std::map<std::string, VarDecl> var_decls;
    std::map<std::string, std::vector<Block>> blocks;
    std::map<std::string, std::vector<std::string>> string_attrs;
    std::map<std::string, double> double_attrs;
};

/// What a stream does when a detached reader's retention bound is exceeded
/// and un-acknowledged steps must be dropped (docs/RESILIENCE.md).
enum class OnDataLoss {
    Fail,      // never drop: the writer blocks (or trips its liveness timeout)
    Skip,      // drop the oldest retained step; readers never see it
    ZeroFill,  // keep the step's metadata, replace its data with zeros
};

struct StreamOptions {
    StreamOptions() = default;
    // Constructors (rather than aggregate init) so StreamOptions{N} call
    // sites stay clean under -Wmissing-field-initializers / SB_WERROR.
    explicit StreamOptions(std::size_t capacity, std::string spool = {})
        : queue_capacity(capacity), spool_dir(std::move(spool)) {}

    /// Max completed steps buffered writer-side.  0 = synchronous rendezvous
    /// (writer's end_step blocks until the reader group takes the step) —
    /// used by the async-buffering ablation.
    std::size_t queue_capacity = 2;

    /// When non-empty, buffered steps spool their data blocks to
    /// self-describing packet files in this directory instead of holding
    /// them in memory, and load them back on acquire — the paper §VI idea
    /// of storage participating in a workflow, applied to the transport's
    /// buffer: deep buffering with bounded memory.
    std::string spool_dir;

    /// Reader-side in-flight step window (read-ahead depth): how many steps
    /// the reader group may hold concurrently, and how far ahead of reader
    /// demand the stream's prefetcher fetches.  1 = the lockstep protocol
    /// (every rank must release step N before any rank sees N+1, fetched on
    /// demand).  0 = auto: the SB_READ_AHEAD env var ("off"/"0"/"false" ->
    /// 1, an integer -> that depth), defaulting to 2.  An explicit value
    /// here wins over the env var (tests pin semantics this way).  Memory
    /// cost: up to read_ahead assembled steps held reader-side.
    std::size_t read_ahead = 0;

    /// While the reader group is detached (component restart), the stream
    /// keeps pulling completed steps into the retained window so the writer
    /// is not stalled; at most read_ahead + retain_steps of them are held
    /// *in memory*.  Spooled streams (spool_dir set) keep further steps
    /// parked on disk instead — replay material is then bounded by disk,
    /// not by this knob.  Past the bound, `on_data_loss` decides.
    std::size_t retain_steps = 8;

    /// Degradation policy when retention is exhausted (see OnDataLoss).
    /// Also decides what a cold restart does with a quarantined (corrupt)
    /// durable-log frame: Skip drops the step from the replayed sequence,
    /// ZeroFill replays its metadata with zeroed data, Fail poisons the
    /// stream with the frame's SpoolError.
    OnDataLoss on_data_loss = OnDataLoss::Fail;

    /// Crash-consistent step log (docs/RESILIENCE.md, "Durable step log").
    /// When enabled (durable.dir set and the mode resolves on), published
    /// steps are appended to a checksummed, framed log instead of spool
    /// files, and a relaunched process recovers the stream's state from it.
    durable::Options durable;

    /// Writer/reader liveness timeout in milliseconds: a submit blocked on
    /// a full queue or an acquire blocked on a silent writer group longer
    /// than this throws PeerLivenessError instead of waiting forever —
    /// converting a hung peer into a detected failure the supervisor can
    /// act on.  0 disables; negative (default) resolves SB_LIVENESS_MS
    /// (unset/"off"/"0" = disabled).
    double liveness_ms = -1.0;
};

/// The window depth `opts` resolves to (explicit value, else SB_READ_AHEAD,
/// else 2); always >= 1.
std::size_t resolve_read_ahead(const StreamOptions& opts);

/// The liveness timeout `opts` resolves to, in seconds (explicit value, else
/// SB_LIVENESS_MS); 0 = disabled.
double resolve_liveness_seconds(const StreamOptions& opts);

/// Thrown out of blocked stream operations when a workflow peer failed and
/// the fabric was aborted (so no component hangs on a dead neighbour).
class StreamAborted : public std::runtime_error {
public:
    explicit StreamAborted(const std::string& stream)
        : std::runtime_error("stream '" + stream + "' aborted") {}
};

/// Thrown out of a blocked submit/acquire when the liveness timeout
/// (StreamOptions::liveness_ms / SB_LIVENESS_MS) expired: the peer group
/// made no progress for the configured interval and is presumed hung or
/// dead.  The workflow supervisor treats it like any other component
/// failure (restart or root-cause propagation).
class PeerLivenessError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A named stream connecting one writer group to one reader group.
/// Thread-safe; all blocking uses condition variables.
class Stream {
public:
    explicit Stream(std::string name);
    ~Stream();
    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    const std::string& name() const noexcept { return name_; }

    // ---- durability ------------------------------------------------------
    /// Opens (or recovers) the stream's durable log per `opts.durable` and
    /// `opts.on_data_loss`.  On a pristine stream holding recovered
    /// history, the reader window, step counters, and layout generation are
    /// rebuilt from the log: a relaunched process resumes where the durable
    /// frontier left off, and with durable.replay_history a late-joining
    /// reader replays from step 0.  Idempotent; a no-op when the options
    /// don't resolve to an enabled log.  Call before attaching either side
    /// (Workflow does this for every external stream; attach_writer also
    /// calls it with its own options).
    void open_durable(const StreamOptions& opts);

    /// The stream's open durable log (nullptr when disabled) — recovery
    /// introspection for tests and the supervisor.
    durable::Log* durable_log() const;

    /// Marks the next writer-group attach as a restarted *source* replaying
    /// its deterministic sequence from step 0 after a cold restart: the
    /// first writer_resume_step() submissions of each rank are suppressed
    /// (the log already holds those steps).  Used by Workflow; the warm
    /// path uses detach_writer(true) instead.
    void set_cold_source_replay();

    /// Maps a step index to the reader-sequence cursor it occupies after
    /// recovery (quarantined steps dropped under OnDataLoss::Skip vacate
    /// their cursor).  Identity on a stream with no recovery skips.
    std::uint64_t reader_cursor_for_step(std::uint64_t step) const;

    // ---- writer side -----------------------------------------------------
    /// Called once per writer rank; the first call fixes the group size and
    /// options.  All ranks must pass the same values.
    void attach_writer(int nranks, const StreamOptions& opts);

    /// Submits rank `rank`'s contribution for its next step.  When the last
    /// rank of the group submits, the step is assembled, its metadata is
    /// FFS-encoded, and it is queued for the readers (this final submit
    /// blocks if the queue is full — backpressure).
    void submit(int rank, Contribution c);

    /// Called once per writer rank.  When the whole group has closed, end
    /// of stream propagates to the readers.
    void close_writer(int rank);

    /// Rolls the writer side back to the last fully assembled step after a
    /// writer-group incarnation died: partial per-rank submissions are
    /// discarded, submit counters rewind to the assembly frontier, and
    /// close counts reset, so a relaunched group resumes submitting step
    /// writer_resume_step() consistently.  With `source_replays_from_zero`
    /// (a component with no input streams regenerates its deterministic
    /// sequence from step 0), the first writer_resume_step() submissions of
    /// each rank are additionally suppressed instead of re-queued.
    void detach_writer(bool source_replays_from_zero);

    /// The step index a relaunched writer group's next accepted submission
    /// will be assigned (i.e. the number of fully assembled steps so far).
    std::uint64_t writer_resume_step() const;

    // ---- reader side -----------------------------------------------------
    /// Called once per reader rank; first call fixes the reader group size.
    /// Returns the cursor this rank must start acquiring from: 0 on first
    /// attach, or — after detach_reader() — the oldest un-acknowledged
    /// (retained) step, so a replacement reader group replays everything
    /// the failed one never finished.
    std::uint64_t attach_reader(int nranks);

    /// Detaches the reader group after its component incarnation died: all
    /// partial acknowledgements on in-flight steps are voided (a step is
    /// replayed in full unless *every* rank had released it), retention
    /// mode begins (see StreamOptions::retain_steps), and a later
    /// attach_reader() resumes from the oldest retained step.  Idempotent;
    /// a replacement group may attach with a different rank count.
    void detach_reader();

    /// Force-acknowledges every retained step below `cursor` (supervisor
    /// alignment: a restarted middle component whose *output* stream
    /// already holds steps through cursor-1 must not consume the inputs
    /// that produced them again).  Throws if steps beyond the fetched
    /// window would have to be skipped.
    void skip_reader_to(std::uint64_t cursor);

    /// Blocks until the step at this rank's cursor is available.  All
    /// reader ranks observe the same sequence of steps, but ranks need not
    /// be in lockstep: up to `read_ahead` consecutive steps are in flight
    /// at once, so a fast rank can hold cursor N+k while a slow peer still
    /// holds N (k < read_ahead).  Returns nullptr at end of stream.
    /// `cursor` is the number of steps this rank has already completed
    /// (managed per rank by ReaderPort).
    std::shared_ptr<const StepData> acquire(std::uint64_t cursor);

    /// Releases the step at this rank's cursor; when every reader rank has
    /// released a step it is retired (in order) and window space is freed
    /// for the prefetcher.
    void release(std::uint64_t cursor);

    /// Wakes every blocked reader/writer with StreamAborted (used when a
    /// workflow peer dies so the rest of the graph unwinds).  Idempotent.
    void abort();

    // ---- introspection (tests, benches) -----------------------------------
    std::size_t queued_steps() const;
    bool writer_attached() const;
    /// The resolved in-flight window depth (0 until a writer attached).
    std::size_t read_ahead() const;
    /// Steps currently held in the reader-side window.
    std::size_t in_flight_steps() const;
    /// Whether the reader group is currently detached (retention mode).
    bool reader_detached() const;
    /// Steps dropped (skipped or zero-filled) under the data-loss policy.
    std::uint64_t steps_lost() const;

private:
    const std::string name_;

    // CheckedMutex + condition_variable_any so the sb::check lock-order and
    // wait-for analyzers see every stream acquisition and blocked wait.
    // Two condition variables with targeted notifies instead of one
    // broadcast cv: readers blocked in acquire() sleep on reader_cv_
    // (woken when the prefetcher delivers a step, at EOS, and on abort);
    // the prefetch thread sleeps on prefetch_cv_ (woken when reader demand
    // advances, when a retired step frees window space, and on teardown).
    // submit()/release() no longer wake every blocked thread in the
    // process — the thundering herd of the single-cv protocol.
    mutable check::CheckedMutex mu_;
    std::condition_variable_any reader_cv_;
    std::condition_variable_any prefetch_cv_;

    // Writer group.  Ranks are not in lockstep: a fast rank may be several
    // steps ahead of a slow one, so contributions are merged per step.
    int writer_size_ = 0;  // 0 until attached
    StreamOptions opts_;
    std::vector<std::uint64_t> rank_submits_;  // per-rank count of submitted steps
    std::map<std::uint64_t, Contribution> pending_;  // step -> merged contribution
    std::map<std::uint64_t, int> pending_counts_;    // step -> ranks arrived
    // First-contribution instant per assembling step (metrics on only):
    // closes the step's Assemble span segment when the last rank arrives.
    std::map<std::uint64_t, double> pending_t0_;
    int writers_closed_ = 0;
    std::uint64_t next_step_ = 0;  // next step to assemble and queue
    std::unique_ptr<util::BoundedQueue<StepData>> queue_;
    // Durable step log (StreamOptions::durable).  Opened before either side
    // attaches and never replaced, so the prefetcher and submit paths read
    // the pointer without mu_ once streaming began.  The log serializes
    // internally.
    std::unique_ptr<durable::Log> log_;
    // Steps of the recovered history dropped from the reader sequence
    // (quarantined under Skip, or lost to frame resync), ascending; later
    // steps occupy a cursor shifted down by the preceding skips.
    std::vector<std::uint64_t> recovery_skipped_;
    bool cold_source_replay_ = false;  // see set_cold_source_replay()
    double liveness_s_ = 0.0;  // resolved liveness timeout; 0 = disabled
    // Replay suppression for restarted sources: per writer rank, how many
    // leading re-submissions (the deterministic regeneration of steps the
    // stream already assembled) to drop without assigning them a step.
    std::vector<std::uint64_t> replay_drop_;

    // Writer-layout tracking for StepData::layout_gen, doubling as the
    // assemble-side sorted-order cache: in steady state (same partitioning
    // every step) assemble_locked places each block by an O(log n) index
    // lookup instead of re-sorting, and the generation provably cannot have
    // changed.  `index` maps a block's box to its position in the sorted
    // order; duplicate boxes would collapse it, so such a var marks the
    // cache unusable and always takes the sort path.
    struct BoxLess {
        bool operator()(const util::Box& a, const util::Box& b) const {
            return std::tie(a.offset, a.count) < std::tie(b.offset, b.count);
        }
    };
    struct VarLayoutCache {
        util::NdShape shape;
        std::vector<util::Box> sorted_boxes;
        std::map<util::Box, std::size_t, BoxLess> index;
        bool usable = true;
    };
    std::uint64_t layout_gen_ = 0;
    std::map<std::string, VarLayoutCache> layout_cache_;
    std::vector<Block> scratch_blocks_;  // reused per-var reorder buffer

    // Reader group: a bounded window of in-flight steps instead of a
    // single-step rendezvous.  window_ holds consecutive steps (front =
    // oldest cursor); each entry retires when every reader rank has
    // released it, and retirement is always in cursor order because each
    // rank releases its cursors in order.
    struct InFlight {
        std::uint64_t cursor = 0;  // reader-sequence index of this step
        std::shared_ptr<StepData> data;
        int released = 0;  // reader ranks that released this step
        /// False while the step's blocks are still parked in the spool
        /// (retention mode defers the reload until a reader reattaches).
        bool loaded = true;
    };
    int reader_size_ = 0;  // 0 until attached
    std::deque<InFlight> window_;
    std::uint64_t window_base_ = 0;  // cursor of window_.front() (live even when empty)
    std::size_t window_payloads_ = 0;  // entries holding in-memory block data
    bool reader_detached_ = false;     // retention mode (between detach/reattach)
    double detach_t0_ = 0.0;           // when the reader detached (trace slice)
    std::size_t read_ahead_ = 0;   // resolved window depth; 0 until attach_writer
    std::uint64_t next_fetch_ = 0; // cursor the prefetcher fetches next
    std::uint64_t demand_ = 0;     // 1 + highest cursor any rank has asked for
    std::uint64_t lost_steps_ = 0; // steps dropped under the data-loss policy
    bool eos_ = false;             // queue drained: no step at cursor >= next_fetch_
    bool aborted_ = false;
    bool shutdown_ = false;        // destructor tearing the prefetcher down
    std::exception_ptr prefetch_error_;  // fatal prefetch failure, rethrown in acquire

    // Background prefetcher: pops the next step from the bounded queue and
    // reloads spooled blocks *off* mu_, then publishes the step into the
    // window.  Started once both sides are attached; exits at EOS, abort,
    // or stream destruction.  Demand-driven: it never fetches past
    // (highest demanded cursor) + read_ahead - 1, so read_ahead=1
    // reproduces the seed's on-demand lockstep fetch.
    std::thread prefetcher_;
    bool prefetcher_started_ = false;
    void start_prefetcher_locked();
    void prefetch_loop();

    void open_durable_locked(const StreamOptions& opts);
    void merge_locked(Contribution& dst, Contribution&& c);
    StepData assemble_locked(std::uint64_t step);
    /// Drops retained data (detached mode, retention bound hit) per the
    /// data-loss policy until an in-memory payload slot is free.
    void shed_retained_locked();
    /// Loads `item`'s spooled blocks back into memory and removes the spool
    /// file.  Runs off mu_ (prefetcher only); throws on I/O/decode failure.
    void load_spooled(StepData& item, bool instr);

    // Observability instruments, resolved once per stream (label stream=name)
    // from the global registry in the constructor; the registry guarantees
    // pointer stability, so the hot path touches only atomics.  See
    // docs/OBSERVABILITY.md for the metric reference.
    struct Instruments {
        obs::Counter* steps_assembled = nullptr;
        obs::Counter* steps_retired = nullptr;
        obs::Counter* steps_replayed = nullptr;
        obs::Counter* steps_skipped = nullptr;
        obs::Counter* replay_suppressed = nullptr;
        obs::Counter* aborts = nullptr;
        obs::Counter* spool_bytes_written = nullptr;
        obs::Counter* spool_bytes_read = nullptr;
        obs::Gauge* queue_depth = nullptr;
        obs::Gauge* blocked_push_seconds = nullptr;
        obs::Gauge* blocked_pop_seconds = nullptr;
        obs::Gauge* read_ahead_depth = nullptr;
        obs::Histogram* backpressure_wait = nullptr;
        obs::Histogram* acquire_wait = nullptr;
        obs::Histogram* prefetch_wait = nullptr;
        obs::Histogram* spool_write_seconds = nullptr;
        obs::Histogram* spool_read_seconds = nullptr;
    };
    Instruments ins_;
};

/// Process-wide registry of streams by name.  A workflow owns one Fabric;
/// components receive it through their run context (the reproduction's
/// stand-in for the EVPath connection manager).
class Fabric {
public:
    Fabric() = default;
    Fabric(const Fabric&) = delete;
    Fabric& operator=(const Fabric&) = delete;

    /// Returns the stream named `name`, creating it on first use (from
    /// either the writer or the reader side — launch-order independence).
    std::shared_ptr<Stream> get(const std::string& name);

    /// Names of all streams ever opened (diagnostics).
    std::vector<std::string> stream_names() const;

    /// Aborts every stream (see Stream::abort).
    void abort_all();

private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<Stream>> streams_;
};

}  // namespace sb::flexpath
