// CRC32C (Castagnoli) checksums for the durable step log.
//
// The spool promotion to a crash-consistent log (src/durable) frames every
// record with two checksums: one over the frame header + metadata, one over
// the bulk payload.  CRC32C is the polynomial used by iSCSI, ext4 and
// Btrfs for exactly this job — strong enough to catch torn writes and
// bit rot, cheap enough to run inline with the scatter-gather encode.
//
// The implementation is a slicing-by-8 table walk (no ISA extensions, so it
// behaves identically on every build), streamable so the log can checksum
// an iovec-style segment list without concatenating it first:
//
//   std::uint32_t c = crc32c_init();
//   for (span segment : segments) c = crc32c_update(c, segment);
//   std::uint32_t crc = crc32c_final(c);
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sb::ffs {

/// Starting state for a streaming CRC32C computation.
inline std::uint32_t crc32c_init() noexcept { return 0xFFFFFFFFu; }

/// Folds `data` into the running state (chain across segments).
std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::byte> data) noexcept;

/// Finalizes the running state into the checksum value.
inline std::uint32_t crc32c_final(std::uint32_t state) noexcept {
    return state ^ 0xFFFFFFFFu;
}

/// One-shot convenience: the CRC32C of `data`.
inline std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
    return crc32c_final(crc32c_update(crc32c_init(), data));
}

}  // namespace sb::ffs
