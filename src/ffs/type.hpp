// FFS-like self-describing typed records.
//
// FFS ("a type system for high performance communication") gives FlexPath
// streams their self-describing property: every packet carries enough schema
// to be decoded by a receiver that has never seen the type before.  This
// module reproduces that: a TypeDescriptor names the fields of a record
// (name, element kind, shape), a Record holds matching values, and
// encode()/decode() (see encode.hpp) move records through a portable
// little-endian wire format with the schema embedded in each packet.
//
// FlexPath (src/flexpath) uses FFS records for all step metadata — variable
// names, global shapes, dimension labels, attributes — so stream metadata
// crosses component boundaries exactly the way the paper describes: typed
// and self-describing, not as shared in-process pointers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"

namespace sb::ffs {

/// Element kinds supported on the wire.
enum class Kind : std::uint8_t {
    Byte = 0,
    Int32 = 1,
    Int64 = 2,
    UInt64 = 3,
    Float32 = 4,
    Float64 = 5,
    String = 6,  // arrays of length-prefixed UTF-8 strings
};

/// Size in bytes of one element of a numeric kind; throws for String.
std::size_t kind_size(Kind k);

const char* kind_name(Kind k);

/// Maps C++ types to wire kinds.
template <typename T> struct kind_of;
template <> struct kind_of<std::byte> { static constexpr Kind value = Kind::Byte; };
template <> struct kind_of<std::int32_t> { static constexpr Kind value = Kind::Int32; };
template <> struct kind_of<std::int64_t> { static constexpr Kind value = Kind::Int64; };
template <> struct kind_of<std::uint64_t> { static constexpr Kind value = Kind::UInt64; };
template <> struct kind_of<float> { static constexpr Kind value = Kind::Float32; };
template <> struct kind_of<double> { static constexpr Kind value = Kind::Float64; };

/// One field of a record: a named, shaped, typed value.  An empty shape
/// denotes a scalar (exactly one element).
struct FieldDesc {
    std::string name;
    Kind kind = Kind::Byte;
    std::vector<std::uint64_t> shape;

    std::uint64_t element_count() const noexcept {
        std::uint64_t n = 1;
        for (auto d : shape) n *= d;
        return n;
    }

    bool operator==(const FieldDesc&) const = default;
};

/// The schema of a record type.
struct TypeDescriptor {
    std::string name;
    std::vector<FieldDesc> fields;

    const FieldDesc* find(const std::string& field_name) const noexcept;
    bool operator==(const TypeDescriptor&) const = default;
};

/// A value conforming to a TypeDescriptor.  Numeric field payloads are kept
/// as raw little-endian-compatible host bytes; string fields as vectors of
/// strings.
class Record {
public:
    Record() = default;
    explicit Record(TypeDescriptor desc);

    const TypeDescriptor& descriptor() const noexcept { return desc_; }

    // ---- field construction (also extends the descriptor) --------------
    /// Adds a numeric array field with the given shape.
    template <typename T>
    void add_array(const std::string& name, std::span<const T> data,
                   std::vector<std::uint64_t> shape) {
        static_assert(std::is_trivially_copyable_v<T>);
        FieldDesc fd{name, kind_of<T>::value, std::move(shape)};
        if (fd.element_count() != data.size()) {
            throw std::invalid_argument("add_array '" + name + "': shape/data size mismatch");
        }
        std::vector<std::byte> raw(data.size_bytes());
        util::copy_bytes(raw.data(), data.data(), data.size_bytes());
        add_field(std::move(fd), std::move(raw));
    }

    template <typename T>
    void add_scalar(const std::string& name, const T& v) {
        add_array<T>(name, std::span<const T>(&v, 1), {});
    }

    void add_strings(const std::string& name, std::vector<std::string> values);

    /// Adds a numeric field from raw bytes (size must be
    /// element_count(shape) * kind_size(kind)).
    void add_raw(const std::string& name, Kind kind, std::vector<std::uint64_t> shape,
                 std::vector<std::byte> bytes);

    /// Adds a numeric field that *borrows* its payload: the record stores
    /// only the span, so the caller's buffer must outlive every use of the
    /// record (encode/encode_segments on the publish hot path).  Same size
    /// contract as add_raw; encodes bit-identically to the owning form.
    void add_borrowed(const std::string& name, Kind kind,
                      std::vector<std::uint64_t> shape,
                      std::span<const std::byte> bytes);

    // ---- field access ----------------------------------------------------
    bool has(const std::string& name) const noexcept;

    template <typename T>
    std::vector<T> get_array(const std::string& name) const {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto& [fd, raw] = numeric_field(name, kind_of<T>::value);
        std::vector<T> out(raw.size() / sizeof(T));
        util::copy_bytes(out.data(), raw.data(), raw.size());
        (void)fd;
        return out;
    }

    template <typename T>
    T get_scalar(const std::string& name) const {
        auto v = get_array<T>(name);
        if (v.size() != 1) {
            throw std::runtime_error("get_scalar '" + name + "': field is not scalar");
        }
        return v[0];
    }

    const std::vector<std::string>& get_strings(const std::string& name) const;

    /// Shape of a field, as declared.
    const std::vector<std::uint64_t>& shape_of(const std::string& name) const;

    /// Raw payload bytes of a numeric field (no copy).
    std::span<const std::byte> raw_bytes(const std::string& name) const;

    /// Moves a numeric field's payload out of the record (the field stays
    /// declared but its payload is left empty).  Lets a consumer adopt a
    /// decoded payload without a second copy.  A borrowed field is copied
    /// (there is nothing to move).
    std::vector<std::byte> take_bytes(const std::string& name);

private:
    friend Record decode(std::span<const std::byte>);

    using Payload = std::variant<std::vector<std::byte>, std::vector<std::string>,
                                 std::span<const std::byte>>;

    void add_field(FieldDesc fd, Payload payload);
    std::size_t index_of(const std::string& name) const;
    std::pair<const FieldDesc&, std::span<const std::byte>>
    numeric_field(const std::string& name, Kind expected) const;

    TypeDescriptor desc_;
    std::vector<Payload> payloads_;
    std::map<std::string, std::size_t> by_name_;
};

}  // namespace sb::ffs
