#include "ffs/type.hpp"

namespace sb::ffs {

std::size_t kind_size(Kind k) {
    switch (k) {
        case Kind::Byte: return 1;
        case Kind::Int32: return 4;
        case Kind::Int64: return 8;
        case Kind::UInt64: return 8;
        case Kind::Float32: return 4;
        case Kind::Float64: return 8;
        case Kind::String: break;
    }
    throw std::invalid_argument("kind_size: not a fixed-size kind");
}

const char* kind_name(Kind k) {
    switch (k) {
        case Kind::Byte: return "byte";
        case Kind::Int32: return "int32";
        case Kind::Int64: return "int64";
        case Kind::UInt64: return "uint64";
        case Kind::Float32: return "float32";
        case Kind::Float64: return "float64";
        case Kind::String: return "string";
    }
    return "?";
}

const FieldDesc* TypeDescriptor::find(const std::string& field_name) const noexcept {
    for (const auto& f : fields) {
        if (f.name == field_name) return &f;
    }
    return nullptr;
}

Record::Record(TypeDescriptor desc) : desc_(std::move(desc)) {
    // Descriptor-first construction: payloads are added via add_* calls,
    // which must match the declared fields in order.  Simpler: clear the
    // field list and let add_* rebuild it, preserving only the type name.
    desc_.fields.clear();
}

void Record::add_raw(const std::string& name, Kind kind,
                     std::vector<std::uint64_t> shape, std::vector<std::byte> bytes) {
    FieldDesc fd{name, kind, std::move(shape)};
    if (fd.element_count() * kind_size(kind) != bytes.size()) {
        throw std::invalid_argument("add_raw '" + name + "': shape/bytes size mismatch");
    }
    add_field(std::move(fd), std::move(bytes));
}

void Record::add_borrowed(const std::string& name, Kind kind,
                          std::vector<std::uint64_t> shape,
                          std::span<const std::byte> bytes) {
    FieldDesc fd{name, kind, std::move(shape)};
    if (fd.element_count() * kind_size(kind) != bytes.size()) {
        throw std::invalid_argument("add_borrowed '" + name + "': shape/bytes size mismatch");
    }
    add_field(std::move(fd), bytes);
}

void Record::add_strings(const std::string& name, std::vector<std::string> values) {
    FieldDesc fd{name, Kind::String, {static_cast<std::uint64_t>(values.size())}};
    add_field(std::move(fd), std::move(values));
}

bool Record::has(const std::string& name) const noexcept {
    return by_name_.count(name) != 0;
}

const std::vector<std::string>& Record::get_strings(const std::string& name) const {
    const std::size_t i = index_of(name);
    if (desc_.fields[i].kind != Kind::String) {
        throw std::runtime_error("get_strings '" + name + "': field is not a string field");
    }
    return std::get<std::vector<std::string>>(payloads_[i]);
}

const std::vector<std::uint64_t>& Record::shape_of(const std::string& name) const {
    return desc_.fields[index_of(name)].shape;
}

std::span<const std::byte> Record::raw_bytes(const std::string& name) const {
    const std::size_t i = index_of(name);
    if (desc_.fields[i].kind == Kind::String) {
        throw std::runtime_error("raw_bytes '" + name + "': string field has no raw bytes");
    }
    if (const auto* borrowed = std::get_if<std::span<const std::byte>>(&payloads_[i])) {
        return *borrowed;
    }
    return std::get<std::vector<std::byte>>(payloads_[i]);
}

std::vector<std::byte> Record::take_bytes(const std::string& name) {
    const std::size_t i = index_of(name);
    if (desc_.fields[i].kind == Kind::String) {
        throw std::runtime_error("take_bytes '" + name + "': string field has no raw bytes");
    }
    if (const auto* borrowed = std::get_if<std::span<const std::byte>>(&payloads_[i])) {
        return {borrowed->begin(), borrowed->end()};
    }
    return std::move(std::get<std::vector<std::byte>>(payloads_[i]));
}

void Record::add_field(FieldDesc fd, Payload payload) {
    if (by_name_.count(fd.name)) {
        throw std::invalid_argument("duplicate field '" + fd.name + "'");
    }
    by_name_[fd.name] = desc_.fields.size();
    desc_.fields.push_back(std::move(fd));
    payloads_.push_back(std::move(payload));
}

std::size_t Record::index_of(const std::string& name) const {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) {
        throw std::out_of_range("record '" + desc_.name + "' has no field '" + name + "'");
    }
    return it->second;
}

std::pair<const FieldDesc&, std::span<const std::byte>>
Record::numeric_field(const std::string& name, Kind expected) const {
    const std::size_t i = index_of(name);
    const FieldDesc& fd = desc_.fields[i];
    if (fd.kind != expected) {
        throw std::runtime_error("field '" + name + "' is " + kind_name(fd.kind) +
                                 ", not " + kind_name(expected));
    }
    if (const auto* borrowed = std::get_if<std::span<const std::byte>>(&payloads_[i])) {
        return {fd, *borrowed};
    }
    return {fd, std::get<std::vector<std::byte>>(payloads_[i])};
}

}  // namespace sb::ffs
