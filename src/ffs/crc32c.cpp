#include "ffs/crc32c.hpp"

#include <array>

namespace sb::ffs {

namespace {

// Reflected CRC32C polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
    // t[0] is the classic byte-at-a-time table; t[1..7] extend it so eight
    // input bytes fold in one round (slicing-by-8).
    std::array<std::array<std::uint32_t, 256>, 8> t{};

    constexpr Tables() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
            }
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = t[0][i];
            for (std::size_t s = 1; s < 8; ++s) {
                c = t[0][c & 0xFFu] ^ (c >> 8);
                t[s][i] = c;
            }
        }
    }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::byte> data) noexcept {
    const auto& t = kTables.t;
    const std::byte* p = data.data();
    std::size_t n = data.size();
    std::uint32_t c = state;
    while (n >= 8) {
        // Little-endian fold of (crc ^ first four bytes) + next four bytes.
        const std::uint32_t lo =
            c ^ (std::uint32_t(std::to_integer<std::uint8_t>(p[0])) |
                 std::uint32_t(std::to_integer<std::uint8_t>(p[1])) << 8 |
                 std::uint32_t(std::to_integer<std::uint8_t>(p[2])) << 16 |
                 std::uint32_t(std::to_integer<std::uint8_t>(p[3])) << 24);
        const std::uint32_t hi =
            std::uint32_t(std::to_integer<std::uint8_t>(p[4])) |
            std::uint32_t(std::to_integer<std::uint8_t>(p[5])) << 8 |
            std::uint32_t(std::to_integer<std::uint8_t>(p[6])) << 16 |
            std::uint32_t(std::to_integer<std::uint8_t>(p[7])) << 24;
        c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
            t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n--) {
        c = t[0][(c ^ std::to_integer<std::uint8_t>(*p++)) & 0xFFu] ^ (c >> 8);
    }
    return c;
}

}  // namespace sb::ffs
