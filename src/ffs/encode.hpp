// Wire encoding of FFS records.
//
// Format (all integers little-endian):
//   magic  "FFS1"
//   name   : u32 length + bytes
//   nfields: u32
//   field  : name (u32+bytes), kind u8, ndim u8, dims u64 x ndim, payload
//     numeric payload: element_count * kind_size raw bytes
//     string  payload: element_count x (u32 length + bytes)
//
// The schema travels with every packet, so a decoder needs no out-of-band
// type registry — the property that makes SmartBlock components generic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ffs/type.hpp"

namespace sb::ffs {

using Bytes = std::vector<std::byte>;

/// Serializes a record with its embedded schema.
Bytes encode(const Record& rec);

/// Reconstructs a record (schema and values) from the wire.
/// Throws std::runtime_error on truncated or corrupt input.
Record decode(std::span<const std::byte> wire);

// ---- low-level byte stream helpers (exposed for tests/benches) ----------

class ByteWriter {
public:
    /// Capacity hint: grows the buffer's capacity to `total` bytes so a
    /// caller that knows the final packet size (encode does) pays one
    /// allocation instead of a doubling cascade.
    void reserve(std::size_t total) { buf_.reserve(total); }

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void str(const std::string& s);
    void bytes(std::span<const std::byte> b);

    Bytes take() { return std::move(buf_); }
    std::size_t size() const noexcept { return buf_.size(); }

private:
    Bytes buf_;
};

class ByteReader {
public:
    explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::string str();
    Bytes bytes(std::size_t n);

    /// The next `n` bytes without copying; the span aliases the wire buffer
    /// handed to the constructor and is valid for that buffer's lifetime.
    std::span<const std::byte> view(std::size_t n);

    std::size_t remaining() const noexcept { return data_.size() - pos_; }
    bool done() const noexcept { return pos_ == data_.size(); }

private:
    void need(std::size_t n) const;
    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

}  // namespace sb::ffs
