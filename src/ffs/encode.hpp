// Wire encoding of FFS records.
//
// Format (all integers little-endian):
//   magic  "FFS1"
//   name   : u32 length + bytes
//   nfields: u32
//   field  : name (u32+bytes), kind u8, ndim u8, dims u64 x ndim, payload
//     numeric payload: element_count * kind_size raw bytes
//     string  payload: element_count x (u32 length + bytes)
//
// The schema travels with every packet, so a decoder needs no out-of-band
// type registry — the property that makes SmartBlock components generic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ffs/type.hpp"

namespace sb::ffs {

using Bytes = std::vector<std::byte>;

/// Exact wire size of a record — what encode() produces.  Callers that
/// stage packets in pooled buffers size them with this.
std::size_t encoded_size(const Record& rec);

/// Serializes a record with its embedded schema.
Bytes encode(const Record& rec);

/// encode() into a caller-provided buffer: `out` is cleared and refilled,
/// reusing its capacity.  The packet-recycling form of encode for hot loops
/// (spool, future TCP backend).
void encode_into(const Record& rec, Bytes& out);

/// Scatter-gather encoding: a small header buffer plus an iovec-style
/// segment list.  Large numeric payloads are *not* copied — their segments
/// alias the record's payload storage (which must outlive the result), and
/// header segments alias `header`.  Concatenating `segments` in order
/// yields exactly encode(rec); `total` is that concatenated size.  This is
/// how the publish path serializes a step without ever memcpy'ing the bulk
/// data.
struct EncodedSegments {
    Bytes header;
    std::vector<std::span<const std::byte>> segments;
    std::size_t total = 0;
};
EncodedSegments encode_segments(const Record& rec);

/// Reconstructs a record (schema and values) from the wire.
/// Throws std::runtime_error on truncated or corrupt input.
Record decode(std::span<const std::byte> wire);

// ---- low-level byte stream helpers (exposed for tests/benches) ----------

class ByteWriter {
public:
    ByteWriter() = default;
    /// Adopts `storage` as the output buffer: cleared, capacity kept.  With
    /// a recycled packet buffer, a steady-state encode allocates nothing.
    explicit ByteWriter(Bytes storage) : buf_(std::move(storage)) { buf_.clear(); }

    /// Capacity hint: grows the buffer's capacity to `total` bytes so a
    /// caller that knows the final packet size (encode does) pays one
    /// allocation instead of a doubling cascade.
    void reserve(std::size_t total) { buf_.reserve(total); }

    // The scalar emitters are noexcept by contract: encode paths reserve
    // the exact packet size first, so these appends never reallocate (and
    // allocation failure is terminal anyway).
    void u8(std::uint8_t v) noexcept;
    void u32(std::uint32_t v) noexcept;
    void u64(std::uint64_t v) noexcept;
    void str(std::string_view s);
    void bytes(std::span<const std::byte> b);

    Bytes take() { return std::move(buf_); }
    std::size_t size() const noexcept { return buf_.size(); }

private:
    Bytes buf_;
};

class ByteReader {
public:
    explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::string str();
    Bytes bytes(std::size_t n);

    /// The next `n` bytes without copying; the span aliases the wire buffer
    /// handed to the constructor and is valid for that buffer's lifetime.
    std::span<const std::byte> view(std::size_t n);

    std::size_t remaining() const noexcept { return data_.size() - pos_; }
    bool done() const noexcept { return pos_ == data_.size(); }

private:
    void need(std::size_t n) const;
    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

}  // namespace sb::ffs
