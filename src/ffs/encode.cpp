#include "ffs/encode.hpp"

#include <cstring>
#include <stdexcept>

#include "fault/fault.hpp"

namespace sb::ffs {

namespace {
constexpr std::uint32_t kMagic = 0x31534646;  // "FFS1" little-endian
}

void ByteWriter::u8(std::uint8_t v) noexcept {
    buf_.push_back(static_cast<std::byte>(v));
}

void ByteWriter::u32(std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
}

void ByteWriter::bytes(std::span<const std::byte> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteReader::need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw std::runtime_error("ffs: truncated packet");
}

std::uint8_t ByteReader::u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
}

std::uint64_t ByteReader::u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
}

std::string ByteReader::str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
}

Bytes ByteReader::bytes(std::size_t n) {
    const auto v = view(n);
    return Bytes(v.begin(), v.end());
}

std::span<const std::byte> ByteReader::view(std::size_t n) {
    need(n);
    const auto v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
}

/// Must mirror the format written by write_record below.
std::size_t encoded_size(const Record& rec) {
    std::size_t n = 4;  // magic
    n += 4 + rec.descriptor().name.size();
    n += 4;  // nfields
    for (const FieldDesc& fd : rec.descriptor().fields) {
        n += 4 + fd.name.size();
        n += 1 + 1 + 8 * fd.shape.size();
        if (fd.kind == Kind::String) {
            for (const std::string& s : rec.get_strings(fd.name)) n += 4 + s.size();
        } else {
            n += rec.raw_bytes(fd.name).size();
        }
    }
    return n;
}

namespace {

/// Writes everything up to (but not including) a field's payload.
void write_field_header(ByteWriter& w, const FieldDesc& fd) {
    w.str(fd.name);
    w.u8(static_cast<std::uint8_t>(fd.kind));
    w.u8(static_cast<std::uint8_t>(fd.shape.size()));
    for (auto d : fd.shape) w.u64(d);
}

void write_record(ByteWriter& w, const Record& rec) {
    w.u32(kMagic);
    w.str(rec.descriptor().name);
    w.u32(static_cast<std::uint32_t>(rec.descriptor().fields.size()));
    for (const FieldDesc& fd : rec.descriptor().fields) {
        write_field_header(w, fd);
        if (fd.kind == Kind::String) {
            for (const std::string& s : rec.get_strings(fd.name)) w.str(s);
        } else {
            w.bytes(rec.raw_bytes(fd.name));
        }
    }
}

}  // namespace

Bytes encode(const Record& rec) {
    Bytes out;
    encode_into(rec, out);
    return out;
}

void encode_into(const Record& rec, Bytes& out) {
    ByteWriter w(std::move(out));
    w.reserve(encoded_size(rec));
    write_record(w, rec);
    out = w.take();
}

EncodedSegments encode_segments(const Record& rec) {
    // Payloads below the threshold are cheaper to memcpy into the header
    // than to carry as separate segments through a delivery loop.
    constexpr std::size_t kSpliceThreshold = 64;

    ByteWriter w;
    // Offsets into the (still growing) header where a spliced payload
    // belongs; spans are resolved against the final buffer after take().
    std::vector<std::pair<std::size_t, std::span<const std::byte>>> cuts;
    w.u32(kMagic);
    w.str(rec.descriptor().name);
    w.u32(static_cast<std::uint32_t>(rec.descriptor().fields.size()));
    for (const FieldDesc& fd : rec.descriptor().fields) {
        write_field_header(w, fd);
        if (fd.kind == Kind::String) {
            for (const std::string& s : rec.get_strings(fd.name)) w.str(s);
        } else {
            const auto payload = rec.raw_bytes(fd.name);
            if (payload.size() >= kSpliceThreshold) {
                cuts.emplace_back(w.size(), payload);
            } else {
                w.bytes(payload);
            }
        }
    }

    EncodedSegments out;
    out.header = w.take();
    out.segments.reserve(2 * cuts.size() + 1);
    const std::span<const std::byte> header{out.header};
    std::size_t pos = 0;
    for (const auto& [off, payload] : cuts) {
        if (off > pos) out.segments.push_back(header.subspan(pos, off - pos));
        out.segments.push_back(payload);
        pos = off;
    }
    if (pos < header.size()) out.segments.push_back(header.subspan(pos));
    for (const auto& seg : out.segments) out.total += seg.size();
    return out;
}

Record decode(std::span<const std::byte> wire) {
    fault::hit("ffs.decode");
    ByteReader r(wire);
    if (r.u32() != kMagic) throw std::runtime_error("ffs: bad magic");
    TypeDescriptor desc;
    desc.name = r.str();
    Record rec(desc);
    const std::uint32_t nfields = r.u32();
    for (std::uint32_t i = 0; i < nfields; ++i) {
        FieldDesc fd;
        fd.name = r.str();
        const std::uint8_t kind_raw = r.u8();
        if (kind_raw > static_cast<std::uint8_t>(Kind::String)) {
            throw std::runtime_error("ffs: unknown field kind");
        }
        fd.kind = static_cast<Kind>(kind_raw);
        const std::uint8_t ndim = r.u8();
        fd.shape.resize(ndim);
        for (auto& d : fd.shape) d = r.u64();

        if (fd.kind == Kind::String) {
            std::vector<std::string> vals(fd.element_count());
            for (auto& s : vals) s = r.str();
            if (fd.shape.size() != 1) {
                throw std::runtime_error("ffs: string fields must be rank-1");
            }
            rec.add_strings(fd.name, std::move(vals));
        } else {
            const std::size_t nbytes =
                static_cast<std::size_t>(fd.element_count()) * kind_size(fd.kind);
            Bytes payload = r.bytes(nbytes);
            rec.add_field(std::move(fd), std::move(payload));
        }
    }
    if (!r.done()) throw std::runtime_error("ffs: trailing bytes after record");
    return rec;
}

}  // namespace sb::ffs
