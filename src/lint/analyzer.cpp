// The abstract interpreter behind sb::lint (see lint.hpp for the rule
// inventory and docs/LINT.md for the catalog with examples).
//
// Analysis runs in three layers, each feeding the next:
//   1. resolution — every launch entry is resolved through the component
//      registry into its Ports and Contract (argument errors become
//      diagnostics, never exceptions);
//   2. wiring — the core/graph.hpp rules, re-emitted with stable rule IDs,
//      launch-script line anchors, and fix-it hints (including a
//      nearest-stream-name suggestion for dangling inputs);
//   3. contracts — when the wiring is sound, the components' symbolic
//      contracts are interpreted in topological order: every stream carries
//      an abstract variable (array name, symbolic shape, element kind,
//      per-dimension header knowledge), readers check their requirements
//      against it, and opaque producers introduce rank variables that are
//      solved workflow-wide once all constraints are collected.
//
// Fusion-legality notes call the *actual* planner (core/fusion.hpp), and the
// config-safety rules audit the workflow-level knobs in Options — neither
// depends on the contract layer, so both still run on mis-wired graphs.
#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/contract.hpp"
#include "core/fusion.hpp"
#include "core/registry.hpp"
#include "lint/lint.hpp"
#include "util/argparse.hpp"

namespace sb::lint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

std::string describe(const core::LaunchEntry& e, std::size_t index) {
    return "#" + std::to_string(index + 1) + " " + e.component;
}

// ---------------------------------------------------------------- resolution

struct Node {
    core::LaunchEntry entry;
    core::Ports ports{{}, {}, false};
    core::Contract contract;
    bool registered = false;
    std::string arg_error;  // ports() rejected the arguments
};

std::vector<Node> resolve(const std::vector<core::LaunchEntry>& entries) {
    std::vector<Node> nodes;
    nodes.reserve(entries.size());
    for (const core::LaunchEntry& e : entries) {
        Node n;
        n.entry = e;
        std::unique_ptr<core::Component> c;
        try {
            c = core::make_component(e.component);
            n.registered = true;
        } catch (const std::exception&) {
            nodes.push_back(std::move(n));
            continue;
        }
        const util::ArgList args(e.args);
        try {
            n.ports = c->ports(args);
        } catch (const util::ArgError& err) {
            n.ports = core::Ports{{}, {}, false};
            n.arg_error = err.what();
        }
        try {
            n.contract = c->contract(args);
        } catch (const std::exception&) {
            n.contract = core::Contract{};
        }
        nodes.push_back(std::move(n));
    }
    return nodes;
}

// -------------------------------------------------------------------- wiring

std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

/// "did you mean 'X'?" for a stream nobody writes.
std::string nearest_stream_hint(const std::string& wanted,
                                const std::map<std::string, std::vector<std::size_t>>& writers) {
    std::string best;
    std::size_t best_d = npos;
    for (const auto& [name, who] : writers) {
        const std::size_t d = edit_distance(wanted, name);
        if (d < best_d) {
            best_d = d;
            best = name;
        }
    }
    if (best.empty() || best_d > std::max<std::size_t>(2, wanted.size() / 3)) {
        return "add a component that writes '" + wanted +
               "', or fix the stream name";
    }
    return "did you mean '" + best + "'?";
}

/// The core/graph.hpp wiring rules with rule IDs, line anchors and hints.
/// `fail_fast_only` restricts to the four rules Workflow::run enforces.
void wiring_rules(const std::vector<Node>& nodes, bool fail_fast_only,
                  std::vector<Diagnostic>& out) {
    std::map<std::string, std::vector<std::size_t>> writers, readers;
    bool any_unknown = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].ports.known) {
            any_unknown = true;
            continue;
        }
        for (const auto& s : nodes[i].ports.outputs) writers[s].push_back(i);
        for (const auto& s : nodes[i].ports.inputs) readers[s].push_back(i);
    }

    if (!fail_fast_only) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!nodes[i].registered) {
                out.push_back(Diagnostic{
                    "graph-bad-arguments", Severity::Error, nodes[i].entry.line,
                    describe(nodes[i].entry, i),
                    "unknown component '" + nodes[i].entry.component + "'",
                    "run `smartblock_run --list` for the registered names"});
            } else if (!nodes[i].arg_error.empty()) {
                out.push_back(Diagnostic{"graph-bad-arguments", Severity::Error,
                                         nodes[i].entry.line,
                                         describe(nodes[i].entry, i),
                                         nodes[i].arg_error, ""});
            } else if (!nodes[i].ports.known) {
                out.push_back(Diagnostic{
                    "graph-opaque-ports", Severity::Note, nodes[i].entry.line,
                    describe(nodes[i].entry, i),
                    "component declares no ports; wiring and contract checks "
                    "treat it as opaque (dangling-stream detection is "
                    "suppressed for the whole workflow)",
                    "override Component::ports (and contract) so the "
                    "analyzer can see through it"});
            }
        }
    }

    for (const auto& [stream, who] : writers) {
        if (who.size() <= 1) continue;
        std::string names;
        for (const auto i : who) {
            names += (names.empty() ? "" : ", ") + describe(nodes[i].entry, i);
        }
        out.push_back(Diagnostic{
            "graph-multiple-writers", Severity::Error, nodes[who[1]].entry.line,
            describe(nodes[who[1]].entry, who[1]),
            "stream '" + stream + "' written by " + names,
            "streams support exactly one writer group; rename one output"});
    }
    for (const auto& [stream, who] : readers) {
        if (who.size() > 1) {
            std::string names;
            for (const auto i : who) {
                names += (names.empty() ? "" : ", ") + describe(nodes[i].entry, i);
            }
            out.push_back(Diagnostic{
                "graph-multiple-readers", Severity::Error,
                nodes[who[1]].entry.line, describe(nodes[who[1]].entry, who[1]),
                "stream '" + stream + "' read by " + names,
                "streams support exactly one reader group; duplicate the "
                "stream with `fork` to fan out"});
        }
        if (!writers.count(stream) && !any_unknown) {
            out.push_back(Diagnostic{
                "graph-dangling-input", Severity::Error, nodes[who[0]].entry.line,
                describe(nodes[who[0]].entry, who[0]),
                "stream '" + stream + "' is read by " +
                    describe(nodes[who[0]].entry, who[0]) +
                    " but nothing writes it (the reader would block forever)",
                nearest_stream_hint(stream, writers)});
        }
    }
    if (!fail_fast_only) {
        for (const auto& [stream, who] : writers) {
            if (readers.count(stream) || any_unknown) continue;
            out.push_back(Diagnostic{
                "graph-unconsumed-output", Severity::Warning,
                nodes[who[0]].entry.line, describe(nodes[who[0]].entry, who[0]),
                "stream '" + stream + "' is written by " +
                    describe(nodes[who[0]].entry, who[0]) +
                    " but nothing reads it (the writer stalls once its "
                    "buffer fills)",
                "add a reader or drop the output"});
        }
    }

    // Cycle detection (iterative DFS mirroring core/graph.cpp).
    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (const auto& [stream, rs] : readers) {
        const auto wit = writers.find(stream);
        if (wit == writers.end()) continue;
        for (const auto w : wit->second) {
            for (const auto r : rs) adj[w].push_back(r);
        }
    }
    std::vector<int> state(nodes.size(), 0);  // 0=unvisited 1=in-stack 2=done
    std::vector<std::size_t> stack;
    bool found_cycle = false;
    const std::function<void(std::size_t)> dfs = [&](std::size_t v) {
        state[v] = 1;
        stack.push_back(v);
        for (const std::size_t w : adj[v]) {
            if (found_cycle) return;
            if (state[w] == 1) {
                std::string path;
                for (auto it = std::find(stack.begin(), stack.end(), w);
                     it != stack.end(); ++it) {
                    path += describe(nodes[*it].entry, *it) + " -> ";
                }
                out.push_back(Diagnostic{
                    "graph-cycle", Severity::Error, nodes[w].entry.line,
                    describe(nodes[w].entry, w),
                    "dependency cycle: " + path + describe(nodes[w].entry, w),
                    "in situ pipelines must be DAGs; break the loop"});
                found_cycle = true;
                return;
            }
            if (state[w] == 0) dfs(w);
        }
        stack.pop_back();
        state[v] = 2;
    };
    for (std::size_t v = 0; v < nodes.size() && !found_cycle; ++v) {
        if (state[v] == 0) dfs(v);
    }
}

// ------------------------------------------------------------ abstract state

/// What the analyzer knows about one dimension's header attribute.
struct AbsHeader {
    bool names_known = false;
    std::vector<std::string> names;
};

/// The abstract value flowing along one stream: everything the analyzer
/// knows about the array its writer publishes per step.
struct AbsVar {
    bool valid = false;        // a known writer output backs this stream
    bool array_known = false;  // false when the producer's contract is opaque
    std::string array;

    bool rank_known = false;
    std::vector<core::SymDim> dims;  // rank_known
    int rank_var = -1;               // !rank_known: rank == vars[rank_var]+delta
    int rank_delta = 0;

    enum class K { Float64, Other, Unknown };
    K kind = K::Unknown;

    /// True when the full header set is known (a source or a fully tracked
    /// transform chain) — only then can a *missing* header be reported.
    bool headers_complete = false;
    std::map<std::size_t, AbsHeader> headers;
    /// Dimensions whose header was provably dropped upstream, with the
    /// provenance text naming the dropper.
    std::map<std::size_t, std::string> dropped;

    std::size_t producer = npos;
    std::size_t producer_line = 0;
};

std::string shape_to_string(const std::vector<core::SymDim>& dims) {
    std::string s = "[";
    for (std::size_t i = 0; i < dims.size(); ++i) {
        s += (i ? ", " : "") + dims[i].to_string();
    }
    return s + "]";
}

/// A solved-later rank requirement on an opaque producer's rank variable.
struct RankConstraint {
    int var = -1;
    long long value = 0;  // exact: rank var == value; min: rank var >= value
    bool exact = false;
    std::string site;  // "#3 histogram (input-array must be 1-D)"
    std::size_t line = 0;
};

/// Pins an unknown-rank variable to a concrete rank: opaque dimensions whose
/// tags are a pure function of (rank var, delta, index), so two branches of
/// one stream materialized at the same rank stay provably equal.
void materialize(AbsVar& v, std::size_t rank) {
    v.rank_known = true;
    v.dims.clear();
    for (std::size_t i = 0; i < rank; ++i) {
        v.dims.push_back(core::SymDim::opaque(
            "r" + std::to_string(v.rank_var) +
            (v.rank_delta ? ("+" + std::to_string(v.rank_delta)) : "") + "[" +
            std::to_string(i) + "]"));
    }
}

// -------------------------------------------------------- the interpretation

class Interpreter {
public:
    Interpreter(const std::vector<Node>& nodes, std::vector<Diagnostic>& out)
        : nodes_(nodes), out_(out) {}

    void run() {
        for (const std::size_t i : topo_order()) visit(i);
        solve_ranks();
    }

private:
    const std::vector<Node>& nodes_;
    std::vector<Diagnostic>& out_;
    std::map<std::string, AbsVar> streams_;  // stream name -> abstract value
    int next_rank_var_ = 0;
    std::vector<RankConstraint> constraints_;

    /// Writer-before-reader order (the wiring layer already rejected
    /// cycles, multi-writers and multi-readers before we run).
    std::vector<std::size_t> topo_order() const {
        std::map<std::string, std::size_t> writer;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (!nodes_[i].ports.known) continue;
            for (const auto& s : nodes_[i].ports.outputs) writer[s] = i;
        }
        std::vector<std::size_t> indeg(nodes_.size(), 0);
        std::vector<std::vector<std::size_t>> adj(nodes_.size());
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (!nodes_[i].ports.known) continue;
            for (const auto& s : nodes_[i].ports.inputs) {
                const auto wit = writer.find(s);
                if (wit == writer.end() || wit->second == i) continue;
                adj[wit->second].push_back(i);
                ++indeg[i];
            }
        }
        std::vector<std::size_t> order, queue;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (indeg[i] == 0) queue.push_back(i);
        }
        for (std::size_t q = 0; q < queue.size(); ++q) {
            const std::size_t v = queue[q];
            order.push_back(v);
            for (const std::size_t w : adj[v]) {
                if (--indeg[w] == 0) queue.push_back(w);
            }
        }
        return order;  // == nodes_.size() entries: the graph is a DAG here
    }

    void diag(const std::string& rule, Severity sev, std::size_t i,
              const std::string& message, const std::string& hint) {
        out_.push_back(Diagnostic{rule, sev, nodes_[i].entry.line,
                                  describe(nodes_[i].entry, i), message, hint});
    }

    void visit(std::size_t i) {
        const Node& n = nodes_[i];
        const core::Contract& c = n.contract;

        for (const std::string& msg : c.param_errors) {
            diag("shape-bad-param", Severity::Error, i, msg,
                 "this argument combination fails at the first step; fix it "
                 "before launch");
        }

        if (!c.known) {
            // Opaque component: its outputs exist (per ports) but carry no
            // static knowledge — fresh rank variables downstream.
            for (const std::string& s : n.ports.outputs) {
                AbsVar v;
                v.valid = true;
                v.rank_var = next_rank_var_++;
                v.producer = i;
                v.producer_line = n.entry.line;
                streams_[s] = std::move(v);
            }
            return;
        }

        // Check every declared input against its stream's abstract value;
        // keep the (possibly rank-materialized) copies for the transforms.
        std::vector<std::optional<AbsVar>> in_vars;
        for (const core::InputContract& in : c.inputs) {
            const auto it = streams_.find(in.stream);
            if (it == streams_.end() || !it->second.valid) {
                // Dangling (suppressed by an opaque node) — nothing to check.
                in_vars.emplace_back(std::nullopt);
                continue;
            }
            AbsVar v = it->second;
            check_input(i, in, v);
            in_vars.emplace_back(std::move(v));
        }

        if (c.inputs_equal && in_vars.size() >= 2 && in_vars[0] && in_vars[1]) {
            check_inputs_equal(i, c, *in_vars[0], *in_vars[1]);
        }

        const AbsVar* base =
            (!in_vars.empty() && in_vars[0]) ? &*in_vars[0] : nullptr;
        for (const core::OutputContract& out : c.outputs) {
            streams_[out.stream] = apply_output(i, out, base);
        }
    }

    void check_input(std::size_t i, const core::InputContract& in, AbsVar& v) {
        const std::string writer =
            v.producer == npos ? "its writer"
                               : describe(nodes_[v.producer].entry, v.producer);

        if (v.array_known && v.array != in.array) {
            diag("shape-array-mismatch", Severity::Error, i,
                 "reads array '" + in.array + "' from stream '" + in.stream +
                     "', but " + writer + " writes array '" + v.array + "'",
                 "use the writer's array name '" + v.array + "'");
            // The declared array does not exist on the stream; rank/kind/
            // header checks against the writer's array would be noise.
            return;
        }

        // Effective minimum rank: the declared floor, every dimension-index
        // parameter, and every header requirement each imply rank > index.
        std::size_t eff_min = in.min_rank;
        for (const auto& [name, idx] : in.dim_params) {
            eff_min = std::max(eff_min, idx + 1);
        }
        for (const auto& [d, names] : in.need_headers) {
            eff_min = std::max(eff_min, d + 1);
        }

        if (!v.rank_known) {
            const std::string site =
                describe(nodes_[i].entry, i) + " reading stream '" + in.stream +
                "'";
            if (in.exact_rank) {
                constraints_.push_back(RankConstraint{
                    v.rank_var,
                    static_cast<long long>(*in.exact_rank) - v.rank_delta, true,
                    site + " (needs rank " + std::to_string(*in.exact_rank) + ")",
                    nodes_[i].entry.line});
                materialize(v, *in.exact_rank);
            } else if (eff_min > 0) {
                constraints_.push_back(RankConstraint{
                    v.rank_var, static_cast<long long>(eff_min) - v.rank_delta,
                    false,
                    site + " (needs rank >= " + std::to_string(eff_min) + ")",
                    nodes_[i].entry.line});
                return;  // rank still open: nothing further to check
            } else {
                return;
            }
        } else {
            const std::string shape = shape_to_string(v.dims);
            if (in.exact_rank && v.dims.size() != *in.exact_rank) {
                diag("shape-rank-mismatch", Severity::Error, i,
                     "needs a " + std::to_string(*in.exact_rank) +
                         "-D array on stream '" + in.stream + "', but " +
                         writer + " writes '" + v.array + "' with shape " +
                         shape,
                     "insert a rank-changing stage (reduce, magnitude, "
                     "dim-reduce) or fix the wiring");
                return;
            }
            // Dimension-index parameters first: "dimension-index=3 is out
            // of range" names the actual mistake, where the generic
            // min-rank message would only restate its consequence.
            for (const auto& [name, idx] : in.dim_params) {
                if (idx >= v.dims.size()) {
                    diag("shape-dim-out-of-range", Severity::Error, i,
                         "parameter " + name + "=" + std::to_string(idx) +
                             " is out of range for '" + v.array + "' with shape " +
                             shape + " (valid: 0.." +
                             std::to_string(v.dims.size() - 1) + ")",
                         "pick a dimension index below the array's rank");
                    return;
                }
            }
            if (v.dims.size() < eff_min) {
                diag("shape-rank-mismatch", Severity::Error, i,
                     "needs at least a " + std::to_string(eff_min) +
                         "-D array on stream '" + in.stream + "', but " +
                         writer + " writes '" + v.array + "' with shape " +
                         shape,
                     "");
                return;
            }
        }

        if (in.needs_float64 && v.kind == AbsVar::K::Other) {
            diag("shape-kind-mismatch", Severity::Error, i,
                 "needs float64 elements on stream '" + in.stream + "', but " +
                     writer + " writes a non-float64 array",
                 "");
        }

        for (const auto& [d, required] : in.need_headers) {
            if (d >= v.dims.size()) continue;  // dim_params already fired
            check_header(i, in, v, d, required, writer);
        }
    }

    void check_header(std::size_t i, const core::InputContract& in,
                      const AbsVar& v, std::size_t d,
                      const std::vector<std::string>& required,
                      const std::string& writer) {
        const std::string key = core::header_attr_key(in.array, d);
        if (const auto dit = v.dropped.find(d); dit != v.dropped.end()) {
            diag("attr-header-dropped", Severity::Error, i,
                 "needs header attribute '" + key + "', but " + dit->second,
                 "re-order the pipeline so this component runs before the "
                 "header is dropped");
            return;
        }
        const auto hit = v.headers.find(d);
        if (hit == v.headers.end()) {
            if (!v.headers_complete) return;  // unknown, not absent
            diag("attr-header-missing", Severity::Error, i,
                 "needs header attribute '" + key + "' naming dimension " +
                     std::to_string(d) + ", but " + writer +
                     " publishes no header for that dimension",
                 "only simulation sources and `select` attach headers; check "
                 "the dimension index");
            return;
        }
        if (required.empty() || !hit->second.names_known) return;
        for (const std::string& want : required) {
            if (std::find(hit->second.names.begin(), hit->second.names.end(),
                          want) != hit->second.names.end()) {
                continue;
            }
            std::string have;
            for (const auto& nm : hit->second.names) {
                have += (have.empty() ? "" : ", ") + nm;
            }
            diag("attr-header-name", Severity::Error, i,
                 "selects '" + want + "' from header '" + key +
                     "', but the header published by " + writer +
                     " only names [" + have + "]",
                 "pick from the published names");
        }
    }

    void check_inputs_equal(std::size_t i, const core::Contract& c,
                            const AbsVar& a, const AbsVar& b) {
        const core::InputContract& ia = c.inputs[0];
        const core::InputContract& ib = c.inputs[1];
        if (!a.rank_known || !b.rank_known) {
            // One side's rank is still open: pin it to the other's.
            if (a.rank_known != b.rank_known) {
                const AbsVar& open = a.rank_known ? b : a;
                const AbsVar& fixed = a.rank_known ? a : b;
                constraints_.push_back(RankConstraint{
                    open.rank_var,
                    static_cast<long long>(fixed.dims.size()) - open.rank_delta,
                    true,
                    describe(nodes_[i].entry, i) +
                        " (both inputs must agree in shape; the other is " +
                        std::to_string(fixed.dims.size()) + "-D)",
                    nodes_[i].entry.line});
            }
            return;
        }
        if (a.dims.size() != b.dims.size()) {
            diag("shape-validate-mismatch", Severity::Error, i,
                 "compares '" + ia.array + "' (" + shape_to_string(a.dims) +
                     ") against '" + ib.array + "' (" + shape_to_string(b.dims) +
                     "), but their ranks differ",
                 "both branches must apply the same shape transforms");
            return;
        }
        for (std::size_t d = 0; d < a.dims.size(); ++d) {
            if (a.dims[d].distinct(b.dims[d])) {
                diag("shape-validate-mismatch", Severity::Error, i,
                     "compares '" + ia.array + "' (" + shape_to_string(a.dims) +
                         ") against '" + ib.array + "' (" +
                         shape_to_string(b.dims) + "); dimension " +
                         std::to_string(d) + " provably differs (" +
                         a.dims[d].to_string() + " vs " + b.dims[d].to_string() +
                         ")",
                     "both branches must apply the same shape transforms");
                return;
            }
        }
        if ((a.kind == AbsVar::K::Float64 && b.kind == AbsVar::K::Other) ||
            (a.kind == AbsVar::K::Other && b.kind == AbsVar::K::Float64)) {
            diag("shape-validate-mismatch", Severity::Error, i,
                 "compares arrays of different element kinds", "");
        }
    }

    AbsVar apply_output(std::size_t i, const core::OutputContract& out,
                        const AbsVar* in) {
        using Shape = core::OutputContract::Shape;
        AbsVar v;
        v.valid = true;
        v.array_known = true;
        v.array = out.array;
        v.producer = i;
        v.producer_line = nodes_[i].entry.line;

        // Element kind.
        switch (out.kind) {
            case core::OutputContract::Kind::Float64:
                v.kind = AbsVar::K::Float64;
                break;
            case core::OutputContract::Kind::Preserve:
                v.kind = in ? in->kind : AbsVar::K::Unknown;
                break;
            case core::OutputContract::Kind::Unknown:
                v.kind = AbsVar::K::Unknown;
                break;
        }

        if (out.rule == Shape::Source) {
            v.rank_known = true;
            v.dims = out.shape;
            v.headers_complete = true;
            apply_set_headers(v, out);
            return v;
        }
        if (out.rule == Shape::Unknown || !in || (!in->rank_known && !in->valid)) {
            v.rank_var = next_rank_var_++;
            apply_set_headers(v, out);
            return v;
        }

        // Transform rules over the (checked) first input.
        const AbsVar& src = *in;
        v.headers_complete = src.headers_complete;
        if (!src.rank_known) {
            // Rank still symbolic: propagate the variable with an adjusted
            // delta; header knowledge cannot be indexed without a rank.
            v.rank_var = src.rank_var;
            v.rank_delta = src.rank_delta;
            v.headers_complete = false;
            switch (out.rule) {
                case Shape::Identity:
                case Shape::SetDim:
                case Shape::DivideDim:
                    break;
                case Shape::AbsorbDim:
                case Shape::DropDim:
                    v.rank_delta -= 1;
                    break;
                default:
                    // Collapse2Dto1D / Square1D / Filter1D / Permute inputs
                    // carry exact-rank requirements, so check_input always
                    // materialized them; defensive fallback only.
                    v.rank_var = next_rank_var_++;
                    v.rank_delta = 0;
                    break;
            }
            apply_set_headers(v, out);
            return v;
        }

        v.rank_known = true;
        v.dims = src.dims;
        v.headers = src.headers;
        v.dropped = src.dropped;
        const auto shift_maps_above = [&](std::size_t removed) {
            std::map<std::size_t, AbsHeader> h;
            for (auto& [d, hdr] : v.headers) {
                if (d == removed) continue;
                h[d > removed ? d - 1 : d] = std::move(hdr);
            }
            v.headers = std::move(h);
            std::map<std::size_t, std::string> dr;
            for (auto& [d, why] : v.dropped) {
                if (d == removed) continue;
                dr[d > removed ? d - 1 : d] = std::move(why);
            }
            v.dropped = std::move(dr);
        };

        switch (out.rule) {
            case Shape::Identity:
                break;
            case Shape::SetDim:
                if (out.dim < v.dims.size()) {
                    v.dims[out.dim] = core::SymDim::constant(out.count);
                    v.headers.erase(out.dim);
                    v.dropped.erase(out.dim);
                }
                break;
            case Shape::DivideDim:
                if (out.dim < v.dims.size() && out.count > 0) {
                    core::SymDim& d = v.dims[out.dim];
                    if (d.is_const()) {
                        d = core::SymDim::constant((d.value + out.count - 1) /
                                                   out.count);
                    } else {
                        d = core::SymDim::opaque(d.tag + "/" +
                                                 std::to_string(out.count));
                    }
                    if (auto hit = v.headers.find(out.dim);
                        hit != v.headers.end() && hit->second.names_known) {
                        std::vector<std::string> kept;
                        for (std::size_t k = 0; k < hit->second.names.size();
                             k += out.count) {
                            kept.push_back(hit->second.names[k]);
                        }
                        hit->second.names = std::move(kept);
                    }
                }
                break;
            case Shape::AbsorbDim: {
                const std::size_t r = out.dim, g = out.dim2;
                if (r >= v.dims.size() || g >= v.dims.size() || r == g) break;
                const core::SymDim removed = v.dims[r];
                core::SymDim& grown = v.dims[g];
                if (removed.is_const() && grown.is_const()) {
                    grown = core::SymDim::constant(grown.value * removed.value);
                } else {
                    grown = core::SymDim::opaque(grown.to_string() + "*" +
                                                 removed.to_string());
                }
                v.headers.erase(r);
                v.headers.erase(g);
                v.dropped.erase(r);
                v.dims.erase(v.dims.begin() + static_cast<std::ptrdiff_t>(r));
                shift_maps_above(r);
                const std::size_t g2 = g > r ? g - 1 : g;
                v.dropped[g2] = describe(nodes_[i].entry, i) +
                                " absorbed dimension " + std::to_string(r) +
                                " into " + std::to_string(g) +
                                " and dropped both headers";
                break;
            }
            case Shape::DropDim:
                if (out.dim >= v.dims.size()) break;
                v.dims.erase(v.dims.begin() +
                             static_cast<std::ptrdiff_t>(out.dim));
                v.headers.erase(out.dim);
                v.dropped.erase(out.dim);
                shift_maps_above(out.dim);
                break;
            case Shape::Permute: {
                if (out.perm.size() != v.dims.size()) break;
                std::vector<core::SymDim> nd(v.dims.size());
                std::map<std::size_t, AbsHeader> nh;
                std::map<std::size_t, std::string> ndr;
                for (std::size_t j = 0; j < out.perm.size(); ++j) {
                    nd[j] = v.dims[out.perm[j]];
                    if (auto hit = v.headers.find(out.perm[j]);
                        hit != v.headers.end()) {
                        nh[j] = hit->second;
                    }
                    if (auto dit = v.dropped.find(out.perm[j]);
                        dit != v.dropped.end()) {
                        ndr[j] = dit->second;
                    }
                }
                v.dims = std::move(nd);
                v.headers = std::move(nh);
                v.dropped = std::move(ndr);
                break;
            }
            case Shape::Collapse2Dto1D: {
                if (v.dims.size() != 2) break;
                v.dims = {v.dims[0]};
                v.headers.erase(1);
                v.dropped.erase(1);
                break;
            }
            case Shape::Square1D: {
                if (v.dims.size() != 1) break;
                v.dims = {v.dims[0], v.dims[0]};
                if (auto hit = v.headers.find(0); hit != v.headers.end()) {
                    v.headers[1] = hit->second;  // dim_map {0,0}
                }
                break;
            }
            case Shape::Filter1D: {
                if (v.dims.size() != 1) break;
                v.dims = {core::SymDim::opaque(describe(nodes_[i].entry, i) +
                                               " pass count")};
                if (auto hit = v.headers.find(0); hit != v.headers.end()) {
                    // The runtime copies the header verbatim, but its names
                    // no longer index the filtered extent — treat the names
                    // as unknown so downstream selects are not mis-blessed.
                    hit->second.names_known = false;
                    hit->second.names.clear();
                }
                break;
            }
            case Shape::Source:
            case Shape::Unknown:
                break;  // handled above
        }
        apply_set_headers(v, out);
        return v;
    }

    static void apply_set_headers(AbsVar& v, const core::OutputContract& out) {
        for (const auto& [d, names] : out.set_headers) {
            v.headers[d] = AbsHeader{true, names};
            v.dropped.erase(d);
        }
    }

    void solve_ranks() {
        std::map<int, std::vector<const RankConstraint*>> exact, mins;
        for (const RankConstraint& c : constraints_) {
            (c.exact ? exact : mins)[c.var].push_back(&c);
        }
        for (const auto& [var, pins] : exact) {
            const RankConstraint* first = pins[0];
            for (const RankConstraint* p : pins) {
                if (p->value != first->value) {
                    out_.push_back(Diagnostic{
                        "shape-rank-unsolvable", Severity::Error, p->line, "",
                        "no array rank satisfies the workflow: " + first->site +
                            " and " + p->site +
                            " constrain the same upstream stream to "
                            "incompatible ranks",
                        "the producer's rank is unknown statically; the two "
                        "readers cannot both be right — re-wire one of them"});
                    return;  // one unsolvable report is enough
                }
            }
            if (first->value < 1) {
                out_.push_back(Diagnostic{
                    "shape-rank-unsolvable", Severity::Error, first->line, "",
                    "no array rank satisfies the workflow: " + first->site +
                        " requires a non-positive upstream rank",
                    ""});
                return;
            }
            const auto mit = mins.find(var);
            if (mit == mins.end()) continue;
            for (const RankConstraint* m : mit->second) {
                if (first->value < m->value) {
                    out_.push_back(Diagnostic{
                        "shape-rank-unsolvable", Severity::Error, m->line, "",
                        "no array rank satisfies the workflow: " + first->site +
                            " pins the upstream rank to " +
                            std::to_string(first->value) + ", but " + m->site +
                            " needs at least " + std::to_string(m->value),
                        "re-wire one of the two readers"});
                    return;
                }
            }
        }
    }
};

// ----------------------------------------------------------- fusion & config

void fusion_notes(const std::vector<Node>& nodes, const Options& opts,
                  std::vector<Diagnostic>& out) {
    if (!core::fusion_enabled(opts.fusion)) return;
    std::vector<core::FusionCandidate> candidates;
    candidates.reserve(nodes.size());
    for (const Node& n : nodes) {
        candidates.push_back(core::FusionCandidate{
            n.entry.component, n.entry.nprocs, util::ArgList(n.entry.args),
            n.ports});
    }
    // Mirror the runner: a stream whose durable log already has segments on
    // disk stays materialized so its history replays, and the fusion notes
    // must not promise a chain the runner would refuse to fuse.
    std::set<std::string> barriers;
    if (durable::resolve_enabled(opts.stream.durable)) {
        for (const core::FusionCandidate& c : candidates) {
            for (const std::string& s : c.ports.outputs) {
                if (durable::history_exists(opts.stream.durable.dir, s)) {
                    barriers.insert(s);
                }
            }
        }
    }
    const core::FusionPlan plan = core::plan_fusion(candidates, barriers);
    for (const core::FusedChain& chain : plan.chains) {
        std::string stages;
        for (const core::FusedStage& s : chain.stages) {
            stages += (stages.empty() ? "" : " -> ") +
                      describe(nodes[s.instance].entry, s.instance);
        }
        out.push_back(Diagnostic{
            "fusion-chain", Severity::Note,
            nodes[chain.head().instance].entry.line,
            describe(nodes[chain.head().instance].entry, chain.head().instance),
            "fuses into one unit (" + std::to_string(chain.stages.size()) +
                " stages): " + stages,
            "set SB_FUSE=off to run each stage as its own instance"});
    }
    for (const std::string& note : plan.notes) {
        out.push_back(Diagnostic{"fusion-boundary", Severity::Note, 0, "",
                                 note, ""});
    }
}

void config_rules(const std::vector<Node>& nodes, const Options& opts,
                  std::vector<Diagnostic>& out) {
    const flexpath::StreamOptions& s = opts.stream;

    if (opts.restart.mode == core::RestartPolicy::Mode::OnFailure &&
        s.retain_steps == 0 && s.spool_dir.empty() &&
        s.on_data_loss != flexpath::OnDataLoss::Fail) {
        out.push_back(Diagnostic{
            "config-replay-impossible", Severity::Warning, 0, "",
            std::string("RestartPolicy::on_failure with retain_steps=0, no "
                        "spool_dir, and on_data_loss=") +
                (s.on_data_loss == flexpath::OnDataLoss::Skip ? "skip"
                                                              : "zero-fill") +
                ": a restarted component has nothing to replay — dropped "
                "steps are silently lost (or zero-filled) across every "
                "restart",
            "set retain_steps > 0, configure a spool_dir, or keep "
            "on_data_loss=fail so the writer blocks instead of dropping"});
    }

    if (opts.restart.mode == core::RestartPolicy::Mode::OnFailure &&
        (s.durable.dir.empty() || s.durable.mode == durable::Mode::Off) &&
        s.spool_dir.empty() && s.on_data_loss == flexpath::OnDataLoss::Fail) {
        out.push_back(Diagnostic{
            "config-durable-volatile", Severity::Warning, 0, "",
            "RestartPolicy::on_failure with no durable log (and no spool "
            "dir): retained steps live only in process memory, so a restart "
            "survives a component failure but a *process* crash loses every "
            "buffered step — and on_data_loss=fail means the relaunched "
            "workflow starts over instead of resuming",
            "configure durable.dir (smartblock_run --durable=<dir>) so "
            "published steps land in a crash-consistent log the relaunch "
            "recovers from"});
    }

    if (s.on_data_loss == flexpath::OnDataLoss::ZeroFill) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!nodes[i].contract.known || !nodes[i].contract.inputs_equal) {
                continue;
            }
            out.push_back(Diagnostic{
                "config-zerofill-validate", Severity::Warning,
                nodes[i].entry.line, describe(nodes[i].entry, i),
                "on_data_loss=zero-fill feeds a comparison component: a "
                "zero-filled step compares as a (false) mismatch instead of "
                "being skipped",
                "use on_data_loss=skip for validation pipelines, or check "
                "step_lossy in the consumer"});
        }
    }

    const double liveness_ms = flexpath::resolve_liveness_seconds(s) * 1000.0;
    if (liveness_ms > 0.0) {
        for (const fault::FaultSpec& f : opts.faults) {
            if (f.action != fault::Action::Delay || f.delay_ms < liveness_ms) {
                continue;
            }
            out.push_back(Diagnostic{
                "config-liveness-fault-delay", Severity::Warning, 0, "",
                "injected delay at '" + f.point + "' (" +
                    std::to_string(static_cast<long long>(f.delay_ms)) +
                    " ms) meets or exceeds the liveness timeout (" +
                    std::to_string(static_cast<long long>(liveness_ms)) +
                    " ms): the delayed peer will be declared dead "
                    "(PeerLivenessError) rather than slow",
                "raise liveness_ms above the injected delay, or shorten the "
                "delay"});
        }
    }
}

// ------------------------------------------------------------- finalization

int severity_rank(Severity s) {
    switch (s) {
        case Severity::Error: return 0;
        case Severity::Warning: return 1;
        case Severity::Note: return 2;
    }
    return 3;
}

Result finalize(std::vector<Diagnostic> diags, const std::set<std::string>& allow) {
    if (!allow.empty()) {
        diags.erase(std::remove_if(diags.begin(), diags.end(),
                                   [&](const Diagnostic& d) {
                                       return allow.count(d.rule) != 0;
                                   }),
                    diags.end());
    }
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         if (severity_rank(a.severity) != severity_rank(b.severity)) {
                             return severity_rank(a.severity) < severity_rank(b.severity);
                         }
                         return a.line < b.line;
                     });
    Result r;
    for (const Diagnostic& d : diags) {
        switch (d.severity) {
            case Severity::Error: ++r.errors; break;
            case Severity::Warning: ++r.warnings; break;
            case Severity::Note: ++r.notes; break;
        }
    }
    r.diagnostics = std::move(diags);
    return r;
}

// --------------------------------------------------- lint-config directives

/// Applies one `# lint-config:` token ("retain-steps=0"); returns an error
/// message or "".
std::string apply_directive(const std::string& tok, Options& opts) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) return "expected key=value, got '" + tok + "'";
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    try {
        if (key == "retain-steps") {
            opts.stream.retain_steps = std::stoull(val);
        } else if (key == "read-ahead") {
            opts.stream.read_ahead =
                (val == "off" || val == "0" || val == "false") ? 1 : std::stoull(val);
        } else if (key == "queue-capacity") {
            opts.stream.queue_capacity = std::stoull(val);
        } else if (key == "spool-dir") {
            opts.stream.spool_dir = val;
        } else if (key == "durable-dir") {
            opts.stream.durable.dir = val;
        } else if (key == "durable") {
            if (val == "auto") {
                opts.stream.durable.mode = durable::Mode::Auto;
            } else if (val == "on") {
                opts.stream.durable.mode = durable::Mode::On;
            } else if (val == "off") {
                opts.stream.durable.mode = durable::Mode::Off;
            } else {
                return "durable: expected auto|on|off, got '" + val + "'";
            }
        } else if (key == "fsync") {
            if (!durable::parse_fsync_policy(val, opts.stream.durable)) {
                return "fsync: expected never|commit|interval:<ms>, got '" + val +
                       "'";
            }
        } else if (key == "liveness-ms") {
            opts.stream.liveness_ms = std::stod(val);
        } else if (key == "on-data-loss") {
            if (val == "fail") {
                opts.stream.on_data_loss = flexpath::OnDataLoss::Fail;
            } else if (val == "skip") {
                opts.stream.on_data_loss = flexpath::OnDataLoss::Skip;
            } else if (val == "zero-fill") {
                opts.stream.on_data_loss = flexpath::OnDataLoss::ZeroFill;
            } else {
                return "on-data-loss: expected fail|skip|zero-fill, got '" + val + "'";
            }
        } else if (key == "restart-policy") {
            if (val == "never") {
                opts.restart = core::RestartPolicy::never();
            } else if (val == "on-failure") {
                opts.restart = core::RestartPolicy::on_failure();
            } else {
                return "restart-policy: expected never|on-failure, got '" + val + "'";
            }
        } else if (key == "fuse") {
            if (val == "auto") {
                opts.fusion = core::FusionMode::Auto;
            } else if (val == "on") {
                opts.fusion = core::FusionMode::On;
            } else if (val == "off") {
                opts.fusion = core::FusionMode::Off;
            } else {
                return "fuse: expected auto|on|off, got '" + val + "'";
            }
        } else if (key == "fault") {
            opts.faults.push_back(fault::parse_spec(val));
        } else if (key == "allow") {
            opts.allow.insert(val);
        } else {
            return "unknown lint-config key '" + key + "'";
        }
    } catch (const std::exception& e) {
        return key + ": " + e.what();
    }
    return "";
}

}  // namespace

const char* severity_name(Severity s) {
    switch (s) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

Result lint_wiring(const std::vector<core::LaunchEntry>& entries) {
    std::vector<Diagnostic> diags;
    wiring_rules(resolve(entries), /*fail_fast_only=*/true, diags);
    return finalize(std::move(diags), {});
}

Result lint_entries(const std::vector<core::LaunchEntry>& entries,
                    const Options& opts) {
    const std::vector<Node> nodes = resolve(entries);
    std::vector<Diagnostic> diags;
    wiring_rules(nodes, /*fail_fast_only=*/false, diags);

    const bool wired = std::none_of(
        diags.begin(), diags.end(),
        [](const Diagnostic& d) { return d.severity == Severity::Error; });
    if (wired) {
        // Contract interpretation and fusion notes both assume a
        // well-formed DAG with single-writer/single-reader streams.
        Interpreter(nodes, diags).run();
        fusion_notes(nodes, opts, diags);
    }
    config_rules(nodes, opts, diags);
    return finalize(std::move(diags), opts.allow);
}

Result lint_script(const std::string& text, const Options& opts) {
    Options effective = opts;
    std::vector<Diagnostic> directive_errors;
    {
        std::istringstream lines(text);
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(lines, line)) {
            ++lineno;
            const auto at = line.find("# lint-config:");
            if (at == std::string::npos) continue;
            const util::ArgList toks =
                util::ArgList::split(line.substr(at + std::string("# lint-config:").size()));
            for (std::size_t t = 0; t < toks.size(); ++t) {
                const std::string err = apply_directive(toks.raw()[t], effective);
                if (!err.empty()) {
                    directive_errors.push_back(
                        Diagnostic{"graph-bad-arguments", Severity::Error,
                                   lineno, "", "lint-config: " + err, ""});
                }
            }
        }
    }

    std::vector<core::LaunchEntry> entries;
    try {
        entries = core::parse_launch_script(text);
    } catch (const util::ArgError& e) {
        directive_errors.push_back(Diagnostic{"graph-bad-arguments",
                                              Severity::Error, 0, "", e.what(),
                                              ""});
        return finalize(std::move(directive_errors), effective.allow);
    }
    Result r = lint_entries(entries, effective);
    if (!directive_errors.empty()) {
        for (Diagnostic& d : r.diagnostics) directive_errors.push_back(std::move(d));
        return finalize(std::move(directive_errors), effective.allow);
    }
    return r;
}

std::vector<fault::FaultSpec> parse_fault_specs(const std::string& value) {
    std::vector<fault::FaultSpec> specs;
    std::string entry;
    const auto flush = [&] {
        const auto a = entry.find_first_not_of(" \t");
        if (a == std::string::npos) {
            entry.clear();
            return;
        }
        const auto b = entry.find_last_not_of(" \t");
        const std::string trimmed = entry.substr(a, b - a + 1);
        entry.clear();
        if (trimmed.rfind("seed=", 0) == 0) return;
        specs.push_back(fault::parse_spec(trimmed));
    };
    for (const char c : value) {
        if (c == ';' || c == ',') {
            flush();
        } else {
            entry += c;
        }
    }
    flush();
    return specs;
}

int exit_code(const Result& result, bool strict) {
    if (result.errors > 0) return 2;
    if (result.warnings > 0) return strict ? 2 : 1;
    return 0;
}

bool lint_enabled_from_env() {
    const char* v = std::getenv("SB_LINT");
    if (!v) return true;
    const std::string s(v);
    return !(s == "off" || s == "0" || s == "false");
}

bool lint_enabled(core::LintMode mode) {
    switch (mode) {
        case core::LintMode::On: return true;
        case core::LintMode::Off: return false;
        case core::LintMode::Auto: return lint_enabled_from_env();
    }
    return true;
}

}  // namespace sb::lint
