// Diagnostic rendering for sb::lint: the human-readable form shared by
// smartblock_lint, smartblock_run's pre-run check, and Workflow::run's
// fail-fast error; the JSON form behind `smartblock_lint --json`; and the
// Graphviz overlay for `--dot`.
#include <sstream>
#include <string>

#include "lint/lint.hpp"
#include "obs/json.hpp"

namespace sb::lint {

std::string render_text(const Result& result, const std::string& source_name) {
    std::ostringstream os;
    for (const Diagnostic& d : result.diagnostics) {
        if (!source_name.empty() && d.line > 0) {
            os << source_name << ":" << d.line << ": ";
        } else if (d.line > 0) {
            os << "line " << d.line << ": ";
        }
        os << severity_name(d.severity) << ": [" << d.rule << "]";
        if (!d.instance.empty()) os << " " << d.instance << ":";
        os << " " << d.message << "\n";
        if (!d.hint.empty()) os << "    hint: " << d.hint << "\n";
    }
    os << result.errors << " error" << (result.errors == 1 ? "" : "s") << ", "
       << result.warnings << " warning" << (result.warnings == 1 ? "" : "s")
       << ", " << result.notes << " note" << (result.notes == 1 ? "" : "s")
       << "\n";
    return os.str();
}

std::string render_json(const Result& result, bool strict) {
    std::ostringstream os;
    os << "{\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        const Diagnostic& d = result.diagnostics[i];
        os << (i ? "," : "") << "\n    {\"rule\": \"" << obs::json_escape(d.rule)
           << "\", \"severity\": \"" << severity_name(d.severity)
           << "\", \"line\": " << d.line << ", \"instance\": \""
           << obs::json_escape(d.instance) << "\", \"message\": \""
           << obs::json_escape(d.message) << "\", \"hint\": \""
           << obs::json_escape(d.hint) << "\"}";
    }
    os << (result.diagnostics.empty() ? "" : "\n  ") << "],\n"
       << "  \"errors\": " << result.errors << ",\n"
       << "  \"warnings\": " << result.warnings << ",\n"
       << "  \"notes\": " << result.notes << ",\n"
       << "  \"exit_code\": " << exit_code(result, strict) << "\n}\n";
    return os.str();
}

std::vector<core::DotAnnotation> dot_annotations(
    const std::vector<core::LaunchEntry>& entries, const Result& result) {
    std::vector<core::DotAnnotation> out;
    for (const Diagnostic& d : result.diagnostics) {
        if (d.severity == Severity::Note) continue;
        // Map the diagnostic's instance ("#3 histogram") back to its entry.
        if (d.instance.empty() || d.instance[0] != '#') continue;
        std::size_t index = 0;
        try {
            index = std::stoull(d.instance.substr(1)) - 1;
        } catch (const std::exception&) {
            continue;
        }
        if (index >= entries.size()) continue;
        core::DotAnnotation a;
        a.index = index;
        a.color = d.severity == Severity::Error ? "red" : "gold";
        a.note = "[" + d.rule + "]";
        out.push_back(std::move(a));
    }
    return out;
}

}  // namespace sb::lint
