// sb::lint — static workflow contract analyzer (docs/LINT.md).
//
// A SmartBlock workflow is wired by matching stream names across launch-
// script lines; whether the wired graph can actually *run* depends on facts
// that only surface at runtime in the seed: array names, ranks, element
// kinds, dimension headers, and the transport/restart configuration.  This
// module abstract-interprets the components' declarative contracts
// (core/contract.hpp) over the resolved dataflow DAG before anything
// launches and reports what would have gone wrong, anchored to the launch-
// script lines that caused it:
//
//   - wiring defects (the core/graph.hpp rules, re-keyed to stable IDs),
//   - shape/rank/kind mismatches between a writer's symbolic output shape
//     and each reader's requirements, including workflow-wide rank-variable
//     solving across opaque producers,
//   - attribute/header availability where components re-key or drop
//     dimension headers (select needs names; dim-reduce drops them),
//   - fusion-legality notes per chain, computed by the *actual* planner
//     (core/fusion.hpp) so diagnostics never drift from execution,
//   - configuration-safety audits (replay-impossible retention, ZeroFill
//     feeding a validate, liveness timeouts shorter than injected delays).
//
// Diagnostics carry a severity, a stable rule ID (the suppression key), the
// 1-based launch-script line, a fix-it hint when one is known, and render
// both human-readable and as JSON (`smartblock_lint --json`).
//
// Gating: SB_LINT env (unset -> on; "off"/"0"/"false" -> off, the seed
// behaviour), overridable per workflow via Workflow::set_lint — the same
// pattern as SB_FUSE / SB_READ_AHEAD.  Only the wiring rules fail-fast
// inside Workflow::run; everything else is reported by the CLI tools.
#pragma once

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/launch_script.hpp"
#include "fault/fault.hpp"
#include "flexpath/stream.hpp"

namespace sb::lint {

enum class Severity { Note, Warning, Error };

const char* severity_name(Severity s);

/// One finding.  `rule` is the stable ID from docs/LINT.md (also the
/// --allow suppression key); `line` is the 1-based launch-script line the
/// finding anchors to (0 = no line, e.g. workflow-wide config rules);
/// `instance` names the offending component instance ("#3 histogram", empty
/// for workflow-wide findings); `hint` is a fix-it suggestion (may be
/// empty).
struct Diagnostic {
    std::string rule;
    Severity severity = Severity::Error;
    std::size_t line = 0;
    std::string instance;
    std::string message;
    std::string hint;
};

/// Analyzer configuration: the workflow-level knobs whose interactions the
/// config-safety rules audit, plus the rule allow-list.
struct Options {
    /// Stream options the workflow would run with (retention / data-loss /
    /// liveness interplay).
    flexpath::StreamOptions stream;
    /// Restart policy the workflow would run with.
    core::RestartPolicy restart;
    /// Fusion mode (legality notes are suppressed when fusion resolves off).
    core::FusionMode fusion = core::FusionMode::Auto;
    /// Armed fault specs (SB_FAULT-style), for the liveness-vs-delay rule.
    std::vector<fault::FaultSpec> faults;
    /// Rule IDs to drop from the result (--allow=<id>).
    std::set<std::string> allow;
};

struct Result {
    std::vector<Diagnostic> diagnostics;  // severity-major, then line order
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;

    bool clean() const noexcept { return errors == 0 && warnings == 0; }
};

/// Thrown by Workflow::run's fail-fast gate: carries the wiring findings.
class LintError : public std::runtime_error {
public:
    LintError(const std::string& what, Result result)
        : std::runtime_error(what), result_(std::move(result)) {}
    const Result& result() const noexcept { return result_; }

private:
    Result result_;
};

/// Full analysis of a resolved entry list: wiring, contracts, fusion notes,
/// config audits.  Pure; unregistered components surface as diagnostics,
/// never as exceptions.
Result lint_entries(const std::vector<core::LaunchEntry>& entries,
                    const Options& opts = {});

/// Parses `script` (core/launch_script.hpp grammar) and lints it.  Script
/// comments of the form `# lint-config: key=value ...` override `opts`
/// before analysis so committed trigger scripts are self-contained; keys:
/// retain-steps, read-ahead, queue-capacity, spool-dir, on-data-loss
/// (fail|skip|zero-fill), liveness-ms, restart-policy (never|on-failure),
/// fuse (auto|on|off), fault (one SB_FAULT entry).  A malformed script or
/// directive becomes a graph-bad-arguments error, not an exception.
Result lint_script(const std::string& text, const Options& opts = {});

/// Wiring rules only (dangling-input, multiple-writers, multiple-readers,
/// cycle) — the fail-fast subset Workflow::run enforces.  Deliberately
/// excludes bad-arguments (argument errors must keep surfacing from the
/// component itself, as util::ArgError) and all contract rules (runtime
/// shape errors stay runtime; see WorkflowErrors tests).
Result lint_wiring(const std::vector<core::LaunchEntry>& entries);

/// Renders findings human-readable: one "<source>:<line>: <severity>:
/// [<rule>] <instance>: <message>" line each, hints indented beneath,
/// followed by a totals line.  `source_name` prefixes line anchors (empty
/// -> "line N" prose).
std::string render_text(const Result& result, const std::string& source_name = "");

/// Renders findings as a JSON object: {"diagnostics": [...], "errors": N,
/// "warnings": N, "notes": N, "exit_code": N} (see docs/LINT.md).
std::string render_json(const Result& result, bool strict = false);

/// Process exit code for a result: 2 if any error, else 1 if any warning
/// (2 under --strict), else 0 — notes are informational and never fail.
int exit_code(const Result& result, bool strict = false);

/// Node-coloring overlay for core::graph_to_dot: errors red, warnings
/// gold, first finding per instance annotated into the label.
std::vector<core::DotAnnotation> dot_annotations(
    const std::vector<core::LaunchEntry>& entries, const Result& result);

/// Parses an SB_FAULT-style list ("seed=7; p=throw@3, q=delay:50") into
/// specs for Options::faults without arming anything; "seed=N" entries are
/// skipped.  Throws std::invalid_argument on malformed entries.
std::vector<fault::FaultSpec> parse_fault_specs(const std::string& value);

/// True unless SB_LINT is "off"/"0"/"false" (read per call — tests toggle).
bool lint_enabled_from_env();

/// Resolves a core::LintMode against the environment gate.
bool lint_enabled(core::LintMode mode);

}  // namespace sb::lint
