#include "mpi/runtime.hpp"

#include <thread>

#include "check/collective.hpp"
#include "check/mutex.hpp"
#include "check/waits.hpp"
#include "obs/metrics.hpp"

namespace sb::mpi {

namespace detail {

// One mailbox per destination rank.  Messages are matched on (src, tag).
struct Mailbox {
    check::CheckedMutex mu{"mpi.mailbox.mu"};
    std::condition_variable_any cv;
    std::map<std::pair<int, int>, std::deque<Bytes>> slots;
};

// Reusable data-carrying barrier for collectives.  All ranks of the group
// call collectives in the same order; a rank can therefore be at most one
// round ahead of its slowest peer.  `exiting` gates re-entry so a fast rank
// cannot clobber `published` while a slow rank is still reading it.
struct CollectiveState {
    check::CheckedMutex mu{"mpi.collective.mu"};
    std::condition_variable_any cv;
    std::vector<Bytes> contribs;
    std::vector<Bytes> published;
    std::uint64_t round = 0;  // number of completed rounds
    int arrived = 0;
    int exiting = 0;
    // sb::check collective verifier: per-rank signatures of the current
    // round, and the round (if any) whose signatures diverged.
    std::vector<check::CollSig> sigs;
    std::uint64_t mismatch_round = static_cast<std::uint64_t>(-1);
    std::string mismatch_table;
};

struct GroupState {
    explicit GroupState(int n, std::string name_ = {})
        : size(n), name(std::move(name_)), mailboxes(static_cast<std::size_t>(n)) {
        coll.contribs.resize(static_cast<std::size_t>(n));
        coll.mu.set_name("mpi.collective('" + name + "').mu");
        for (auto& mb : mailboxes) {
            mb.mu.set_name("mpi.mailbox('" + name + "').mu");
        }
        obs::Labels labels;
        if (!name.empty()) labels.push_back({"comm", name});
        coll_wait = &obs::Registry::global().histogram("mpi.collective_wait_seconds",
                                                       labels);
        collectives = &obs::Registry::global().counter("mpi.collectives", labels);
    }

    const int size;
    const std::string name;
    std::vector<Mailbox> mailboxes;
    CollectiveState coll;
    // Per-group collective telemetry: every collective is built on
    // allgather_tagged, so one histogram of per-call blocked seconds covers
    // barrier/bcast/reduce/allreduce/gather alike.
    obs::Histogram* coll_wait = nullptr;
    obs::Counter* collectives = nullptr;
    std::atomic<bool> aborted{false};

    void check_abort() const {
        if (aborted.load(std::memory_order_acquire)) throw AbortError();
    }

    void abort() {
        aborted.store(true, std::memory_order_release);
        for (auto& mb : mailboxes) {
            const std::lock_guard lock(mb.mu);
            mb.cv.notify_all();
        }
        {
            const std::lock_guard lock(coll.mu);
            coll.cv.notify_all();
        }
    }
};

}  // namespace detail

namespace {

/// Formats a SigSpec lazily — only when the sb::check verifier is on.
check::CollSig make_sig(const char* op, const char* variant, int root,
                        std::uint64_t count, std::uint64_t elem) {
    check::CollSig sig;
    sig.op = op;
    if (variant) sig.op += std::string(":") + variant;
    if (root >= 0) sig.op += "(root=" + std::to_string(root) + ")";
    sig.count = count;
    sig.elem = elem;
    return sig;
}

}  // namespace

int Communicator::size() const noexcept { return state_->size; }

void Communicator::send_bytes(int dest, int tag, Bytes payload) const {
    if (dest < 0 || dest >= state_->size) {
        throw std::out_of_range("send_bytes: bad destination rank " + std::to_string(dest));
    }
    state_->check_abort();
    auto& mb = state_->mailboxes[static_cast<std::size_t>(dest)];
    {
        const std::lock_guard lock(mb.mu);
        mb.slots[{rank_, tag}].push_back(std::move(payload));
    }
    mb.cv.notify_all();
}

Bytes Communicator::recv_bytes(int src, int tag) const {
    if (src < 0 || src >= state_->size) {
        throw std::out_of_range("recv_bytes: bad source rank " + std::to_string(src));
    }
    auto& mb = state_->mailboxes[static_cast<std::size_t>(rank_)];
    std::unique_lock lock(mb.mu);
    auto& q = mb.slots[{src, tag}];
    std::string what;
    if (check::enabled()) {
        what = "comm '" + state_->name + "' rank " + std::to_string(rank_) +
               " <- rank " + std::to_string(src) + " tag " + std::to_string(tag);
    }
    check::wait_checked(mb.cv, lock, check::WaitKind::P2PRecv, what,
                        [&] { return state_->aborted.load() || !q.empty(); });
    if (q.empty()) throw AbortError();
    Bytes out = std::move(q.front());
    q.pop_front();
    return out;
}

std::vector<Bytes> Communicator::allgather_tagged(Bytes mine,
                                                  const SigSpec& spec) const {
    auto& c = state_->coll;
    const bool instr = obs::enabled();
    const bool chk = check::enabled();
    double waited = 0.0;
    std::string what;
    if (chk) {
        what = "comm '" + state_->name + "' rank " + std::to_string(rank_) + " " +
               make_sig(spec.op, spec.variant, spec.root, spec.count, spec.elem).op;
    }
    std::unique_lock lock(c.mu);

    // Wait for the previous round to fully drain before re-entering.
    {
        const auto drained = [&] { return state_->aborted.load() || c.exiting == 0; };
        if (!drained()) {
            const double t0 = instr ? obs::steady_seconds() : 0.0;
            check::wait_checked(c.cv, lock, check::WaitKind::Collective, what,
                                drained);
            if (instr) waited += obs::steady_seconds() - t0;
        }
    }
    state_->check_abort();

    c.contribs[static_cast<std::size_t>(rank_)] = std::move(mine);
    if (chk) {
        if (c.sigs.size() != static_cast<std::size_t>(state_->size)) {
            c.sigs.assign(static_cast<std::size_t>(state_->size), {});
        }
        c.sigs[static_cast<std::size_t>(rank_)] =
            make_sig(spec.op, spec.variant, spec.root, spec.count, spec.elem);
    }
    const std::uint64_t my_round = c.round;
    if (++c.arrived == state_->size) {
        // The completing rank verifies the round's signatures before
        // publishing; on divergence every rank of the round throws below.
        if (chk && !check::sigs_match(c.sigs)) {
            c.mismatch_round = my_round;
            c.mismatch_table =
                check::format_collective_table(state_->name, my_round, c.sigs);
            check::report(check::Kind::Collective, c.mismatch_table);
        }
        c.published = std::move(c.contribs);
        c.contribs.assign(static_cast<std::size_t>(state_->size), Bytes{});
        c.arrived = 0;
        c.exiting = state_->size;
        ++c.round;
        c.cv.notify_all();
    } else {
        const auto round_done = [&] {
            return state_->aborted.load() || c.round > my_round;
        };
        if (!round_done()) {
            const double t0 = instr ? obs::steady_seconds() : 0.0;
            check::wait_checked(c.cv, lock, check::WaitKind::Collective, what,
                                round_done);
            if (instr) waited += obs::steady_seconds() - t0;
        }
        state_->check_abort();
    }

    const bool mismatched = chk && c.mismatch_round == my_round;
    const std::string table = mismatched ? c.mismatch_table : std::string{};

    std::vector<Bytes> result = c.published;  // copy: every rank needs it
    if (--c.exiting == 0) c.cv.notify_all();
    lock.unlock();
    if (mismatched) throw check::CollectiveMismatchError(table);
    if (instr) {
        state_->coll_wait->observe(waited);
        state_->collectives->inc();
    }
    return result;
}

std::vector<Bytes> Communicator::allgather_bytes(Bytes mine) const {
    return allgather_tagged(std::move(mine), {"allgather_bytes", nullptr, -1, 0, 0});
}

void Communicator::barrier() const {
    (void)allgather_tagged({}, {"barrier", nullptr, -1, 0, 0});
}

Bytes Communicator::bcast_bytes(int root, Bytes payload) const {
    if (root < 0 || root >= state_->size) {
        throw std::out_of_range("bcast_bytes: bad root rank");
    }
    auto all = allgather_tagged(rank_ == root ? std::move(payload) : Bytes{},
                                {"bcast", nullptr, root, 0, 0});
    return std::move(all[static_cast<std::size_t>(root)]);
}

Group::Group(int size, std::string name)
    : state_(std::make_shared<detail::GroupState>(size, std::move(name))),
      size_(size) {
    if (size <= 0) throw std::invalid_argument("Group: size must be positive");
}

Group::~Group() = default;

Communicator Group::comm(int rank) const {
    if (rank < 0 || rank >= size_) throw std::out_of_range("Group::comm: bad rank");
    return Communicator(state_, rank);
}

void Group::abort() const { state_->abort(); }

void run_ranks(int n, const std::function<void(Communicator&)>& fn,
               std::string name) {
    Group group(n, std::move(name));
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
    {
        std::vector<std::jthread> threads;
        threads.reserve(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            threads.emplace_back([&, r] {
                try {
                    Communicator comm = group.comm(r);
                    // Label the rank thread so lock-order and wait-for
                    // diagnostics name the component rank.
                    const check::ThreadLabel label(
                        (comm.state_->name.empty() ? "comm" : comm.state_->name) +
                        "/rank" + std::to_string(r));
                    fn(comm);
                } catch (...) {
                    errors[static_cast<std::size_t>(r)] = std::current_exception();
                    group.abort();
                }
            });
        }
    }  // jthreads join here

    // Prefer the root cause over secondary AbortErrors.
    std::exception_ptr first_abort;
    for (auto& e : errors) {
        if (!e) continue;
        try {
            std::rethrow_exception(e);
        } catch (const AbortError&) {
            if (!first_abort) first_abort = e;
        } catch (...) {
            std::rethrow_exception(e);
        }
    }
    if (first_abort) std::rethrow_exception(first_abort);
}

}  // namespace sb::mpi
