// In-process message-passing runtime (the reproduction's stand-in for MPI).
//
// The paper's SmartBlock components are MPI executables: the processes of one
// component share an MPI communicator and use P2P messages plus collectives
// (Histogram, e.g., allreduces its local min/max).  This runtime reproduces
// that model inside one process: each *rank* is a thread, each component a
// `Communicator` group.  The API mirrors the MPI idioms the components need:
//
//   - tagged, blocking, by-value point-to-point send/recv
//   - barrier, broadcast, gather, allgather, reduce, allreduce (elementwise
//     over vectors or on scalars)
//   - run_ranks(n, fn): SPMD launch of a rank function over n threads
//
// Every wait is a condition-variable wait with a predicate; nothing spins.
// If any rank throws, the group is aborted: all blocked ranks wake and throw
// AbortError, and run_ranks rethrows the original exception.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sb::mpi {

using Bytes = std::vector<std::byte>;

/// Thrown in ranks blocked on a communicator whose group has aborted
/// (because a peer rank threw).
class AbortError : public std::runtime_error {
public:
    AbortError() : std::runtime_error("communicator aborted by peer rank") {}
};

enum class ReduceOp { Sum, Min, Max, Prod };

constexpr const char* reduce_op_name(ReduceOp op) noexcept {
    switch (op) {
        case ReduceOp::Sum: return "Sum";
        case ReduceOp::Min: return "Min";
        case ReduceOp::Max: return "Max";
        case ReduceOp::Prod: return "Prod";
    }
    return "?";
}

namespace detail {
struct GroupState;
}

/// A rank's handle on its group.  Cheap to copy; all copies refer to the
/// same group.  Valid only inside the rank function it was passed to.
class Communicator {
public:
    int rank() const noexcept { return rank_; }
    int size() const noexcept;

    // ---- point-to-point ------------------------------------------------
    /// Sends a byte payload to `dest` with `tag`.  By-value and buffered:
    /// never blocks waiting for the receiver.
    void send_bytes(int dest, int tag, Bytes payload) const;

    /// Blocks until a message from `src` with `tag` arrives.
    Bytes recv_bytes(int src, int tag) const;

    template <typename T>
    void send(int dest, int tag, std::span<const T> data) const {
        static_assert(std::is_trivially_copyable_v<T>);
        Bytes b(data.size_bytes());
        util::copy_bytes(b.data(), data.data(), data.size_bytes());
        send_bytes(dest, tag, std::move(b));
    }

    template <typename T>
    void send_value(int dest, int tag, const T& v) const {
        send<T>(dest, tag, std::span<const T>(&v, 1));
    }

    template <typename T>
    std::vector<T> recv(int src, int tag) const {
        static_assert(std::is_trivially_copyable_v<T>);
        const Bytes b = recv_bytes(src, tag);
        if (b.size() % sizeof(T) != 0) {
            throw std::runtime_error("recv: payload size not a multiple of element size");
        }
        std::vector<T> out(b.size() / sizeof(T));
        util::copy_bytes(out.data(), b.data(), b.size());
        return out;
    }

    template <typename T>
    T recv_value(int src, int tag) const {
        auto v = recv<T>(src, tag);
        if (v.size() != 1) throw std::runtime_error("recv_value: expected 1 element");
        return v[0];
    }

    // ---- collectives ---------------------------------------------------
    // All ranks of the group must call the same collective in the same
    // order (the usual MPI contract).  With SB_CHECK=on every entry is
    // tagged with (op, count, element size); sb::check verifies that the
    // ranks of each round agree and aborts the group with a rank-by-rank
    // table when they diverge (see docs/CORRECTNESS.md).

    void barrier() const;

    /// Every rank contributes bytes; every rank receives all contributions
    /// indexed by rank.  The primitive the other collectives build on.
    std::vector<Bytes> allgather_bytes(Bytes mine) const;

    /// Root's payload is delivered to every rank.
    Bytes bcast_bytes(int root, Bytes payload) const;

    template <typename T>
    T bcast(int root, T v) const {
        static_assert(std::is_trivially_copyable_v<T>);
        Bytes b(sizeof(T));
        std::memcpy(b.data(), &v, sizeof(T));
        b = bcast_bytes(root, std::move(b));
        T out;
        std::memcpy(&out, b.data(), sizeof(T));
        return out;
    }

    template <typename T>
    std::vector<T> allgather(const T& v) const {
        return allgather_impl(v, {"allgather", nullptr, -1, 1, sizeof(T)});
    }

    /// Variable-length allgather: concatenation is up to the caller.
    template <typename T>
    std::vector<std::vector<T>> allgatherv(std::span<const T> data) const {
        return allgatherv_impl(data, {"allgatherv", nullptr, -1, 0, sizeof(T)});
    }

    template <typename T>
    T allreduce(T v, ReduceOp op) const {
        auto all =
            allgather_impl(v, {"allreduce", reduce_op_name(op), -1, 1, sizeof(T)});
        return fold(all, op);
    }

    /// Elementwise allreduce over equal-length vectors.
    template <typename T>
    std::vector<T> allreduce_vec(std::span<const T> v, ReduceOp op) const {
        return allreduce_vec_impl(
            v, op, {"allreduce_vec", reduce_op_name(op), -1, v.size(), sizeof(T)});
    }

    /// Reduce-to-root; non-root ranks receive an empty vector.
    template <typename T>
    std::vector<T> reduce_vec(std::span<const T> v, ReduceOp op, int root) const {
        auto out = allreduce_vec_impl(
            v, op, {"reduce_vec", reduce_op_name(op), root, v.size(), sizeof(T)});
        if (rank_ != root) out.clear();
        return out;
    }

    /// Gather scalars to root; non-root ranks receive an empty vector.
    template <typename T>
    std::vector<T> gather(const T& v, int root) const {
        auto all = allgather_impl(v, {"gather", nullptr, root, 1, sizeof(T)});
        if (rank_ != root) all.clear();
        return all;
    }

    /// Inclusive prefix reduction: rank r receives fold(v_0 .. v_r).
    template <typename T>
    T scan(T v, ReduceOp op) const {
        const auto all =
            allgather_impl(v, {"scan", reduce_op_name(op), -1, 1, sizeof(T)});
        T acc = all.at(0);
        for (int r = 1; r <= rank_; ++r) {
            acc = apply(acc, all[static_cast<std::size_t>(r)], op);
        }
        return acc;
    }

    /// Exclusive prefix reduction: rank r receives fold(v_0 .. v_{r-1});
    /// rank 0 receives the operation's identity element.
    template <typename T>
    T exscan(T v, ReduceOp op) const {
        const auto all =
            allgather_impl(v, {"exscan", reduce_op_name(op), -1, 1, sizeof(T)});
        T acc = identity<T>(op);
        for (int r = 0; r < rank_; ++r) {
            acc = apply(acc, all[static_cast<std::size_t>(r)], op);
        }
        return acc;
    }

private:
    friend void run_ranks(int, const std::function<void(Communicator&)>&, std::string);
    friend class Group;

    Communicator(std::shared_ptr<detail::GroupState> state, int rank)
        : state_(std::move(state)), rank_(rank) {}

    /// What the calling rank claims this collective is, for the sb::check
    /// verifier.  Kept as raw pieces so the disabled path never allocates;
    /// the formatted signature is only built when SB_CHECK is on.
    struct SigSpec {
        const char* op;
        const char* variant = nullptr;  // reduce-op name, or null
        int root = -1;                  // rooted collectives, or -1
        std::uint64_t count = 0;        // 0 when legitimately per-rank
        std::uint64_t elem = 0;
    };

    /// The data-carrying barrier every collective funnels through, tagged
    /// with the caller's signature.
    std::vector<Bytes> allgather_tagged(Bytes mine, const SigSpec& sig) const;

    template <typename T>
    std::vector<T> allgather_impl(const T& v, const SigSpec& sig) const {
        static_assert(std::is_trivially_copyable_v<T>);
        Bytes mine(sizeof(T));
        std::memcpy(mine.data(), &v, sizeof(T));
        auto all = allgather_tagged(std::move(mine), sig);
        std::vector<T> out(all.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
            std::memcpy(&out[i], all[i].data(), sizeof(T));
        }
        return out;
    }

    template <typename T>
    std::vector<std::vector<T>> allgatherv_impl(std::span<const T> data,
                                                const SigSpec& sig) const {
        static_assert(std::is_trivially_copyable_v<T>);
        Bytes mine(data.size_bytes());
        util::copy_bytes(mine.data(), data.data(), data.size_bytes());
        auto all = allgather_tagged(std::move(mine), sig);
        std::vector<std::vector<T>> out(all.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
            out[i].resize(all[i].size() / sizeof(T));
            util::copy_bytes(out[i].data(), all[i].data(), all[i].size());
        }
        return out;
    }

    template <typename T>
    std::vector<T> allreduce_vec_impl(std::span<const T> v, ReduceOp op,
                                      const SigSpec& sig) const {
        auto all = allgatherv_impl<T>(v, sig);
        std::vector<T> out(v.size());
        for (std::size_t j = 0; j < v.size(); ++j) {
            T acc = all[0].at(j);
            for (std::size_t r = 1; r < all.size(); ++r) {
                acc = apply(acc, all[r].at(j), op);
            }
            out[j] = acc;
        }
        return out;
    }

    template <typename T>
    static T apply(T a, T b, ReduceOp op) {
        switch (op) {
            case ReduceOp::Sum: return a + b;
            case ReduceOp::Min: return a < b ? a : b;
            case ReduceOp::Max: return a > b ? a : b;
            case ReduceOp::Prod: return a * b;
        }
        throw std::logic_error("bad ReduceOp");
    }

    template <typename T>
    static T identity(ReduceOp op) {
        switch (op) {
            case ReduceOp::Sum: return T{};
            case ReduceOp::Prod: return T{1};
            case ReduceOp::Min: return std::numeric_limits<T>::max();
            case ReduceOp::Max: return std::numeric_limits<T>::lowest();
        }
        throw std::logic_error("bad ReduceOp");
    }

    template <typename T>
    static T fold(const std::vector<T>& all, ReduceOp op) {
        T acc = all.at(0);
        for (std::size_t i = 1; i < all.size(); ++i) acc = apply(acc, all[i], op);
        return acc;
    }

    std::shared_ptr<detail::GroupState> state_;
    int rank_;
};

/// A communicator group whose rank threads are driven externally (used by
/// the Workflow runner, which owns one thread per component rank).
/// `name` labels the group's collective-wait metrics
/// (mpi.collective_wait_seconds{comm=name}); unnamed groups aggregate
/// under an empty label.
class Group {
public:
    explicit Group(int size, std::string name = {});
    ~Group();
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    int size() const noexcept { return size_; }

    /// The communicator handle for `rank`.
    Communicator comm(int rank) const;

    /// Wakes every blocked rank with AbortError.  Idempotent.
    void abort() const;

private:
    std::shared_ptr<detail::GroupState> state_;
    int size_;
};

/// SPMD launch: runs `fn` on `n` rank threads and joins them all.  If any
/// rank throws, the group is aborted (peers wake with AbortError) and the
/// first non-abort exception is rethrown here.  `name` labels the group's
/// collective-wait metrics (see Group).
void run_ranks(int n, const std::function<void(Communicator&)>& fn,
               std::string name = {});

}  // namespace sb::mpi
