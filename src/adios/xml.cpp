#include "adios/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sb::adios {

const XmlNode* XmlNode::child(const std::string& element) const {
    for (const auto& c : children) {
        if (c.name == element) return &c;
    }
    return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(const std::string& element) const {
    std::vector<const XmlNode*> out;
    for (const auto& c : children) {
        if (c.name == element) out.push_back(&c);
    }
    return out;
}

const std::string& XmlNode::attr(const std::string& key) const {
    const auto it = attrs.find(key);
    if (it == attrs.end()) {
        throw std::runtime_error("xml: element <" + name + "> missing attribute '" +
                                 key + "'");
    }
    return it->second;
}

std::string XmlNode::attr_or(const std::string& key, const std::string& dflt) const {
    const auto it = attrs.find(key);
    return it == attrs.end() ? dflt : it->second;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    XmlNode parse_document() {
        skip_misc();
        XmlNode root = parse_element();
        skip_misc();
        if (pos_ != s_.size()) fail("trailing content after root element");
        return root;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        throw std::runtime_error("xml: line " + std::to_string(line_) + ": " + msg);
    }

    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return eof() ? '\0' : s_[pos_]; }

    char advance() {
        if (eof()) fail("unexpected end of input");
        const char c = s_[pos_++];
        if (c == '\n') ++line_;
        return c;
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
        advance();
    }

    void skip_ws() {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
    }

    bool consume_literal(const std::string& lit) {
        if (s_.compare(pos_, lit.size(), lit) != 0) return false;
        for (std::size_t i = 0; i < lit.size(); ++i) advance();
        return true;
    }

    // Skips whitespace, comments, and <?...?> declarations.
    void skip_misc() {
        for (;;) {
            skip_ws();
            if (consume_literal("<!--")) {
                while (!consume_literal("-->")) advance();
            } else if (consume_literal("<?")) {
                while (!consume_literal("?>")) advance();
            } else {
                return;
            }
        }
    }

    std::string parse_name() {
        std::string out;
        while (!eof()) {
            const char c = peek();
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
                c == ':' || c == '.') {
                out.push_back(advance());
            } else {
                break;
            }
        }
        if (out.empty()) fail("expected a name");
        return out;
    }

    std::string parse_quoted() {
        const char q = peek();
        if (q != '"' && q != '\'') fail("expected a quoted attribute value");
        advance();
        std::string out;
        while (peek() != q) out.push_back(advance());
        advance();
        return out;
    }

    XmlNode parse_element() {
        expect('<');
        XmlNode node;
        node.name = parse_name();
        for (;;) {
            skip_ws();
            if (peek() == '/') {
                advance();
                expect('>');
                return node;  // self-closing
            }
            if (peek() == '>') {
                advance();
                break;
            }
            const std::string key = parse_name();
            skip_ws();
            expect('=');
            skip_ws();
            if (!node.attrs.emplace(key, parse_quoted()).second) {
                fail("duplicate attribute '" + key + "'");
            }
        }
        // Content: children and text, until the matching close tag.
        for (;;) {
            // Accumulate text up to the next markup.
            while (!eof() && peek() != '<') node.text.push_back(advance());
            if (eof()) fail("unterminated element <" + node.name + ">");
            if (consume_literal("<!--")) {
                while (!consume_literal("-->")) advance();
                continue;
            }
            if (s_.compare(pos_, 2, "</") == 0) {
                advance();  // <
                advance();  // /
                const std::string close = parse_name();
                if (close != node.name) {
                    fail("mismatched close tag </" + close + "> for <" + node.name + ">");
                }
                skip_ws();
                expect('>');
                return node;
            }
            node.children.push_back(parse_element());
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

}  // namespace

XmlNode parse_xml(const std::string& text) { return Parser(text).parse_document(); }

XmlNode parse_xml_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("xml: cannot open file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_xml(ss.str());
}

}  // namespace sb::adios
