// ADIOS-style writer: the interface simulations use to drive a workflow.
//
// Per step the writer resolves each array variable's named dimensions
// against the scalar dimension values supplied via set_dimension(), declares
// the variable on the FlexPath stream with the dimension names as labels,
// and forwards the group's static attributes.  The ~70-line modification the
// paper describes for LAMMPS/GTCP/GROMACS is exactly a loop over
// begin_step / set_dimension / write / end_step.
#pragma once

#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "adios/group.hpp"
#include "flexpath/writer.hpp"
#include "util/bytes.hpp"

namespace sb::adios {

class Writer {
public:
    Writer(flexpath::Fabric& fabric, const std::string& stream_name, GroupDef group,
           int rank, int nranks, const flexpath::StreamOptions& opts = {});

    /// Starts a step.  Dimension values are cleared and must be set again
    /// (they may change between steps, e.g. a growing particle count).
    void begin_step();

    /// Supplies the value of a named dimension for this step.  Also
    /// publishes it as a scalar variable from rank 0, so readers can
    /// inquire it like any ADIOS scalar.
    void set_dimension(const std::string& name, std::uint64_t value);

    /// Writes this rank's hyperslab of an array variable declared in the
    /// group.  `box` is in global coordinates; `data` holds box.volume()
    /// elements row-major.
    template <typename T>
    void write(const std::string& var, std::span<const T> data, const util::Box& box) {
        static_assert(std::is_trivially_copyable_v<T>);
        auto buf = std::make_shared<std::vector<std::byte>>(data.size_bytes());
        util::copy_bytes(buf->data(), data.data(), data.size_bytes());
        write_raw(var, box, std::move(buf));
    }

    /// Zero-copy variant.
    void write_raw(const std::string& var, const util::Box& box,
                   std::shared_ptr<const std::vector<std::byte>> data);

    /// Borrowed-ownership write: declares `var` like write_raw and returns a
    /// mutable span over transport-owned (pooled) storage for this rank's
    /// block.  The caller fills every byte before end_step(); no staging
    /// buffer, no copy — the stream retires the storage to the pool when all
    /// readers release the step.
    std::span<std::byte> put_view(const std::string& var, const util::Box& box);

    /// Typed put_view: the span is the component's output array.
    template <typename T>
    std::span<T> put_span(const std::string& var, const util::Box& box) {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::span<std::byte> raw = put_view(var, box);
        return {reinterpret_cast<T*>(raw.data()), raw.size() / sizeof(T)};
    }

    /// Per-step string-list attribute (overrides a static group attribute
    /// of the same name).
    void write_attribute(const std::string& name, std::vector<std::string> values);
    void write_attribute(const std::string& name, double value);

    void end_step();
    void close();

    const GroupDef& group() const noexcept { return group_; }
    std::uint64_t steps_written() const noexcept { return port_.steps_written(); }

private:
    util::NdShape resolve_shape(const VarSpec& spec) const;
    /// Files an sb::check Usage diagnostic (API misuse) before throwing.
    void usage(const std::string& what) const;

    GroupDef group_;
    flexpath::WriterPort port_;
    int rank_;
    std::map<std::string, std::uint64_t> dims_;
    bool in_step_ = false;
    double step_t0_ = 0.0;  // begin_step time (span: SegmentKind::Produce)
    obs::Counter* steps_written_ = nullptr;  // adios.steps_written{stream=}
    obs::Counter* vars_written_ = nullptr;   // adios.vars_written{stream=}
};

}  // namespace sb::adios
