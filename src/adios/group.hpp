// ADIOS group definitions: the schema a simulation declares for its output.
//
// A group lists variables with their element type and *named* dimensions
// ("natoms,nquant"); the dimension names are themselves scalar variables
// whose values the writer supplies each step.  Those names double as the
// paper's "consistent labeling of dimensions" (design guideline 2): they
// travel downstream as the dim_labels of every array variable.  Static
// string attributes (e.g. the Select header naming the quantities of a
// dimension) can be declared here too and are attached to every step.
//
// Groups are built programmatically or parsed from the ADIOS-style XML file
// the paper describes (~25 lines per simulation):
//
//   <adios-config>
//     <adios-group name="particles">
//       <var name="natoms" type="unsigned long"/>
//       <var name="nquant" type="unsigned long"/>
//       <var name="atoms"  type="double" dimensions="natoms,nquant"/>
//       <attribute name="atoms.header.1" value="ID,Type,vx,vy,vz"/>
//     </adios-group>
//     <transport group="particles" method="FLEXPATH"/>
//   </adios-config>
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ffs/type.hpp"

namespace sb::adios {

using DataKind = ffs::Kind;

/// Parses an ADIOS XML type name ("double", "float", "integer", "long",
/// "unsigned long", "byte", "string").
DataKind parse_type_name(const std::string& t);

struct VarSpec {
    std::string name;
    DataKind kind = DataKind::Float64;
    /// Dimension names for arrays; empty for scalars.  Each entry is either
    /// the name of a scalar variable (resolved per step via set_dimension)
    /// or a decimal literal for a fixed extent.
    std::vector<std::string> dimensions;

    bool is_scalar() const noexcept { return dimensions.empty(); }
};

struct GroupDef {
    std::string name;
    std::vector<VarSpec> vars;
    /// Static attributes attached to every step; comma-separated values in
    /// the XML become string lists.
    std::map<std::string, std::vector<std::string>> attributes;
    /// Transport method (informational; this build always uses FlexPath).
    std::string transport = "FLEXPATH";

    const VarSpec* find(const std::string& var_name) const noexcept;

    /// Parses the first <adios-group> of an <adios-config> document.
    static GroupDef from_xml(const std::string& xml_text);
    static GroupDef from_xml_file(const std::string& path);

    /// Parses a specific group by name from a config with several groups
    /// (the "write groups" of paper §VI used by the Fork component).
    static GroupDef from_xml(const std::string& xml_text, const std::string& group);
};

/// Splits "a,b,c" into {"a","b","c"}, trimming whitespace.
std::vector<std::string> split_csv(const std::string& s);

}  // namespace sb::adios
