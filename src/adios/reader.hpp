// ADIOS-style reader: how components discover and fetch stream data.
//
// A reader needs no a-priori schema: each step's metadata is decoded from
// the stream's self-describing FFS packet, so the component can inquire the
// variables present, their global shapes, element kinds, dimension labels,
// and attributes — then schedule bounding-box reads for exactly the portion
// its rank will process (paper §IV: "ADIOS allows each process involved in
// the read operation to specify a bounding box").
//
// begin_step advances this rank's own cursor: reader ranks of one group all
// observe the same step sequence but may be skewed by up to the stream's
// read-ahead window (StreamOptions::read_ahead / SB_READ_AHEAD), with a
// background prefetcher staging upcoming steps.  Spans returned by
// try_read_view stay valid until this rank's end_step regardless of what
// steps peer ranks hold (docs/CORRECTNESS.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adios/group.hpp"
#include "flexpath/reader.hpp"

namespace sb::adios {

/// Everything a component can learn about a variable from the stream alone.
struct VarInfo {
    std::string name;
    DataKind kind = DataKind::Float64;
    util::NdShape shape;
    std::vector<std::string> dim_labels;
};

class Reader {
public:
    Reader(flexpath::Fabric& fabric, const std::string& stream_name, int rank,
           int nranks);

    /// Blocks until the next step arrives; false at end of stream.
    bool begin_step();

    /// Index of the current step.
    std::uint64_t step() const { return port_.current_step(); }

    /// Names of all array and scalar variables in the current step.
    std::vector<std::string> variable_names() const;

    /// Metadata for one variable; throws if absent.
    VarInfo inq_var(const std::string& name) const;

    /// True if the step carries the named variable.
    bool has_var(const std::string& name) const;

    /// Scalar variable value (e.g. a named dimension published by the writer).
    template <typename T>
    T read_scalar(const std::string& name) const {
        auto v = port_.read<T>(name, util::Box{});
        return v.at(0);
    }

    /// Bounding-box read; returns box.volume() elements row-major.
    template <typename T>
    std::vector<T> read(const std::string& name, const util::Box& box) const {
        return port_.read<T>(name, box);
    }

    void read_bytes(const std::string& name, const util::Box& box,
                    std::span<std::byte> dest) const {
        port_.read_bytes(name, box, dest);
    }

    /// Zero-copy bounding-box read: when `box` is exactly one writer block,
    /// returns a view into the step's shared payload (valid until
    /// end_step()); empty optional otherwise — fall back to read().
    template <typename T>
    std::optional<std::span<const T>> try_read_view(const std::string& name,
                                                    const util::Box& box) const {
        return port_.try_read_view<T>(name, box);
    }

    std::optional<std::span<const std::byte>>
    try_read_view_bytes(const std::string& name, const util::Box& box) const {
        return port_.try_read_view_bytes(name, box);
    }

    /// True when the current step's data was lost to the stream's
    /// OnDataLoss::ZeroFill degradation policy: metadata (shapes, labels,
    /// attributes) is intact but every read returns zeros.
    bool step_data_lost() const { return port_.step_lossy(); }

    /// String-list attribute, or nullopt when the step doesn't carry it.
    std::optional<std::vector<std::string>> attribute_strings(const std::string& name) const;
    std::optional<double> attribute_double(const std::string& name) const;

    /// All attributes of the current step (for propagation by components).
    const std::map<std::string, std::vector<std::string>>& string_attributes() const;
    const std::map<std::string, double>& double_attributes() const;

    void end_step();

private:
    flexpath::ReaderPort port_;
    obs::Counter* steps_read_ = nullptr;  // adios.steps_read{stream=}
    double step_t0_ = 0.0;  // acquire-end time (span: SegmentKind::Consume)
};

}  // namespace sb::adios
