#include "adios/reader.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sb::adios {

Reader::Reader(flexpath::Fabric& fabric, const std::string& stream_name, int rank,
               int nranks)
    : port_(fabric, stream_name, rank, nranks) {
    steps_read_ = &obs::Registry::global().counter("adios.steps_read",
                                                   {{"stream", stream_name}});
}

bool Reader::begin_step() {
    const bool ok = port_.begin_step();
    if (ok) {
        steps_read_->inc();
        step_t0_ = obs::enabled() ? obs::steady_seconds() : 0.0;
    }
    return ok;
}

std::vector<std::string> Reader::variable_names() const {
    std::vector<std::string> out;
    out.reserve(port_.meta().vars.size());
    for (const auto& [name, decl] : port_.meta().vars) out.push_back(name);
    return out;
}

bool Reader::has_var(const std::string& name) const {
    return port_.meta().vars.count(name) != 0;
}

VarInfo Reader::inq_var(const std::string& name) const {
    const flexpath::VarDecl& d = port_.var(name);
    return VarInfo{d.name, d.kind, d.global_shape, d.dim_labels};
}

std::optional<std::vector<std::string>>
Reader::attribute_strings(const std::string& name) const {
    const auto& attrs = port_.meta().string_attrs;
    const auto it = attrs.find(name);
    if (it == attrs.end()) return std::nullopt;
    return it->second;
}

std::optional<double> Reader::attribute_double(const std::string& name) const {
    const auto& attrs = port_.meta().double_attrs;
    const auto it = attrs.find(name);
    if (it == attrs.end()) return std::nullopt;
    return it->second;
}

const std::map<std::string, std::vector<std::string>>& Reader::string_attributes() const {
    return port_.meta().string_attrs;
}

const std::map<std::string, double>& Reader::double_attributes() const {
    return port_.meta().double_attrs;
}

void Reader::end_step() {
    if (step_t0_ > 0.0 && obs::enabled()) {
        // Step span: this rank's consume session — reads and processing
        // between acquire and release (acquire's wait is WaitIn).
        obs::SpanStore::global().record(port_.stream_name(), port_.current_step(),
                                        obs::SegmentKind::Consume, step_t0_,
                                        obs::steady_seconds(), port_.rank());
        step_t0_ = 0.0;
    }
    port_.end_step();
}

}  // namespace sb::adios
