// Minimal XML parser for ADIOS-style configuration files.
//
// ADIOS reads an XML file at run time describing each output group: the
// variables, their types, and the named dimensions that size the arrays
// (paper §IV: "ADIOS expects multi-dimensional arrays to be packed linearly,
// with the variables describing the dimensions specified in an XML
// configuration file").  This parser supports the subset those files need:
// nested elements, attributes (single- or double-quoted), self-closing tags,
// comments, and XML declarations.  Text content is preserved but unused.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sb::adios {

struct XmlNode {
    std::string name;
    std::map<std::string, std::string> attrs;
    std::vector<XmlNode> children;
    std::string text;

    /// First child with the given element name, or nullptr.
    const XmlNode* child(const std::string& element) const;

    /// All children with the given element name.
    std::vector<const XmlNode*> children_named(const std::string& element) const;

    /// Attribute value; throws std::runtime_error when missing.
    const std::string& attr(const std::string& key) const;

    /// Attribute value or a default.
    std::string attr_or(const std::string& key, const std::string& dflt) const;
};

/// Parses a document and returns its root element.
/// Throws std::runtime_error with a line number on malformed input.
XmlNode parse_xml(const std::string& text);

/// Reads and parses a file.
XmlNode parse_xml_file(const std::string& path);

}  // namespace sb::adios
