#include "adios/writer.hpp"

#include <cctype>
#include <stdexcept>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace sb::adios {

Writer::Writer(flexpath::Fabric& fabric, const std::string& stream_name,
               GroupDef group, int rank, int nranks,
               const flexpath::StreamOptions& opts)
    : group_(std::move(group)), port_(fabric, stream_name, rank, nranks, opts),
      rank_(rank) {
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"stream", stream_name}};
    steps_written_ = &reg.counter("adios.steps_written", labels);
    vars_written_ = &reg.counter("adios.vars_written", labels);
}

void Writer::usage(const std::string& what) const {
    if (!check::enabled()) return;
    check::report(check::Kind::Usage, "adios::Writer group '" + group_.name +
                                          "' rank " + std::to_string(rank_) + ": " +
                                          what);
}

void Writer::begin_step() {
    if (in_step_) {
        usage("begin_step with a step already in progress");
        throw std::logic_error("adios::Writer: begin_step twice");
    }
    in_step_ = true;
    step_t0_ = obs::enabled() ? obs::steady_seconds() : 0.0;
    dims_.clear();
    // Static group attributes ride on every step (rank 0 is enough, but all
    // ranks agreeing is also fine — the stream verifies consistency).
    if (rank_ == 0) {
        for (const auto& [name, values] : group_.attributes) {
            port_.put_attr(name, values);
        }
    }
}

void Writer::set_dimension(const std::string& name, std::uint64_t value) {
    if (!in_step_) throw std::logic_error("adios::Writer: set_dimension outside a step");
    const VarSpec* spec = group_.find(name);
    if (!spec || !spec->is_scalar()) {
        throw std::logic_error("adios::Writer: dimension '" + name +
                               "' is not a scalar variable of group '" + group_.name + "'");
    }
    const auto [it, inserted] = dims_.emplace(name, value);
    if (!inserted && it->second != value) {
        throw std::logic_error("adios::Writer: conflicting values for dimension '" +
                               name + "'");
    }
    if (rank_ == 0 && inserted) {
        flexpath::VarDecl decl;
        decl.name = name;
        decl.kind = DataKind::UInt64;
        decl.global_shape = util::NdShape{};
        port_.declare(decl);
        port_.put<std::uint64_t>(name, util::Box{},
                                 std::span<const std::uint64_t>(&value, 1));
    }
}

util::NdShape Writer::resolve_shape(const VarSpec& spec) const {
    std::vector<std::uint64_t> dims;
    dims.reserve(spec.dimensions.size());
    for (const std::string& d : spec.dimensions) {
        if (!d.empty() && std::isdigit(static_cast<unsigned char>(d[0]))) {
            dims.push_back(std::stoull(d));
            continue;
        }
        const auto it = dims_.find(d);
        if (it == dims_.end()) {
            throw std::logic_error("adios::Writer: dimension '" + d +
                                   "' not set this step (call set_dimension)");
        }
        dims.push_back(it->second);
    }
    return util::NdShape(std::move(dims));
}

void Writer::write_raw(const std::string& var, const util::Box& box,
                       std::shared_ptr<const std::vector<std::byte>> data) {
    if (!in_step_) {
        usage("write of '" + var + "' outside begin_step/end_step");
        throw std::logic_error("adios::Writer: write outside a step");
    }
    const VarSpec* spec = group_.find(var);
    if (!spec) {
        throw std::logic_error("adios::Writer: variable '" + var +
                               "' not declared in group '" + group_.name + "'");
    }
    flexpath::VarDecl decl;
    decl.name = var;
    decl.kind = spec->kind;
    decl.global_shape = resolve_shape(*spec);
    decl.dim_labels = spec->dimensions;
    port_.declare(decl);
    port_.put(var, box, std::move(data));
    vars_written_->inc();
}

std::span<std::byte> Writer::put_view(const std::string& var, const util::Box& box) {
    if (!in_step_) {
        usage("put_view of '" + var + "' outside begin_step/end_step");
        throw std::logic_error("adios::Writer: put_view outside a step");
    }
    const VarSpec* spec = group_.find(var);
    if (!spec) {
        throw std::logic_error("adios::Writer: variable '" + var +
                               "' not declared in group '" + group_.name + "'");
    }
    flexpath::VarDecl decl;
    decl.name = var;
    decl.kind = spec->kind;
    decl.global_shape = resolve_shape(*spec);
    decl.dim_labels = spec->dimensions;
    port_.declare(decl);
    const std::span<std::byte> view = port_.put_view(var, box);
    vars_written_->inc();
    return view;
}

void Writer::write_attribute(const std::string& name, std::vector<std::string> values) {
    if (!in_step_) {
        usage("attribute '" + name + "' outside begin_step/end_step");
        throw std::logic_error("adios::Writer: attribute outside a step");
    }
    port_.put_attr(name, std::move(values));
}

void Writer::write_attribute(const std::string& name, double value) {
    if (!in_step_) {
        usage("attribute '" + name + "' outside begin_step/end_step");
        throw std::logic_error("adios::Writer: attribute outside a step");
    }
    port_.put_attr(name, value);
}

void Writer::end_step() {
    if (!in_step_) {
        usage("end_step without begin_step (double end_step?)");
        throw std::logic_error("adios::Writer: end_step without begin_step");
    }
    in_step_ = false;
    if (step_t0_ > 0.0 && obs::enabled()) {
        // Step span: this rank's publish session, closed *before* the
        // submit so queue backpressure lands in BackpressureOut (recorded
        // by the stream), not double-counted here.
        obs::SpanStore::global().record(port_.stream_name(), port_.steps_written(),
                                        obs::SegmentKind::Produce, step_t0_,
                                        obs::steady_seconds(), rank_);
    }
    port_.end_step();
    steps_written_->inc();
}

void Writer::close() { port_.close(); }

}  // namespace sb::adios
