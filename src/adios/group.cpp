#include "adios/group.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "adios/xml.hpp"

namespace sb::adios {

DataKind parse_type_name(const std::string& t) {
    if (t == "double" || t == "real*8") return DataKind::Float64;
    if (t == "float" || t == "real" || t == "real*4") return DataKind::Float32;
    if (t == "integer" || t == "int" || t == "integer*4") return DataKind::Int32;
    if (t == "long" || t == "integer*8") return DataKind::Int64;
    if (t == "unsigned long" || t == "unsigned_long") return DataKind::UInt64;
    if (t == "byte") return DataKind::Byte;
    if (t == "string") return DataKind::String;
    throw std::runtime_error("adios: unknown type name '" + t + "'");
}

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(',', start);
        if (end == std::string::npos) end = s.size();
        std::string tok = s.substr(start, end - start);
        // trim
        while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.front()))) {
            tok.erase(tok.begin());
        }
        while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.back()))) {
            tok.pop_back();
        }
        if (!tok.empty()) out.push_back(std::move(tok));
        if (end == s.size()) break;
        start = end + 1;
    }
    return out;
}

const VarSpec* GroupDef::find(const std::string& var_name) const noexcept {
    for (const auto& v : vars) {
        if (v.name == var_name) return &v;
    }
    return nullptr;
}

namespace {

GroupDef group_from_node(const XmlNode& g) {
    GroupDef def;
    def.name = g.attr("name");
    for (const XmlNode* v : g.children_named("var")) {
        VarSpec spec;
        spec.name = v->attr("name");
        spec.kind = parse_type_name(v->attr_or("type", "double"));
        spec.dimensions = split_csv(v->attr_or("dimensions", ""));
        def.vars.push_back(std::move(spec));
    }
    for (const XmlNode* a : g.children_named("attribute")) {
        def.attributes[a->attr("name")] = split_csv(a->attr("value"));
    }
    return def;
}

GroupDef parse_config(const std::string& xml_text,
                      const std::optional<std::string>& group) {
    const XmlNode root = parse_xml(xml_text);
    if (root.name != "adios-config") {
        throw std::runtime_error("adios: root element must be <adios-config>, got <" +
                                 root.name + ">");
    }
    const XmlNode* chosen = nullptr;
    for (const XmlNode* g : root.children_named("adios-group")) {
        if (!group || g->attr("name") == *group) {
            chosen = g;
            break;
        }
    }
    if (!chosen) {
        throw std::runtime_error("adios: config has no matching <adios-group>");
    }
    GroupDef def = group_from_node(*chosen);
    for (const XmlNode* t : root.children_named("transport")) {
        if (t->attr_or("group", def.name) == def.name) {
            def.transport = t->attr_or("method", "FLEXPATH");
        }
    }
    return def;
}

}  // namespace

GroupDef GroupDef::from_xml(const std::string& xml_text) {
    return parse_config(xml_text, std::nullopt);
}

GroupDef GroupDef::from_xml(const std::string& xml_text, const std::string& group) {
    return parse_config(xml_text, group);
}

GroupDef GroupDef::from_xml_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("adios: cannot open config file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return from_xml(ss.str());
}

}  // namespace sb::adios
