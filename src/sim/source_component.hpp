// Shared infrastructure for the simulation driver components.
//
// The paper drives its workflows with LAMMPS, GTCP, and GROMACS, each
// modified (~70 lines + a ~25-line ADIOS XML file) to publish its output
// through ADIOS/FlexPath.  The three stand-in drivers here (src/sim) are
// configured the same way a launch script configures the real codes: an
// input deck of key=value lines, passed either as a file ("lammps <
// in.cracksm" in Fig. 8 — the '<' redirection is folded into an argument by
// the script parser) or inline ("lammps rows=64 cols=64 steps=5").
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/argparse.hpp"

namespace sb::sim {

/// key=value configuration, from inline args and/or deck files.
class Deck {
public:
    /// Each argument is either "key=value" or the path of a deck file whose
    /// lines are "key = value" (with '#' comments).  Later settings win.
    static Deck from_args(const util::ArgList& args);

    static Deck from_file(const std::string& path);

    void set(const std::string& key, std::string value);

    bool has(const std::string& key) const;
    std::string get(const std::string& key, const std::string& dflt) const;
    std::uint64_t get_u64(const std::string& key, std::uint64_t dflt) const;
    double get_double(const std::string& key, double dflt) const;
    bool get_bool(const std::string& key, bool dflt) const;

    const std::map<std::string, std::string>& entries() const noexcept { return kv_; }

private:
    std::map<std::string, std::string> kv_;
};

/// Registers the simulation drivers and the all-in-one baseline with the
/// component registry: "lammps", "gtcp", "gromacs", "aio".
void register_simulations();

/// Deterministic per-cell noise in [-1, 1): a SplitMix64 hash of the seeds,
/// so simulations are reproducible and rank-count independent.
double hash_noise(std::uint64_t a, std::uint64_t b, std::uint64_t c);

}  // namespace sb::sim
