#include "sim/crack_sim.hpp"

#include <cmath>
#include <optional>

#include "adios/writer.hpp"
#include "util/ndarray.hpp"
#include "util/timer.hpp"

namespace sb::sim {

CrackSimParams CrackSimParams::from_deck(const Deck& d) {
    CrackSimParams p;
    p.rows = d.get_u64("rows", p.rows);
    p.cols = d.get_u64("cols", p.cols);
    p.io_steps = d.get_u64("steps", p.io_steps);
    p.substeps = d.get_u64("substeps", p.substeps);
    p.dt = d.get_double("dt", p.dt);
    p.stiffness = d.get_double("stiffness", p.stiffness);
    p.mass = d.get_double("mass", p.mass);
    p.strain = d.get_double("strain", p.strain);
    p.pull = d.get_double("pull", p.pull);
    p.damping = d.get_double("damping", p.damping);
    p.break_strain = d.get_double("break_strain", p.break_strain);
    p.ramp_steps = d.get_u64("ramp_steps", p.ramp_steps);
    p.notch = d.get_u64("notch", p.cols / 4);
    p.stream = d.get("stream", p.stream);
    p.array = d.get("array", p.array);
    p.output = d.get_bool("output", p.output);
    if (p.rows < 2 || p.cols < 2) {
        throw util::ArgError("lammps: rows and cols must be at least 2");
    }
    return p;
}

CrackSim::CrackSim(const CrackSimParams& p, std::uint64_t row_begin,
                   std::uint64_t row_count)
    : p_(p), row_begin_(row_begin), row_count_(row_count) {
    const std::size_t n = static_cast<std::size_t>(row_count * p.cols);
    ux_.assign(n, 0.0);
    uy_.assign(n, 0.0);
    vx_.assign(n, 0.0);
    vy_.assign(n, 0.0);
    vz_.assign(n, 0.0);
    if (p_.pull == 0.0) p_.pull = p_.stiffness * p_.strain;
    if (p_.notch == 0) p_.notch = p_.cols / 4;
    // Pre-strained equilibrium plus deterministic thermal seed velocities
    // (both depend only on the *global* row, so the trajectory is
    // independent of the rank layout).
    for (std::uint64_t r = 0; r < row_count; ++r) {
        for (std::uint64_t c = 0; c < p_.cols; ++c) {
            const std::uint64_t gr = row_begin + r;
            uy_[idx(r, c)] = p_.strain * (static_cast<double>(gr) -
                                          static_cast<double>(p_.rows - 1) / 2.0);
            vx_[idx(r, c)] = 0.01 * hash_noise(gr, c, 1);
            vy_[idx(r, c)] = 0.01 * hash_noise(gr, c, 2);
            vz_[idx(r, c)] = 0.005 * hash_noise(gr, c, 3);
        }
    }
    bond_right_.assign(n, 1);
    bond_down_.assign(static_cast<std::size_t>((row_count + 1) * p.cols), 1);
    // The notch: a horizontal slit at mid-height cutting the first `notch`
    // vertical bonds — the crack's seed.
    const std::uint64_t mid = p_.rows / 2 - 1;  // down-bond row index
    for (std::uint64_t c = 0; c < std::min(p_.notch, p_.cols); ++c) {
        const std::int64_t local = static_cast<std::int64_t>(mid) -
                                   static_cast<std::int64_t>(row_begin);
        if (local >= -1 && local < static_cast<std::int64_t>(row_count)) {
            down(local, c) = 0;
        }
    }
}

std::vector<double> CrackSim::boundary_row(bool top) const {
    std::vector<double> out(2 * p_.cols);
    if (row_count_ == 0) return out;
    const std::uint64_t r = top ? 0 : row_count_ - 1;
    for (std::uint64_t c = 0; c < p_.cols; ++c) {
        out[c] = ux_[idx(r, c)];
        out[p_.cols + c] = uy_[idx(r, c)];
    }
    return out;
}

void CrackSim::substep(std::span<const double> halo_above,
                       std::span<const double> halo_below) {
    if (row_count_ == 0) return;
    const double k = p_.stiffness;
    const double inv_m = 1.0 / p_.mass;
    // Quasi-static loading: ramp the strain so it concentrates at the
    // notch tip instead of shock-shearing the boundary rows.
    const double load =
        p_.pull * (p_.ramp_steps == 0
                       ? 1.0
                       : std::min(1.0, static_cast<double>(++substeps_done_) /
                                           static_cast<double>(p_.ramp_steps)));
    const std::size_t n = ux_.size();
    std::vector<double> fx(n, 0.0), fy(n, 0.0);

    auto u_at = [&](std::int64_t lr, std::uint64_t c, double& x, double& y) {
        if (lr < 0) {
            x = halo_above.empty() ? 0.0 : halo_above[c];
            y = halo_above.empty() ? 0.0 : halo_above[p_.cols + c];
        } else if (lr >= static_cast<std::int64_t>(row_count_)) {
            x = halo_below.empty() ? 0.0 : halo_below[c];
            y = halo_below.empty() ? 0.0 : halo_below[p_.cols + c];
        } else {
            x = ux_[idx(static_cast<std::uint64_t>(lr), c)];
            y = uy_[idx(static_cast<std::uint64_t>(lr), c)];
        }
    };

    // Harmonic bond forces; overstretched bonds break permanently.
    auto bond_force = [&](std::uint64_t r, std::uint64_t c, std::int64_t nr,
                          std::uint64_t nc, std::uint8_t& alive) {
        if (!alive) return;
        double nx, ny;
        u_at(nr, nc, nx, ny);
        const double dx = nx - ux_[idx(r, c)];
        const double dy = ny - uy_[idx(r, c)];
        if (dx * dx + dy * dy > p_.break_strain * p_.break_strain) {
            alive = 0;
            ++broken_;
            return;
        }
        fx[idx(r, c)] += k * dx;
        fy[idx(r, c)] += k * dy;
    };

    for (std::uint64_t r = 0; r < row_count_; ++r) {
        const std::uint64_t gr = row_begin_ + r;
        for (std::uint64_t c = 0; c < p_.cols; ++c) {
            // Right and left bonds (owned by the left particle).
            if (c + 1 < p_.cols) {
                bond_force(r, c, static_cast<std::int64_t>(r), c + 1,
                           bond_right_[idx(r, c)]);
            }
            if (c > 0 && bond_right_[idx(r, c - 1)]) {
                double nx, ny;
                u_at(static_cast<std::int64_t>(r), c - 1, nx, ny);
                fx[idx(r, c)] += k * (nx - ux_[idx(r, c)]);
                fy[idx(r, c)] += k * (ny - uy_[idx(r, c)]);
            }
            // Down bond (to gr+1) and up bond (from gr-1).
            if (gr + 1 < p_.rows) {
                bond_force(r, c, static_cast<std::int64_t>(r) + 1, c,
                           down(static_cast<std::int64_t>(r), c));
            }
            if (gr > 0) {
                // The up-bond is owned by the row above.  When that row
                // lives on another rank, this rank must apply the breaking
                // criterion itself — the arithmetic is symmetric
                // (|u_a - u_b| both sides), so the two ranks always agree.
                bond_force(r, c, static_cast<std::int64_t>(r) - 1, c,
                           down(static_cast<std::int64_t>(r) - 1, c));
            }
            // Strain: pull the physical top and bottom rows apart.
            if (gr == 0) fy[idx(r, c)] -= load;
            if (gr + 1 == p_.rows) fy[idx(r, c)] += load;
        }
    }

    // Semi-implicit Euler with light damping; vz is an independent damped
    // thermal oscillation giving the third velocity component.
    for (std::uint64_t r = 0; r < row_count_; ++r) {
        for (std::uint64_t c = 0; c < p_.cols; ++c) {
            const std::size_t i = idx(r, c);
            vx_[i] = (1.0 - p_.damping) * vx_[i] + fx[i] * inv_m * p_.dt;
            vy_[i] = (1.0 - p_.damping) * vy_[i] + fy[i] * inv_m * p_.dt;
            vz_[i] = (1.0 - p_.damping) * vz_[i] - p_.stiffness * 0.1 * vz_[i] * p_.dt;
            ux_[i] += vx_[i] * p_.dt;
            uy_[i] += vy_[i] * p_.dt;
        }
    }
}

std::vector<double> CrackSim::dump() const {
    std::vector<double> out(ux_.size() * 5);
    for (std::uint64_t r = 0; r < row_count_; ++r) {
        const std::uint64_t gr = row_begin_ + r;
        for (std::uint64_t c = 0; c < p_.cols; ++c) {
            const std::size_t i = idx(r, c);
            double* row = &out[i * 5];
            row[0] = static_cast<double>(gr * p_.cols + c + 1);  // ID (1-based)
            row[1] = (gr == 0 || gr + 1 == p_.rows) ? 2.0 : 1.0;  // Type
            row[2] = vx_[i];
            row[3] = vy_[i];
            row[4] = vz_[i];
        }
    }
    return out;
}

std::uint64_t CrackSim::crack_extent() const {
    const std::uint64_t mid = p_.rows / 2 - 1;
    const std::int64_t local =
        static_cast<std::int64_t>(mid) - static_cast<std::int64_t>(row_begin_);
    if (local < -1 || local >= static_cast<std::int64_t>(row_count_)) return 0;
    std::uint64_t n = 0;
    for (std::uint64_t c = std::min(p_.notch, p_.cols); c < p_.cols; ++c) {
        if (!bond_down_[static_cast<std::size_t>(
                (local + 1) * static_cast<std::int64_t>(p_.cols)) + c]) {
            ++n;
        }
    }
    return n;
}

double CrackSim::kinetic_energy() const {
    double e = 0.0;
    for (std::size_t i = 0; i < vx_.size(); ++i) {
        e += vx_[i] * vx_[i] + vy_[i] * vy_[i] + vz_[i] * vz_[i];
    }
    return 0.5 * p_.mass * e;
}

namespace {

std::string lammps_xml(const std::string& array) {
    return "<adios-config>\n"
           "  <adios-group name=\"particle_dump\">\n"
           "    <var name=\"natoms\" type=\"unsigned long\"/>\n"
           "    <var name=\"nquantities\" type=\"unsigned long\"/>\n"
           "    <var name=\"" + array + "\" type=\"double\" "
           "dimensions=\"natoms,nquantities\"/>\n"
           "    <attribute name=\"" + array + ".header.1\" "
           "value=\"ID,Type,vx,vy,vz\"/>\n"
           "  </adios-group>\n"
           "  <transport group=\"particle_dump\" method=\"FLEXPATH\"/>\n"
           "</adios-config>\n";
}

}  // namespace

void CrackSimComponent::run(core::RunContext& ctx, const util::ArgList& args) {
    const Deck deck = Deck::from_args(args);
    const CrackSimParams p = CrackSimParams::from_deck(deck);

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    const auto [row_begin, row_count] = util::partition_range(p.rows, rank, size);
    CrackSim sim(p, row_begin, row_count);

    // Nearest owning neighbours for the halo exchange (ranks with empty
    // bands are skipped so every band talks to the adjacent *band*).
    const auto counts = ctx.comm.allgather<std::uint64_t>(row_count);
    int above = -1, below = -1;
    for (int r = rank - 1; r >= 0; --r) {
        if (counts[static_cast<std::size_t>(r)] > 0) { above = r; break; }
    }
    for (int r = rank + 1; r < size; ++r) {
        if (counts[static_cast<std::size_t>(r)] > 0) { below = r; break; }
    }
    if (row_count == 0) above = below = -1;

    std::optional<adios::Writer> writer;
    if (p.output) {
        const adios::GroupDef group =
            deck.has("xml") ? adios::GroupDef::from_xml_file(deck.get("xml", ""))
                            : adios::GroupDef::from_xml(lammps_xml(p.array));
        writer.emplace(ctx.fabric, p.stream, group, rank, size, ctx.stream_options);
    }

    constexpr int kHaloTag = 71;
    for (std::uint64_t step = 0; step < p.io_steps; ++step) {
        util::WallTimer timer;
        for (std::uint64_t s = 0; s < p.substeps; ++s) {
            // Exchange boundary displacement rows with the adjacent bands.
            std::vector<double> halo_above, halo_below;
            if (above >= 0) {
                ctx.comm.send<double>(above, kHaloTag, sim.boundary_row(true));
            }
            if (below >= 0) {
                ctx.comm.send<double>(below, kHaloTag, sim.boundary_row(false));
            }
            if (above >= 0) halo_above = ctx.comm.recv<double>(above, kHaloTag);
            if (below >= 0) halo_below = ctx.comm.recv<double>(below, kHaloTag);
            sim.substep(halo_above, halo_below);
        }

        if (writer) {
            const std::vector<double> block = sim.dump();
            writer->begin_step();
            writer->set_dimension("natoms", p.particles());
            writer->set_dimension("nquantities", 5);
            const util::Box box({row_begin * p.cols, 0}, {row_count * p.cols, 5});
            writer->write<double>(p.array, block, box);
            writer->end_step();
        }
        record_step(ctx, step, timer.seconds(), 0, row_count * p.cols * 5 * 8);
    }
    if (writer) writer->close();
}

}  // namespace sb::sim
