// ToroidSim: the GTCP stand-in (paper §V.A, Fig. 4).
//
// GTCP is a particle-in-cell Tokamak code: it splits a toroidally confined
// plasma into toroidal slices, each made of grid points, and outputs 7
// physical properties per grid point.  ToroidSim reproduces that output
// schema — a (toroidal_rank, gridpoint, quantity) 3-D array — with smooth
// synthetic plasma fields evolving over time: a pressure ridge drifts
// around the torus, temperature follows a radial profile, and a turbulent
// component is injected with deterministic per-cell noise.  The GTCP
// workflow (Select -> Dim-Reduce -> Dim-Reduce -> Histogram) consumes it
// exactly as the paper's Figure 6 shows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "sim/source_component.hpp"

namespace sb::sim {

/// The 7 per-gridpoint properties, in output order.
extern const std::vector<std::string> kToroidQuantities;

struct ToroidSimParams {
    std::uint64_t slices = 8;       // toroidal ranks
    std::uint64_t gridpoints = 64;  // per slice
    std::uint64_t io_steps = 4;
    std::uint64_t work = 1;  // extra field-evaluation sweeps per step (compute load)

    std::string stream = "gtcp.fp";
    std::string array = "field3d";
    bool output = true;

    static ToroidSimParams from_deck(const Deck& d);
    std::uint64_t quantities() const noexcept { return 7; }
    std::uint64_t bytes_per_step() const noexcept {
        return slices * gridpoints * quantities() * 8;
    }
};

/// Evaluates the plasma state of one gridpoint range of one slice at one
/// timestep; deterministic in (slice, gridpoint, step).
class ToroidField {
public:
    explicit ToroidField(const ToroidSimParams& p) : p_(p) {}

    /// Fills `out` (row-major (g_count x 7)) for slice `s`, gridpoints
    /// [g_begin, g_begin + g_count), at timestep `t`.
    void evaluate(std::uint64_t s, std::uint64_t g_begin, std::uint64_t g_count,
                  std::uint64_t t, std::span<double> out) const;

private:
    ToroidSimParams p_;
};

/// The "gtcp" driver component.  Deck keys: slices, gridpoints, steps,
/// work, stream, array, output, xml.
class ToroidSimComponent : public core::Component {
public:
    std::string name() const override { return "gtcp"; }
    std::string usage() const override {
        return "gtcp [deck-file] [key=value ...]   (keys: slices gridpoints steps "
               "work stream array output xml)";
    }
    core::Ports ports(const util::ArgList& args) const override {
        const Deck deck = Deck::from_args(args);
        const auto p = ToroidSimParams::from_deck(deck);
        if (!p.output) return core::Ports{};
        return core::Ports{{}, {p.stream}};
    }
    core::Contract contract(const util::ArgList& args) const override {
        const Deck deck = Deck::from_args(args);
        const auto p = ToroidSimParams::from_deck(deck);
        core::Contract c;
        c.known = true;
        if (!p.output) return c;
        core::OutputContract out;
        out.stream = p.stream;
        out.array = p.array;
        if (deck.has("xml")) {
            // A user-supplied ADIOS group can publish anything.
            out.rule = core::OutputContract::Shape::Unknown;
            out.kind = core::OutputContract::Kind::Unknown;
        } else {
            out.rule = core::OutputContract::Shape::Source;
            out.kind = core::OutputContract::Kind::Float64;
            out.shape = {core::SymDim::constant(p.slices),
                         core::SymDim::constant(p.gridpoints),
                         core::SymDim::constant(p.quantities())};
            out.set_headers[2] = kToroidQuantities;
        }
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(core::RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::sim
