#include "sim/source_component.hpp"

#include <fstream>
#include <stdexcept>

#include "core/registry.hpp"
#include "sim/all_in_one.hpp"
#include "sim/crack_sim.hpp"
#include "sim/md_sim.hpp"
#include "sim/toroid_sim.hpp"

namespace sb::sim {

Deck Deck::from_args(const util::ArgList& args) {
    Deck d;
    for (const std::string& a : args.raw()) {
        const auto eq = a.find('=');
        if (eq == std::string::npos) {
            // A deck file: merge its settings.
            for (const auto& [k, v] : Deck::from_file(a).kv_) d.kv_[k] = v;
        } else {
            d.kv_[a.substr(0, eq)] = a.substr(eq + 1);
        }
    }
    return d;
}

Deck Deck::from_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw util::ArgError("deck: cannot open '" + path + "'");
    Deck d;
    std::string line;
    while (std::getline(in, line)) {
        if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
        const auto eq = line.find('=');
        if (eq == std::string::npos) continue;
        auto trim = [](std::string s) {
            while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
                s.erase(s.begin());
            }
            while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
                s.pop_back();
            }
            return s;
        };
        const std::string key = trim(line.substr(0, eq));
        if (!key.empty()) d.kv_[key] = trim(line.substr(eq + 1));
    }
    return d;
}

void Deck::set(const std::string& key, std::string value) { kv_[key] = std::move(value); }

bool Deck::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Deck::get(const std::string& key, const std::string& dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
}

std::uint64_t Deck::get_u64(const std::string& key, std::uint64_t dflt) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    try {
        return std::stoull(it->second);
    } catch (const std::exception&) {
        throw util::ArgError("deck: '" + key + "' must be an unsigned integer, got '" +
                             it->second + "'");
    }
}

double Deck::get_double(const std::string& key, double dflt) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    try {
        return std::stod(it->second);
    } catch (const std::exception&) {
        throw util::ArgError("deck: '" + key + "' must be a number, got '" + it->second +
                             "'");
    }
}

bool Deck::get_bool(const std::string& key, bool dflt) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    const std::string& v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
    if (v == "0" || v == "false" || v == "no" || v == "off") return false;
    throw util::ArgError("deck: '" + key + "' must be a boolean, got '" + v + "'");
}

double hash_noise(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    // SplitMix64 over the mixed seeds.
    std::uint64_t z = a * 0x9E3779B97F4A7C15ull + b * 0xBF58476D1CE4E5B9ull +
                      c * 0x94D049BB133111EBull;
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    z ^= z >> 31;
    // Map the top 53 bits into [-1, 1).
    return static_cast<double>(z >> 11) * (2.0 / 9007199254740992.0) - 1.0;
}

void register_simulations() {
    static const bool once = [] {
        core::register_component("lammps",
                                 [] { return std::make_unique<CrackSimComponent>(); });
        core::register_component("gtcp",
                                 [] { return std::make_unique<ToroidSimComponent>(); });
        core::register_component("gromacs",
                                 [] { return std::make_unique<MdSimComponent>(); });
        core::register_component("aio",
                                 [] { return std::make_unique<AllInOne>(); });
        return true;
    }();
    (void)once;
}

}  // namespace sb::sim
