// MdSim: the GROMACS stand-in (paper §V.A).
//
// "Among other quantities, GROMACS outputs the three-dimensional
// coordinates of the atoms involved in the simulation at regular
// intervals."  MdSim reproduces that: N atoms undergoing damped Langevin
// dynamics with a weak outward drift, so the cloud of atoms spreads over
// time — the GROMACS workflow (Magnitude -> Histogram of |x|) shows the
// evolving spread exactly as the paper's Figure 7 describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "sim/source_component.hpp"

namespace sb::sim {

struct MdSimParams {
    std::uint64_t atoms = 512;
    std::uint64_t io_steps = 4;
    std::uint64_t substeps = 5;
    double dt = 0.05;
    double drift = 0.4;        // outward drift speed
    double temperature = 0.3;  // thermal kick amplitude
    double damping = 0.1;

    std::string stream = "gmx.fp";
    std::string array = "coords";
    bool output = true;

    static MdSimParams from_deck(const Deck& d);
    std::uint64_t bytes_per_step() const noexcept { return atoms * 3 * 8; }
};

/// One rank's contiguous block of atoms.
class MdSim {
public:
    MdSim(const MdSimParams& p, std::uint64_t atom_begin, std::uint64_t atom_count);

    /// One fine Langevin step at global substep index `t` (for the
    /// deterministic thermal noise).
    void substep(std::uint64_t t);

    /// Row-major (atom_count x 3) coordinates.
    const std::vector<double>& coords() const noexcept { return x_; }

    /// Mean distance from the origin (diagnostics/tests).
    double mean_radius() const;

private:
    MdSimParams p_;
    std::uint64_t atom_begin_, atom_count_;
    std::vector<double> x_;  // positions, (n x 3)
    std::vector<double> v_;  // velocities, (n x 3)
};

/// The "gromacs" driver component.  Deck keys: atoms, steps, substeps, dt,
/// drift, temperature, damping, stream, array, output, xml.
class MdSimComponent : public core::Component {
public:
    std::string name() const override { return "gromacs"; }
    std::string usage() const override {
        return "gromacs [deck-file] [key=value ...]   (keys: atoms steps substeps "
               "stream array output xml)";
    }
    core::Ports ports(const util::ArgList& args) const override {
        const Deck deck = Deck::from_args(args);
        const auto p = MdSimParams::from_deck(deck);
        if (!p.output) return core::Ports{};
        return core::Ports{{}, {p.stream}};
    }
    core::Contract contract(const util::ArgList& args) const override {
        const Deck deck = Deck::from_args(args);
        const auto p = MdSimParams::from_deck(deck);
        core::Contract c;
        c.known = true;
        if (!p.output) return c;
        core::OutputContract out;
        out.stream = p.stream;
        out.array = p.array;
        if (deck.has("xml")) {
            out.rule = core::OutputContract::Shape::Unknown;
            out.kind = core::OutputContract::Kind::Unknown;
        } else {
            out.rule = core::OutputContract::Shape::Source;
            out.kind = core::OutputContract::Kind::Float64;
            out.shape = {core::SymDim::constant(p.atoms),
                         core::SymDim::constant(3)};
            out.set_headers[1] = {"x", "y", "z"};
        }
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(core::RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::sim
