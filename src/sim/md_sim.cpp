#include "sim/md_sim.hpp"

#include <cmath>
#include <optional>

#include "adios/writer.hpp"
#include "util/ndarray.hpp"
#include "util/timer.hpp"

namespace sb::sim {

MdSimParams MdSimParams::from_deck(const Deck& d) {
    MdSimParams p;
    p.atoms = d.get_u64("atoms", p.atoms);
    p.io_steps = d.get_u64("steps", p.io_steps);
    p.substeps = d.get_u64("substeps", p.substeps);
    p.dt = d.get_double("dt", p.dt);
    p.drift = d.get_double("drift", p.drift);
    p.temperature = d.get_double("temperature", p.temperature);
    p.damping = d.get_double("damping", p.damping);
    p.stream = d.get("stream", p.stream);
    p.array = d.get("array", p.array);
    p.output = d.get_bool("output", p.output);
    if (p.atoms == 0) throw util::ArgError("gromacs: atoms must be positive");
    return p;
}

MdSim::MdSim(const MdSimParams& p, std::uint64_t atom_begin, std::uint64_t atom_count)
    : p_(p), atom_begin_(atom_begin), atom_count_(atom_count) {
    x_.resize(atom_count * 3);
    v_.assign(atom_count * 3, 0.0);
    // Initial condition: a compact blob around the origin; deterministic in
    // the *global* atom index, so the trajectory is rank-count independent.
    for (std::uint64_t i = 0; i < atom_count; ++i) {
        const std::uint64_t g = atom_begin + i;
        for (std::uint64_t c = 0; c < 3; ++c) {
            x_[i * 3 + c] = 0.5 * hash_noise(g, c, 9999);
        }
    }
}

void MdSim::substep(std::uint64_t t) {
    for (std::uint64_t i = 0; i < atom_count_; ++i) {
        const std::uint64_t g = atom_begin_ + i;
        double* xi = &x_[i * 3];
        double* vi = &v_[i * 3];
        const double r = std::sqrt(xi[0] * xi[0] + xi[1] * xi[1] + xi[2] * xi[2]) + 1e-9;
        for (std::uint64_t c = 0; c < 3; ++c) {
            const double kick = p_.temperature * hash_noise(g, c, t);
            const double outward = p_.drift * xi[c] / r;
            vi[c] = (1.0 - p_.damping) * vi[c] + (outward + kick) * p_.dt;
            xi[c] += vi[c] * p_.dt;
        }
    }
}

double MdSim::mean_radius() const {
    if (atom_count_ == 0) return 0.0;
    double sum = 0.0;
    for (std::uint64_t i = 0; i < atom_count_; ++i) {
        const double* xi = &x_[i * 3];
        sum += std::sqrt(xi[0] * xi[0] + xi[1] * xi[1] + xi[2] * xi[2]);
    }
    return sum / static_cast<double>(atom_count_);
}

namespace {

std::string gromacs_xml(const std::string& array) {
    return "<adios-config>\n"
           "  <adios-group name=\"gmx_coords\">\n"
           "    <var name=\"natoms\" type=\"unsigned long\"/>\n"
           "    <var name=\"ncoords\" type=\"unsigned long\"/>\n"
           "    <var name=\"" + array + "\" type=\"double\" "
           "dimensions=\"natoms,ncoords\"/>\n"
           "    <attribute name=\"" + array + ".header.1\" value=\"x,y,z\"/>\n"
           "  </adios-group>\n"
           "  <transport group=\"gmx_coords\" method=\"FLEXPATH\"/>\n"
           "</adios-config>\n";
}

}  // namespace

void MdSimComponent::run(core::RunContext& ctx, const util::ArgList& args) {
    const Deck deck = Deck::from_args(args);
    const MdSimParams p = MdSimParams::from_deck(deck);

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    const auto [a_begin, a_count] = util::partition_range(p.atoms, rank, size);
    MdSim sim(p, a_begin, a_count);

    std::optional<adios::Writer> writer;
    if (p.output) {
        const adios::GroupDef group =
            deck.has("xml") ? adios::GroupDef::from_xml_file(deck.get("xml", ""))
                            : adios::GroupDef::from_xml(gromacs_xml(p.array));
        writer.emplace(ctx.fabric, p.stream, group, rank, size, ctx.stream_options);
    }

    for (std::uint64_t step = 0; step < p.io_steps; ++step) {
        util::WallTimer timer;
        for (std::uint64_t s = 0; s < p.substeps; ++s) {
            sim.substep(step * p.substeps + s);
        }
        if (writer) {
            writer->begin_step();
            writer->set_dimension("natoms", p.atoms);
            writer->set_dimension("ncoords", 3);
            const util::Box box({a_begin, 0}, {a_count, 3});
            writer->write<double>(p.array, sim.coords(), box);
            writer->end_step();
        }
        record_step(ctx, step, timer.seconds(), 0, a_count * 3 * 8);
    }
    if (writer) writer->close();
}

}  // namespace sb::sim
