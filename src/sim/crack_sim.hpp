// CrackSim: the LAMMPS stand-in (paper §V.A).
//
// The paper configures LAMMPS "to simulate a disruption (a 'crack') in a
// thin layer of particles and output 5 numerical properties describing each
// particle" (ID, Type, vx, vy, vz).  CrackSim reproduces that workload: a
// 2-D lattice of particles coupled by harmonic bonds, with a pre-cut notch
// and an applied strain pulling the layer apart.  Bonds that stretch past a
// threshold break permanently, so the crack propagates and the velocity
// distribution evolves over time — exactly the quantity the LAMMPS workflow
// histograms.
//
// The simulation is domain-decomposed by rows across the component's ranks
// with per-substep halo exchange of boundary displacements, so the driver
// exercises the same P2P communication pattern a real MD code would.
#pragma once

#include <cstdint>
#include <vector>

#include "core/component.hpp"
#include "sim/source_component.hpp"

namespace sb::sim {

struct CrackSimParams {
    std::uint64_t rows = 32;
    std::uint64_t cols = 32;
    std::uint64_t io_steps = 4;    // coarse output timesteps
    std::uint64_t substeps = 5;    // fine integration steps per output
    double dt = 0.05;
    double stiffness = 1.0;
    double mass = 1.0;
    /// Uniform vertical pre-strain the layer starts under.  The lattice is
    /// initialized at the corresponding equilibrium (every vertical bond
    /// stretched by `strain`, held by a matching boundary pull), so the
    /// notch's stress concentration appears within a few substeps and the
    /// crack tears from the notch tip, not from the loaded boundary.
    double strain = 0.45;
    /// Boundary pull force; 0 (default) derives the equilibrium value
    /// stiffness * strain.
    double pull = 0.0;
    double damping = 0.05;
    double break_strain = 0.7;   // bond-breaking displacement threshold
    /// Optional linear ramp of the boundary pull over this many substeps
    /// (0 = full load immediately, which the pre-strain makes safe).
    std::uint64_t ramp_steps = 0;
    std::uint64_t notch = 0;     // pre-cut bond count (0 = cols/4)

    std::string stream = "dump.custom.fp";
    std::string array = "atoms";
    bool output = true;  // false = computation only (Table II "LMP only")

    static CrackSimParams from_deck(const Deck& d);
    std::uint64_t particles() const noexcept { return rows * cols; }
    /// Bytes of one output timestep (particles x 5 doubles).
    std::uint64_t bytes_per_step() const noexcept { return particles() * 5 * 8; }
};

/// One rank's row band of the lattice.
class CrackSim {
public:
    /// Owns rows [row_begin, row_begin + row_count).
    CrackSim(const CrackSimParams& p, std::uint64_t row_begin, std::uint64_t row_count);

    /// Advances one fine step.  `halo_above`/`halo_below` are the (ux, uy)
    /// displacement rows adjacent to this band (2*cols doubles each), empty
    /// at the physical boundary.
    void substep(std::span<const double> halo_above, std::span<const double> halo_below);

    /// Packed (ux, uy) of the band's first/last row, for halo exchange.
    std::vector<double> boundary_row(bool top) const;

    /// This band's output block: row-major (row_count*cols) x 5 of
    /// {ID, Type, vx, vy, vz}.  Type is 2 on the strained boundary rows,
    /// 1 in the interior.
    std::vector<double> dump() const;

    std::uint64_t broken_bonds() const noexcept { return broken_; }
    double kinetic_energy() const;

    /// Count of broken down-bonds in this band's copy of the mid (notch)
    /// bond row, excluding the pre-cut notch itself — the crack's advance.
    std::uint64_t crack_extent() const;

private:
    std::size_t idx(std::uint64_t r, std::uint64_t c) const {
        return static_cast<std::size_t>(r * p_.cols + c);
    }

    CrackSimParams p_;
    std::uint64_t row_begin_, row_count_;
    // Displacements and velocities of the owned particles.
    std::vector<double> ux_, uy_, vx_, vy_, vz_;
    // Bond state: right bonds per owned particle; down bonds for local rows
    // [-1, row_count) (the -1 row's down-bonds attach the band above).
    std::vector<std::uint8_t> bond_right_;
    std::vector<std::uint8_t> bond_down_;  // (row_count + 1) * cols, offset by one row
    std::uint64_t broken_ = 0;
    std::uint64_t substeps_done_ = 0;  // for the quasi-static load ramp

    std::uint8_t& down(std::int64_t local_r, std::uint64_t c) {
        return bond_down_[static_cast<std::size_t>((local_r + 1) * static_cast<std::int64_t>(p_.cols)) + c];
    }
};

/// The "lammps" driver component.  Deck keys: rows, cols, steps (=io_steps),
/// substeps, dt, stiffness, pull, damping, break_strain, notch, stream,
/// array, output, xml (path of an ADIOS config overriding the built-in).
class CrackSimComponent : public core::Component {
public:
    std::string name() const override { return "lammps"; }
    std::string usage() const override {
        return "lammps [deck-file] [key=value ...]   (keys: rows cols steps substeps "
               "stream array output xml ...)";
    }
    core::Ports ports(const util::ArgList& args) const override {
        const Deck deck = Deck::from_args(args);
        const auto p = CrackSimParams::from_deck(deck);
        if (!p.output) return core::Ports{};
        return core::Ports{{}, {p.stream}};
    }
    core::Contract contract(const util::ArgList& args) const override {
        const Deck deck = Deck::from_args(args);
        const auto p = CrackSimParams::from_deck(deck);
        core::Contract c;
        c.known = true;
        if (!p.output) return c;
        core::OutputContract out;
        out.stream = p.stream;
        out.array = p.array;
        if (deck.has("xml")) {
            out.rule = core::OutputContract::Shape::Unknown;
            out.kind = core::OutputContract::Kind::Unknown;
        } else {
            out.rule = core::OutputContract::Shape::Source;
            out.kind = core::OutputContract::Kind::Float64;
            out.shape = {core::SymDim::constant(p.particles()),
                         core::SymDim::constant(5)};
            out.set_headers[1] = {"ID", "Type", "vx", "vy", "vz"};
        }
        c.outputs.push_back(std::move(out));
        return c;
    }
    void run(core::RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::sim
