#include "sim/toroid_sim.hpp"

#include <cmath>
#include <numbers>
#include <optional>

#include "adios/writer.hpp"
#include "util/ndarray.hpp"
#include "util/timer.hpp"

namespace sb::sim {

const std::vector<std::string> kToroidQuantities = {
    "density",      "temperature",        "parallel_pressure",
    "perpendicular_pressure", "energy_flux", "potential", "current"};

ToroidSimParams ToroidSimParams::from_deck(const Deck& d) {
    ToroidSimParams p;
    p.slices = d.get_u64("slices", p.slices);
    p.gridpoints = d.get_u64("gridpoints", p.gridpoints);
    p.io_steps = d.get_u64("steps", p.io_steps);
    p.work = d.get_u64("work", p.work);
    p.stream = d.get("stream", p.stream);
    p.array = d.get("array", p.array);
    p.output = d.get_bool("output", p.output);
    if (p.slices == 0 || p.gridpoints == 0) {
        throw util::ArgError("gtcp: slices and gridpoints must be positive");
    }
    return p;
}

void ToroidField::evaluate(std::uint64_t s, std::uint64_t g_begin,
                           std::uint64_t g_count, std::uint64_t t,
                           std::span<double> out) const {
    using std::numbers::pi;
    const double phi = 2.0 * pi * static_cast<double>(s) / static_cast<double>(p_.slices);
    const double time = 0.1 * static_cast<double>(t);
    for (std::uint64_t gi = 0; gi < g_count; ++gi) {
        const std::uint64_t g = g_begin + gi;
        // Gridpoints wind around the poloidal cross-section: theta is the
        // poloidal angle, rho the normalized minor radius.
        const double theta =
            2.0 * pi * static_cast<double>(g) / static_cast<double>(p_.gridpoints);
        const double rho = 0.2 + 0.8 * std::fmod(static_cast<double>(g) * 0.618033988749,
                                                 1.0);
        const double noise = 0.05 * hash_noise(s, g, t);

        // A pressure ridge drifting toroidally; zonal-flow-like modulation.
        const double ridge = std::exp(-4.0 * std::pow(std::sin((phi - 0.7 * time) / 2.0), 2));
        const double zonal = std::cos(3.0 * theta - 0.5 * time);

        const double density = 1.0 + 0.3 * ridge * (1.0 - rho * rho) + noise;
        const double temperature = 2.0 * (1.0 - 0.6 * rho) + 0.2 * zonal + noise;
        const double ppar = density * temperature * (1.0 + 0.15 * zonal);
        const double pperp = density * temperature * (1.0 + 0.25 * ridge + noise);
        const double eflux = 0.1 * ridge * zonal + 0.02 * hash_noise(g, s, t + 1);
        const double potential = 0.5 * std::sin(theta + phi - time) * (1.0 - rho);
        const double current = 0.8 * (1.0 - rho * rho) + 0.1 * std::sin(2.0 * phi - time);

        double* row = &out[gi * 7];
        row[0] = density;
        row[1] = temperature;
        row[2] = ppar;
        row[3] = pperp;
        row[4] = eflux;
        row[5] = potential;
        row[6] = current;
    }
}

namespace {

std::string gtcp_xml(const std::string& array) {
    std::string header;
    for (const auto& q : kToroidQuantities) header += (header.empty() ? "" : ",") + q;
    return "<adios-config>\n"
           "  <adios-group name=\"gtcp_field\">\n"
           "    <var name=\"ntoroidal\" type=\"unsigned long\"/>\n"
           "    <var name=\"ngridpoints\" type=\"unsigned long\"/>\n"
           "    <var name=\"nquantities\" type=\"unsigned long\"/>\n"
           "    <var name=\"" + array + "\" type=\"double\" "
           "dimensions=\"ntoroidal,ngridpoints,nquantities\"/>\n"
           "    <attribute name=\"" + array + ".header.2\" value=\"" + header + "\"/>\n"
           "  </adios-group>\n"
           "  <transport group=\"gtcp_field\" method=\"FLEXPATH\"/>\n"
           "</adios-config>\n";
}

}  // namespace

void ToroidSimComponent::run(core::RunContext& ctx, const util::ArgList& args) {
    const Deck deck = Deck::from_args(args);
    const ToroidSimParams p = ToroidSimParams::from_deck(deck);

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    // GTCP domain-decomposes within slices: partition the gridpoints.
    const auto [g_begin, g_count] = util::partition_range(p.gridpoints, rank, size);

    const ToroidField field(p);
    std::optional<adios::Writer> writer;
    if (p.output) {
        const adios::GroupDef group =
            deck.has("xml") ? adios::GroupDef::from_xml_file(deck.get("xml", ""))
                            : adios::GroupDef::from_xml(gtcp_xml(p.array));
        writer.emplace(ctx.fabric, p.stream, group, rank, size, ctx.stream_options);
    }

    std::vector<double> block(p.slices * g_count * 7);
    for (std::uint64_t step = 0; step < p.io_steps; ++step) {
        util::WallTimer timer;
        // Evaluate the plasma state (the `work` knob repeats the sweep to
        // model heavier per-step computation).
        for (std::uint64_t w = 0; w < std::max<std::uint64_t>(p.work, 1); ++w) {
            for (std::uint64_t s = 0; s < p.slices; ++s) {
                field.evaluate(s, g_begin, g_count, step,
                               std::span<double>(block).subspan(s * g_count * 7,
                                                                g_count * 7));
            }
        }

        if (writer) {
            writer->begin_step();
            writer->set_dimension("ntoroidal", p.slices);
            writer->set_dimension("ngridpoints", p.gridpoints);
            writer->set_dimension("nquantities", 7);
            const util::Box box({0, g_begin, 0}, {p.slices, g_count, 7});
            writer->write<double>(p.array, block, box);
            writer->end_step();
        }
        record_step(ctx, step, timer.seconds(), 0, p.slices * g_count * 7 * 8);
    }
    if (writer) writer->close();
}

}  // namespace sb::sim
