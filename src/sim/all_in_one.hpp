// The All-In-One (AIO) baseline component (paper §V.C, Table II).
//
//   aio input-stream-name input-array-name dimension-index num-bins
//       output-file name1 [name2 ...]
//
// "We wrote a custom, all-in-one (AIO) component that performs the same
// analytical procedure as all the components involved in the LAMMPS
// workflow outside of the simulation itself."  This component fuses
// Select(names) -> Magnitude -> Histogram into a single stage: one read,
// no intermediate streams, no extra MxN coordination.  Comparing a
// SmartBlock pipeline's end-to-end time against LAMMPS+AIO quantifies the
// cost of componentization — the paper measures at most +1.9%.
//
// The histogram file format is identical to the Histogram component's, so
// results are directly comparable.
#pragma once

#include "core/component.hpp"

namespace sb::sim {

class AllInOne : public core::Component {
public:
    std::string name() const override { return "aio"; }
    std::string usage() const override {
        return "aio input-stream-name input-array-name dimension-index num-bins "
               "output-file name1 [name2 ...]";
    }
    core::Ports ports(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        return core::Ports{{args.str(0, "input-stream-name")}, {}};
    }
    core::Contract contract(const util::ArgList& args) const override {
        args.require_at_least(6, usage());
        const std::size_t dim = args.unsigned_integer(2, "dimension-index");
        core::Contract c;
        c.known = true;
        if (dim != 1) {
            c.param_errors.push_back(
                "aio: only dimension-index 1 is supported (2-D rows x quantities)");
        }
        if (args.unsigned_integer(3, "num-bins") == 0) {
            c.param_errors.push_back("aio: num-bins must be positive");
        }
        core::InputContract in;
        in.stream = args.str(0, "input-stream-name");
        in.array = args.str(1, "input-array-name");
        in.exact_rank = 2;
        in.needs_float64 = true;
        in.dim_params["dimension-index"] = dim;
        in.need_headers[dim] = args.rest(5);
        c.inputs.push_back(std::move(in));
        return c;
    }
    void run(core::RunContext& ctx, const util::ArgList& args) override;
};

}  // namespace sb::sim
