#include "sim/all_in_one.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "core/histogram.hpp"
#include "util/timer.hpp"

namespace sb::sim {

void AllInOne::run(core::RunContext& ctx, const util::ArgList& args) {
    args.require_at_least(6, usage());
    const std::string in_stream = args.str(0, "input-stream-name");
    const std::string in_array = args.str(1, "input-array-name");
    const std::size_t dim = args.unsigned_integer(2, "dimension-index");
    const std::size_t bins = args.unsigned_integer(3, "num-bins");
    const std::string out_file = args.str(4, "output-file");
    const std::vector<std::string> wanted = args.rest(5);
    if (bins == 0) throw util::ArgError("aio: num-bins must be positive");

    const int rank = ctx.comm.rank();
    const int size = ctx.comm.size();
    adios::Reader reader(ctx.fabric, in_stream, rank, size);

    std::ofstream out;
    if (rank == 0) {
        out.open(out_file, std::ios::trunc);
        if (!out) throw std::runtime_error("aio: cannot write '" + out_file + "'");
    }

    while (reader.begin_step()) {
        util::WallTimer timer;

        const adios::VarInfo info = reader.inq_var(in_array);
        if (info.shape.ndim() != 2 || dim != 1) {
            throw std::runtime_error("aio: expects a 2-D array filtered in dimension 1 "
                                     "(the fused LAMMPS analysis), got " +
                                     info.shape.to_string() + " dim " +
                                     std::to_string(dim));
        }
        const auto header = reader.attribute_strings(core::header_attr_key(in_array, dim));
        if (!header) {
            throw std::runtime_error("aio: stream carries no header attribute '" +
                                     core::header_attr_key(in_array, dim) + "'");
        }
        std::vector<std::uint64_t> cols;
        for (const std::string& w : wanted) {
            const auto it = std::find(header->begin(), header->end(), w);
            if (it == header->end()) {
                throw std::runtime_error("aio: no quantity named '" + w + "'");
            }
            cols.push_back(static_cast<std::uint64_t>(it - header->begin()));
        }

        // Fused pipeline: read only the selected columns of this rank's
        // particle slab, square-accumulate, sqrt, histogram.
        const util::Box slab = util::partition_along(info.shape, 0, rank, size);
        const std::uint64_t local_n = slab.count[0];
        std::vector<double> sq(local_n, 0.0);
        std::uint64_t bytes_in = 0;
        for (const std::uint64_t c : cols) {
            util::Box col = slab;
            col.offset[1] = c;
            col.count[1] = 1;
            const std::vector<double> v = reader.read<double>(in_array, col);
            bytes_in += v.size() * sizeof(double);
            for (std::uint64_t i = 0; i < local_n; ++i) sq[i] += v[i] * v[i];
        }
        for (double& s : sq) s = std::sqrt(s);

        const core::HistogramResult h =
            core::distributed_histogram(ctx.comm, sq, bins, reader.step());
        if (rank == 0) {
            core::write_histogram(out, h);
            out.flush();
        }

        record_step(ctx, reader.step(), timer.seconds(), bytes_in,
                    rank == 0 ? h.counts.size() * sizeof(std::uint64_t) : 0);
        reader.end_step();
    }
}

}  // namespace sb::sim
