// View-lifetime guard for zero-copy reads.
//
// try_read_view hands components a span pinned by the step's shared
// payload; the span dies at end_step, but nothing in the type system stops
// a component from stashing it across steps.  While sb::check is enabled:
//
//   - every handed-out view is registered here with its owning port, its
//     step generation, and a human-readable owner description (stream,
//     var, box, step);
//   - ReaderPort::end_step() expires its views: they move into a bounded
//     quarantine that keeps the underlying payload alive (so the address
//     range cannot be recycled by a fresh allocation and misattributed);
//   - the read chokepoints (util::copy_box, util::execute_copy_plan)
//     probe their source span against the quarantine and report + throw
//     LifetimeError on a hit — a read through a span that end_step
//     already invalidated.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "check/check.hpp"

namespace sb::check {

namespace detail {
void register_view_slow(const void* owner, const void* data, std::size_t size,
                        std::string desc, std::shared_ptr<const void> keep_alive);
void expire_views_slow(const void* owner);
void forget_views_slow(const void* owner);
void note_read_slow(const void* data, std::size_t size);
void note_retired_slow(const void* data, std::size_t size, std::string desc);
void note_reacquired_slow(const void* data);
}  // namespace detail

/// Registers a handed-out zero-copy view.  `owner` groups views expired
/// together (the ReaderPort); `keep_alive` pins the payload while the view
/// sits in the expired quarantine.
inline void register_view(const void* owner, const void* data, std::size_t size,
                          std::string desc,
                          std::shared_ptr<const void> keep_alive) {
    if (!enabled()) return;
    detail::register_view_slow(owner, data, size, std::move(desc),
                               std::move(keep_alive));
}

/// Expires every live view of `owner` (called by end_step): subsequent
/// reads overlapping them are use-after-end_step.
inline void expire_views(const void* owner) {
    if (!enabled()) return;
    detail::expire_views_slow(owner);
}

/// Drops `owner`'s views entirely, live and quarantined (port teardown in
/// tests; real misuse keeps the quarantine relevant across ports).
inline void forget_views(const void* owner) {
    if (!enabled()) return;
    detail::forget_views_slow(owner);
}

/// Probes a source range about to be read; reports and throws
/// LifetimeError when it overlaps an expired view.
inline void note_read(const void* data, std::size_t size) {
    if (!enabled()) return;
    detail::note_read_slow(data, size);
}

/// Quarantines a buffer range the pool just recycled (util::BufferPool).
/// Unlike view expiry this matches reads from *any* thread — once a step
/// buffer is retired, no thread may legitimately read it until the pool
/// hands it out again.  The pool keeps the storage parked, so the address
/// stays valid without a keep_alive pin.
inline void note_retired(const void* data, std::size_t size, std::string desc) {
    if (!enabled()) return;
    detail::note_retired_slow(data, size, std::move(desc));
}

/// Lifts the quarantine on a retired range: the pool is handing the buffer
/// (or freeing it, making the address reusable) — either way reads there
/// are no longer suspect.
inline void note_reacquired(const void* data) {
    if (!enabled()) return;
    detail::note_reacquired_slow(data);
}

/// Introspection (tests).
std::size_t live_view_count();
std::size_t expired_view_count();
void reset_views();

}  // namespace sb::check
