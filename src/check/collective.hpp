// Collective-matching verification.
//
// The MPI contract the components rely on — every rank of a communicator
// calls the same collective, with matching geometry, in the same order —
// is unchecked at the transport level: all of sb::mpi's collectives funnel
// through one data-carrying barrier, so a rank calling reduce while its
// peers call barrier "works" and silently computes garbage (or hangs).
// While sb::check is enabled, every collective entry is tagged with a
// CollSig; the completing rank of each round compares all signatures and,
// on divergence, the whole group aborts with a rank-by-rank table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"

namespace sb::check {

/// What one rank claims it is doing in a collective round.  `count`/`elem`
/// are 0 when the operation legitimately varies per rank (allgatherv
/// payload sizes, bcast where only the root carries data).
struct CollSig {
    std::string op;           // "barrier", "allreduce:Sum", "bcast(root=0)", ...
    std::uint64_t count = 0;  // element count contributed
    std::uint64_t elem = 0;   // element size in bytes

    bool operator==(const CollSig&) const = default;
};

/// True when every rank's signature matches rank 0's.
bool sigs_match(const std::vector<CollSig>& sigs) noexcept;

/// The rank-by-rank divergence table:
///   collective mismatch on comm 'x' (call #12):
///     rank 0: barrier
///     rank 1: allreduce:Sum count=1 elem=8   <-- diverges
std::string format_collective_table(const std::string& comm, std::uint64_t seq,
                                    const std::vector<CollSig>& sigs);

}  // namespace sb::check
