#include "check/lifetime.hpp"

#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace sb::check {

namespace {

struct ViewRec {
    const void* owner = nullptr;
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    std::string desc;
    std::shared_ptr<const void> keep_alive;
    // Views are handed to one rank thread; only that thread's reads after
    // its own end_step are bugs (a peer rank may legitimately still be
    // reading the same shared block payload inside its own step).
    std::thread::id tid;
    // Pool-retired ranges are different: nobody owns a recycled buffer, so
    // a read from any thread is a use-after-retire.
    bool any_thread = false;
};

/// Quarantined (expired) views are bounded: old entries age out, releasing
/// their payload pin.  Live views are bounded by the number of views a
/// step actually hands out.
constexpr std::size_t kMaxExpired = 128;

struct ViewTable {
    std::mutex mu;
    std::vector<ViewRec> live;
    std::deque<ViewRec> expired;
};

ViewTable& views() {
    static ViewTable t;
    return t;
}

bool overlaps(const ViewRec& v, std::uintptr_t begin, std::uintptr_t end) {
    return begin < v.end && v.begin < end;
}

}  // namespace

namespace detail {

void register_view_slow(const void* owner, const void* data, std::size_t size,
                        std::string desc,
                        std::shared_ptr<const void> keep_alive) {
    if (!data || size == 0) return;
    const auto begin = reinterpret_cast<std::uintptr_t>(data);
    auto& t = views();
    const std::lock_guard lock(t.mu);
    t.live.push_back({owner, begin, begin + size, std::move(desc),
                      std::move(keep_alive), std::this_thread::get_id()});
}

void expire_views_slow(const void* owner) {
    // Records die outside the lock: destroying a keep_alive payload pin can
    // retire a pooled buffer, and the pool re-enters this table through
    // note_retired — destruction under t.mu would self-deadlock.
    std::vector<ViewRec> graveyard;
    auto& t = views();
    {
        const std::lock_guard lock(t.mu);
        for (auto it = t.live.begin(); it != t.live.end();) {
            if (it->owner == owner) {
                t.expired.push_back(std::move(*it));
                it = t.live.erase(it);
            } else {
                ++it;
            }
        }
        while (t.expired.size() > kMaxExpired) {
            graveyard.push_back(std::move(t.expired.front()));
            t.expired.pop_front();
        }
    }
}

void forget_views_slow(const void* owner) {
    std::vector<ViewRec> graveyard;
    auto& t = views();
    {
        const std::lock_guard lock(t.mu);
        for (auto it = t.live.begin(); it != t.live.end();) {
            if (it->owner == owner) {
                graveyard.push_back(std::move(*it));
                it = t.live.erase(it);
            } else {
                ++it;
            }
        }
        for (auto it = t.expired.begin(); it != t.expired.end();) {
            if (it->owner == owner) {
                graveyard.push_back(std::move(*it));
                it = t.expired.erase(it);
            } else {
                ++it;
            }
        }
    }
}

void note_read_slow(const void* data, std::size_t size) {
    if (!data || size == 0) return;
    const auto begin = reinterpret_cast<std::uintptr_t>(data);
    const auto end = begin + size;
    const auto me = std::this_thread::get_id();
    std::string hit;
    {
        auto& t = views();
        const std::lock_guard lock(t.mu);
        for (const ViewRec& v : t.expired) {
            if ((v.any_thread || v.tid == me) && overlaps(v, begin, end)) {
                hit = v.desc;
                break;
            }
        }
    }
    if (!hit.empty()) {
        const std::string msg =
            "use-after-end_step: read of " + std::to_string(size) +
            " bytes overlaps expired zero-copy view of " + hit;
        report(Kind::Lifetime, msg);
        throw LifetimeError(msg);
    }
}

void note_retired_slow(const void* data, std::size_t size, std::string desc) {
    if (!data || size == 0) return;
    const auto begin = reinterpret_cast<std::uintptr_t>(data);
    std::vector<ViewRec> graveyard;
    auto& t = views();
    {
        const std::lock_guard lock(t.mu);
        ViewRec rec;
        rec.begin = begin;
        rec.end = begin + size;
        rec.desc = std::move(desc);
        rec.tid = std::this_thread::get_id();
        rec.any_thread = true;
        t.expired.push_back(std::move(rec));
        while (t.expired.size() > kMaxExpired) {
            graveyard.push_back(std::move(t.expired.front()));
            t.expired.pop_front();
        }
    }
}

void note_reacquired_slow(const void* data) {
    if (!data) return;
    const auto begin = reinterpret_cast<std::uintptr_t>(data);
    std::vector<ViewRec> graveyard;
    auto& t = views();
    {
        const std::lock_guard lock(t.mu);
        for (auto it = t.expired.begin(); it != t.expired.end();) {
            if (it->any_thread && it->begin == begin) {
                graveyard.push_back(std::move(*it));
                it = t.expired.erase(it);
            } else {
                ++it;
            }
        }
    }
}

}  // namespace detail

std::size_t live_view_count() {
    auto& t = views();
    const std::lock_guard lock(t.mu);
    return t.live.size();
}

std::size_t expired_view_count() {
    auto& t = views();
    const std::lock_guard lock(t.mu);
    return t.expired.size();
}

void reset_views() {
    std::vector<ViewRec> graveyard;
    std::deque<ViewRec> graveyard_expired;
    auto& t = views();
    {
        const std::lock_guard lock(t.mu);
        graveyard = std::move(t.live);
        graveyard_expired = std::move(t.expired);
        t.live.clear();
        t.expired.clear();
    }
}

}  // namespace sb::check
