#include "check/lifetime.hpp"

#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace sb::check {

namespace {

struct ViewRec {
    const void* owner = nullptr;
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    std::string desc;
    std::shared_ptr<const void> keep_alive;
    // Views are handed to one rank thread; only that thread's reads after
    // its own end_step are bugs (a peer rank may legitimately still be
    // reading the same shared block payload inside its own step).
    std::thread::id tid;
};

/// Quarantined (expired) views are bounded: old entries age out, releasing
/// their payload pin.  Live views are bounded by the number of views a
/// step actually hands out.
constexpr std::size_t kMaxExpired = 128;

struct ViewTable {
    std::mutex mu;
    std::vector<ViewRec> live;
    std::deque<ViewRec> expired;
};

ViewTable& views() {
    static ViewTable t;
    return t;
}

bool overlaps(const ViewRec& v, std::uintptr_t begin, std::uintptr_t end) {
    return begin < v.end && v.begin < end;
}

}  // namespace

namespace detail {

void register_view_slow(const void* owner, const void* data, std::size_t size,
                        std::string desc,
                        std::shared_ptr<const void> keep_alive) {
    if (!data || size == 0) return;
    const auto begin = reinterpret_cast<std::uintptr_t>(data);
    auto& t = views();
    const std::lock_guard lock(t.mu);
    t.live.push_back({owner, begin, begin + size, std::move(desc),
                      std::move(keep_alive), std::this_thread::get_id()});
}

void expire_views_slow(const void* owner) {
    auto& t = views();
    const std::lock_guard lock(t.mu);
    for (auto it = t.live.begin(); it != t.live.end();) {
        if (it->owner == owner) {
            t.expired.push_back(std::move(*it));
            it = t.live.erase(it);
        } else {
            ++it;
        }
    }
    while (t.expired.size() > kMaxExpired) t.expired.pop_front();
}

void forget_views_slow(const void* owner) {
    auto& t = views();
    const std::lock_guard lock(t.mu);
    std::erase_if(t.live, [&](const ViewRec& v) { return v.owner == owner; });
    std::erase_if(t.expired, [&](const ViewRec& v) { return v.owner == owner; });
}

void note_read_slow(const void* data, std::size_t size) {
    if (!data || size == 0) return;
    const auto begin = reinterpret_cast<std::uintptr_t>(data);
    const auto end = begin + size;
    const auto me = std::this_thread::get_id();
    std::string hit;
    {
        auto& t = views();
        const std::lock_guard lock(t.mu);
        for (const ViewRec& v : t.expired) {
            if (v.tid == me && overlaps(v, begin, end)) {
                hit = v.desc;
                break;
            }
        }
    }
    if (!hit.empty()) {
        const std::string msg =
            "use-after-end_step: read of " + std::to_string(size) +
            " bytes overlaps expired zero-copy view of " + hit;
        report(Kind::Lifetime, msg);
        throw LifetimeError(msg);
    }
}

}  // namespace detail

std::size_t live_view_count() {
    auto& t = views();
    const std::lock_guard lock(t.mu);
    return t.live.size();
}

std::size_t expired_view_count() {
    auto& t = views();
    const std::lock_guard lock(t.mu);
    return t.expired.size();
}

void reset_views() {
    auto& t = views();
    const std::lock_guard lock(t.mu);
    t.live.clear();
    t.expired.clear();
}

}  // namespace sb::check
