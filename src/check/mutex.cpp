#include "check/mutex.hpp"

#include <atomic>
#include <map>
#include <set>
#include <vector>

namespace sb::check {

namespace {

thread_local std::string t_label;

/// The stack of mutexes the calling thread currently holds (innermost
/// last).  Name pointers stay valid while the mutex is held.
struct Held {
    std::uint64_t id;
    const std::string* name;
};
thread_local std::vector<Held> t_held;

struct Edge {
    std::string context;  // "thread 'x': acquired 'B' while holding 'A'"
    std::string to_name;
};

/// The process-wide lock-order graph: node = mutex id, edge a->b = "some
/// thread acquired b while holding a".
struct LockGraph {
    std::mutex mu;
    std::map<std::pair<std::uint64_t, std::uint64_t>, Edge> edges;
    std::map<std::uint64_t, std::set<std::uint64_t>> adj;
    std::size_t cycles = 0;

    /// Depth-first path from `from` to `to` along recorded edges; fills
    /// `path` with the edge keys walked.  Returns true when reachable.
    bool find_path(std::uint64_t from, std::uint64_t to,
                   std::set<std::uint64_t>& seen,
                   std::vector<std::pair<std::uint64_t, std::uint64_t>>& path) {
        if (from == to) return true;
        if (!seen.insert(from).second) return false;
        const auto it = adj.find(from);
        if (it == adj.end()) return false;
        for (const std::uint64_t next : it->second) {
            path.emplace_back(from, next);
            if (find_path(next, to, seen, path)) return true;
            path.pop_back();
        }
        return false;
    }
};

LockGraph& graph() {
    static LockGraph g;
    return g;
}

}  // namespace

ThreadLabel::ThreadLabel(std::string label) : prev_(std::move(t_label)) {
    t_label = std::move(label);
}

ThreadLabel::~ThreadLabel() { t_label = std::move(prev_); }

const std::string& ThreadLabel::current() noexcept { return t_label; }

namespace detail {

std::uint64_t next_mutex_id() noexcept {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

void lock_acquired(std::uint64_t id, const std::string& name) {
    std::string cycle_report;
    if (!t_held.empty()) {
        const Held& holder = t_held.back();
        if (holder.id != id) {
            auto& g = graph();
            const std::lock_guard lock(g.mu);
            const std::pair<std::uint64_t, std::uint64_t> key{holder.id, id};
            if (g.edges.find(key) == g.edges.end()) {
                std::string ctx = "acquired '" + name + "' while holding '" +
                                  *holder.name + "'";
                if (!t_label.empty()) ctx += " [" + t_label + "]";

                // Does the new edge close a cycle?  Then two code paths
                // take these mutexes in opposite orders.
                std::set<std::uint64_t> seen;
                std::vector<std::pair<std::uint64_t, std::uint64_t>> path;
                if (g.find_path(id, holder.id, seen, path)) {
                    ++g.cycles;
                    cycle_report =
                        "potential deadlock: lock-order cycle between '" +
                        *holder.name + "' and '" + name + "':\n  " + ctx;
                    for (const auto& ek : path) {
                        cycle_report += "\n  " + g.edges.at(ek).context;
                    }
                }
                g.edges.emplace(key, Edge{std::move(ctx), name});
                g.adj[holder.id].insert(id);
            }
        }
    }
    t_held.push_back({id, &name});
    // Reported outside the graph mutex: report() takes the diagnostic-log
    // and registry mutexes, which must stay leaves of the lock order.
    if (!cycle_report.empty()) report(Kind::LockOrder, cycle_report);
}

void lock_released(std::uint64_t id) noexcept {
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
        if (it->id == id) {
            t_held.erase(std::next(it).base());
            return;
        }
    }
}

}  // namespace detail

namespace lock_order {

std::size_t edge_count() {
    auto& g = graph();
    const std::lock_guard lock(g.mu);
    return g.edges.size();
}

std::size_t cycle_count() {
    auto& g = graph();
    const std::lock_guard lock(g.mu);
    return g.cycles;
}

void reset() {
    auto& g = graph();
    const std::lock_guard lock(g.mu);
    g.edges.clear();
    g.adj.clear();
    g.cycles = 0;
}

}  // namespace lock_order

}  // namespace sb::check
