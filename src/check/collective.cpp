#include "check/collective.hpp"

#include <sstream>

namespace sb::check {

bool sigs_match(const std::vector<CollSig>& sigs) noexcept {
    for (std::size_t r = 1; r < sigs.size(); ++r) {
        if (!(sigs[r] == sigs[0])) return false;
    }
    return true;
}

std::string format_collective_table(const std::string& comm, std::uint64_t seq,
                                    const std::vector<CollSig>& sigs) {
    std::ostringstream out;
    out << "collective mismatch on comm '" << comm << "' (call #" << seq << "):";
    for (std::size_t r = 0; r < sigs.size(); ++r) {
        const CollSig& s = sigs[r];
        out << "\n  rank " << r << ": " << (s.op.empty() ? "?" : s.op);
        if (s.count != 0 || s.elem != 0) {
            out << " count=" << s.count << " elem=" << s.elem;
        }
        if (!(s == sigs[0])) out << "   <-- diverges from rank 0";
    }
    return out.str();
}

}  // namespace sb::check
