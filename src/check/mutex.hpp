// Lock-order (potential-deadlock) detection.
//
// CheckedMutex is a drop-in std::mutex replacement (BasicLockable +
// try_lock, so std::lock_guard, std::unique_lock and
// std::condition_variable_any all work) adopted by the transport and
// runtime mutexes.  While sb::check is enabled, every acquisition records
// a directed edge held-mutex -> acquired-mutex into a process-wide
// lock-order graph, tagged with both mutex names and the acquiring
// thread's context label.  An edge that closes a cycle is a potential
// deadlock — two code paths taking the same mutexes in opposite order —
// and is reported once per edge pair with the context strings of every
// edge on the cycle, whether or not the interleaving that actually
// deadlocks ever happens.
//
// With sb::check disabled the cost over a bare std::mutex is one relaxed
// atomic load per lock/unlock.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "check/check.hpp"

namespace sb::check {

namespace detail {
void lock_acquired(std::uint64_t id, const std::string& name);
void lock_released(std::uint64_t id) noexcept;
std::uint64_t next_mutex_id() noexcept;
}  // namespace detail

/// Sets the calling thread's context label for the duration of a scope
/// ("md_sim#0/rank2"); lock-order edges and wait-for dumps carry it so a
/// diagnostic names the component rank, not just a thread id.  Nestable;
/// the previous label is restored on destruction.
class ThreadLabel {
public:
    explicit ThreadLabel(std::string label);
    ~ThreadLabel();
    ThreadLabel(const ThreadLabel&) = delete;
    ThreadLabel& operator=(const ThreadLabel&) = delete;

    /// The calling thread's current label ("" when unset).
    static const std::string& current() noexcept;

private:
    std::string prev_;
};

/// std::mutex wrapper feeding the lock-order graph.  `name` identifies the
/// mutex (or the family of mutexes, e.g. one per stream) in diagnostics.
class CheckedMutex {
public:
    explicit CheckedMutex(std::string name = "mutex")
        : id_(detail::next_mutex_id()), name_(std::move(name)) {}

    CheckedMutex(const CheckedMutex&) = delete;
    CheckedMutex& operator=(const CheckedMutex&) = delete;

    void lock() {
        mu_.lock();
        if (enabled()) detail::lock_acquired(id_, name_);
    }

    bool try_lock() {
        if (!mu_.try_lock()) return false;
        if (enabled()) detail::lock_acquired(id_, name_);
        return true;
    }

    void unlock() {
        if (enabled()) detail::lock_released(id_);
        mu_.unlock();
    }

    const std::string& name() const noexcept { return name_; }

    /// Renames the mutex; only safe before it is shared between threads
    /// (used by containers that default-construct their elements).
    void set_name(std::string name) { name_ = std::move(name); }

private:
    std::mutex mu_;
    const std::uint64_t id_;
    std::string name_;
};

namespace lock_order {

/// Number of distinct acquisition edges recorded so far.
std::size_t edge_count();

/// Number of cycle reports emitted so far.
std::size_t cycle_count();

/// Forgets the whole graph (tests isolate scenarios this way).
void reset();

}  // namespace lock_order

}  // namespace sb::check
