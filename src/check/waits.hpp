// Wait-for graph & stall detection.
//
// Every blocking wait in the runtime (P2P recv, collective rounds, bounded
// queue push/pop, stream acquire) registers itself here while blocked, so
// that at any instant the process can answer "who waits on whom".  A wait
// that exceeds the configured stall timeout fires a diagnostic carrying the
// full wait-for table — queue depths, current steps, thread context labels
// — instead of the workflow hanging forever with no explanation; with
// StallAction::Throw the blocked wait additionally throws StallError so
// the component unwinds (and the workflow's abort path tears down the rest
// of the graph).
//
// Waiting sites use wait_checked() below, which degrades to a plain
// cv.wait(lock, pred) when sb::check is disabled.
#pragma once

#include <algorithm>
#include <chrono>
#include <string>

#include "check/check.hpp"

namespace sb::check {

enum class WaitKind {
    P2PRecv,        // mpi recv_bytes blocked on an empty mailbox slot
    Collective,     // mpi collective blocked on missing peers
    QueuePush,      // BoundedQueue push blocked on a full queue (backpressure)
    QueuePop,       // BoundedQueue pop blocked on an empty queue
    StreamAcquire,  // flexpath reader blocked waiting for a step
    StreamPrefetch, // flexpath prefetcher idle: window full or no reader demand
    Other,
};
const char* wait_kind_name(WaitKind k) noexcept;

/// RAII registration of one blocked wait in the process-wide table.
/// Registers only when sb::check is enabled at construction.
class ScopedWait {
public:
    ScopedWait(WaitKind kind, std::string what);
    ~ScopedWait();
    ScopedWait(const ScopedWait&) = delete;
    ScopedWait& operator=(const ScopedWait&) = delete;

    /// Seconds since construction.
    double elapsed() const noexcept;

private:
    std::size_t slot_;
    std::chrono::steady_clock::time_point t0_;
};

/// Formats the current wait-for table, one line per blocked wait.
std::string dump_waits();

/// Number of currently registered waits.
std::size_t active_wait_count();

/// cv.wait(lock, pred) with stall detection.  While sb::check is enabled
/// the wait is registered in the wait-for table and sliced into short
/// timed waits; once blocked longer than stall_timeout_seconds() it
/// reports a Stall diagnostic with the full table (once per wait) and,
/// under StallAction::Throw, throws StallError.  `what` describes the
/// wait ("stream 'x' acquire gen=3 queued=0").
template <typename CV, typename Lock, typename Pred>
void wait_checked(CV& cv, Lock& lock, WaitKind kind, const std::string& what,
                  Pred pred) {
    if (!enabled()) {
        cv.wait(lock, pred);
        return;
    }
    if (pred()) return;
    const ScopedWait wait(kind, what);
    bool reported = false;
    for (;;) {
        const double timeout = stall_timeout_seconds();
        const double remaining = reported ? timeout : timeout - wait.elapsed();
        const auto slice = std::chrono::duration<double>(
            std::clamp(remaining, 1e-3, 0.05));
        if (cv.wait_for(lock, slice, pred)) return;
        if (!reported && wait.elapsed() >= timeout) {
            reported = true;
            report(Kind::Stall,
                   "stalled " + std::string(wait_kind_name(kind)) + " " + what +
                       " (blocked " + std::to_string(wait.elapsed()) +
                       "s)\nwait-for table:\n" + dump_waits());
            if (stall_action() == StallAction::Throw) {
                throw StallError("stalled " + std::string(wait_kind_name(kind)) +
                                 " " + what);
            }
        }
    }
}

/// Deadline-bounded wait_checked: returns true when `pred` held before
/// `timeout_seconds` elapsed, false on deadline.  Stalls are still reported
/// with the wait-for table, but StallAction::Throw is deliberately *not*
/// honoured here: a bounded wait already has a failure path — the caller
/// converts the deadline into its own typed error (e.g. flexpath's
/// PeerLivenessError) — so throwing StallError as well would race the two
/// diagnoses (docs/CORRECTNESS.md, "Stall detection vs liveness timeouts").
template <typename CV, typename Lock, typename Pred>
bool wait_checked_for(CV& cv, Lock& lock, WaitKind kind, const std::string& what,
                      Pred pred, double timeout_seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    if (!enabled()) {
        return cv.wait_until(lock, deadline, pred);
    }
    if (pred()) return true;
    const ScopedWait wait(kind, what);
    bool reported = false;
    for (;;) {
        const double until_deadline =
            std::chrono::duration<double>(deadline - std::chrono::steady_clock::now())
                .count();
        if (until_deadline <= 0.0) return pred();
        const double timeout = stall_timeout_seconds();
        const double remaining = reported ? timeout : timeout - wait.elapsed();
        const auto slice = std::chrono::duration<double>(
            std::clamp(std::min(remaining, until_deadline), 1e-3, 0.05));
        if (cv.wait_for(lock, slice, pred)) return true;
        if (!reported && wait.elapsed() >= timeout) {
            reported = true;
            report(Kind::Stall,
                   "stalled " + std::string(wait_kind_name(kind)) + " " + what +
                       " (blocked " + std::to_string(wait.elapsed()) +
                       "s, deadline-bounded)\nwait-for table:\n" + dump_waits());
        }
    }
}

}  // namespace sb::check
