#include "check/check.hpp"

#include <cstdlib>
#include <deque>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace sb::check {

namespace {

bool enabled_from_env() {
    const char* v = std::getenv("SB_CHECK");
    if (!v) {
#ifdef SB_CHECK_DEFAULT_ON
        return true;
#else
        return false;
#endif
    }
    const std::string s(v);
    return s == "on" || s == "1" || s == "true";
}

double stall_timeout_from_env() {
    const char* v = std::getenv("SB_CHECK_STALL_MS");
    if (!v) return 5.0;
    const double ms = std::atof(v);
    return ms > 0.0 ? ms / 1000.0 : 5.0;
}

StallAction stall_action_from_env() {
    const char* v = std::getenv("SB_CHECK_STALL_ACTION");
    if (v && std::string(v) == "throw") return StallAction::Throw;
    return StallAction::Report;
}

std::atomic<double> g_stall_timeout{stall_timeout_from_env()};
std::atomic<int> g_stall_action{static_cast<int>(stall_action_from_env())};

struct DiagnosticLog {
    std::mutex mu;
    std::deque<Diagnostic> entries;
    std::size_t counts[5] = {};
};

DiagnosticLog& diag_log() {
    static DiagnosticLog log;
    return log;
}

}  // namespace

namespace detail {
std::atomic<bool> g_enabled{enabled_from_env()};
}

void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

const char* kind_name(Kind k) noexcept {
    switch (k) {
        case Kind::LockOrder: return "lock-order";
        case Kind::Stall: return "stall";
        case Kind::Collective: return "collective";
        case Kind::Lifetime: return "lifetime";
        case Kind::Usage: return "usage";
    }
    return "?";
}

void report(Kind kind, const std::string& message) {
    SB_LOG(Error) << "sb::check [" << kind_name(kind) << "] " << message;
    obs::Registry::global()
        .counter("check.diagnostics", {{"kind", kind_name(kind)}})
        .inc();
    auto& log = diag_log();
    const std::lock_guard lock(log.mu);
    ++log.counts[static_cast<std::size_t>(kind)];
    log.entries.push_back({kind, message});
    if (log.entries.size() > kMaxDiagnostics) log.entries.pop_front();
}

std::vector<Diagnostic> diagnostics() {
    auto& log = diag_log();
    const std::lock_guard lock(log.mu);
    return {log.entries.begin(), log.entries.end()};
}

std::size_t diagnostic_count(Kind kind) {
    auto& log = diag_log();
    const std::lock_guard lock(log.mu);
    return log.counts[static_cast<std::size_t>(kind)];
}

void clear_diagnostics() {
    auto& log = diag_log();
    const std::lock_guard lock(log.mu);
    log.entries.clear();
    for (auto& c : log.counts) c = 0;
}

double stall_timeout_seconds() noexcept {
    return g_stall_timeout.load(std::memory_order_relaxed);
}

void set_stall_timeout_seconds(double s) noexcept {
    g_stall_timeout.store(s, std::memory_order_relaxed);
}

StallAction stall_action() noexcept {
    return static_cast<StallAction>(g_stall_action.load(std::memory_order_relaxed));
}

void set_stall_action(StallAction a) noexcept {
    g_stall_action.store(static_cast<int>(a), std::memory_order_relaxed);
}

}  // namespace sb::check
