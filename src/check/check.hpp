// sb::check — debug-gated runtime concurrency & lifetime analysis.
//
// SmartBlock's promise is free recombination of generic components, which
// means every new pipeline is a new interleaving of threaded ranks, bounded
// transport queues, and zero-copy views.  This layer turns the failure modes
// of that freedom — silent deadlocks, mismatched collectives, dangling
// views — into immediate diagnostics:
//
//   - a lock-order / wait-for graph detector (check/mutex.hpp, check/waits.hpp)
//     that reports potential-deadlock cycles and dumps "who waits on whom"
//     when a blocked wait exceeds a stall timeout;
//   - a collective-matching verifier (check/collective.hpp, wired into
//     sb::mpi) that aborts with a rank-by-rank table when ranks diverge;
//   - a view-lifetime guard (check/lifetime.hpp) that catches reads of
//     zero-copy spans after end_step.
//
// Like SB_METRICS, the whole subsystem is compiled in but off by default:
// every entry point starts with one relaxed atomic load, so the release hot
// path pays nothing.  Enable with SB_CHECK=on (env) or build with
// -DSB_CHECK=ON to flip the compiled-in default.  See docs/CORRECTNESS.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace sb::check {

namespace detail {
extern std::atomic<bool> g_enabled;  // initialized from SB_CHECK
}

/// Whether the analyzers are active.  Initialized from the SB_CHECK env var
/// ("on"/"1"/"true" enable); the compiled-in default is off unless the tree
/// was configured with -DSB_CHECK=ON.
inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// The analyzer a diagnostic came from.
enum class Kind {
    LockOrder,   // potential-deadlock cycle in the lock-order graph
    Stall,       // a blocked wait exceeded the stall timeout
    Collective,  // ranks diverged inside a collective
    Lifetime,    // zero-copy view used after end_step
    Usage,       // API sequencing (double end_step, put outside a step)
};
const char* kind_name(Kind k) noexcept;

struct Diagnostic {
    Kind kind = Kind::Usage;
    std::string message;
};

/// Records a diagnostic: logs it at Error level, bumps the
/// check.diagnostics{kind=} counter, and appends it to the bounded
/// in-memory list behind diagnostics().  Thread-safe.
void report(Kind kind, const std::string& message);

/// The recorded diagnostics, oldest first (at most kMaxDiagnostics; older
/// entries are dropped).  Thread-safe snapshot.
std::vector<Diagnostic> diagnostics();

/// Number of recorded diagnostics of `kind` since the last clear.
std::size_t diagnostic_count(Kind kind);

/// Drops every recorded diagnostic (tests isolate cases this way).
void clear_diagnostics();

inline constexpr std::size_t kMaxDiagnostics = 256;

/// Base of every exception the analyzers throw.
class CheckError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown out of a blocked wait when the stall timeout fires with
/// StallAction::Throw.
class StallError : public CheckError {
public:
    using CheckError::CheckError;
};

/// Thrown by every rank of a collective round whose signatures diverged.
class CollectiveMismatchError : public CheckError {
public:
    using CheckError::CheckError;
};

/// Thrown when a read chokepoint touches an expired zero-copy view.
class LifetimeError : public CheckError {
public:
    using CheckError::CheckError;
};

// ---- stall-detector configuration ------------------------------------------

/// What the wait-for detector does once a blocked wait exceeds the stall
/// timeout (it always reports the wait-for dump first).
enum class StallAction {
    Report,  // keep waiting after the dump (default)
    Throw,   // throw StallError out of the blocked wait
};

/// Stall timeout in seconds (SB_CHECK_STALL_MS env, default 5000 ms).
double stall_timeout_seconds() noexcept;
void set_stall_timeout_seconds(double s) noexcept;

/// Stall action (SB_CHECK_STALL_ACTION env: "report" | "throw").
StallAction stall_action() noexcept;
void set_stall_action(StallAction a) noexcept;

}  // namespace sb::check
