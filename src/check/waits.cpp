#include "check/waits.hpp"

#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "check/mutex.hpp"

namespace sb::check {

const char* wait_kind_name(WaitKind k) noexcept {
    switch (k) {
        case WaitKind::P2PRecv: return "p2p-recv";
        case WaitKind::Collective: return "collective";
        case WaitKind::QueuePush: return "queue-push";
        case WaitKind::QueuePop: return "queue-pop";
        case WaitKind::StreamAcquire: return "stream-acquire";
        case WaitKind::StreamPrefetch: return "stream-prefetch";
        case WaitKind::Other: return "wait";
    }
    return "?";
}

namespace {

struct WaitRec {
    bool in_use = false;
    WaitKind kind = WaitKind::Other;
    std::string what;
    std::string label;  // thread context label at registration
    std::thread::id tid;
    std::chrono::steady_clock::time_point t0;
};

/// Fixed-slot table: registration never allocates table storage while a
/// diagnostic may be in flight, and iteration for dumps is trivially
/// bounded.
struct WaitTable {
    std::mutex mu;
    std::vector<WaitRec> slots{std::vector<WaitRec>(256)};
    std::size_t active = 0;
};

WaitTable& table() {
    static WaitTable t;
    return t;
}

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

}  // namespace

ScopedWait::ScopedWait(WaitKind kind, std::string what)
    : slot_(kNoSlot), t0_(std::chrono::steady_clock::now()) {
    if (!enabled()) return;
    auto& t = table();
    const std::lock_guard lock(t.mu);
    for (std::size_t i = 0; i < t.slots.size(); ++i) {
        if (t.slots[i].in_use) continue;
        t.slots[i] = WaitRec{true,
                             kind,
                             std::move(what),
                             ThreadLabel::current(),
                             std::this_thread::get_id(),
                             t0_};
        slot_ = i;
        ++t.active;
        return;
    }
    // Table full (pathological): the wait simply goes unlisted.
}

ScopedWait::~ScopedWait() {
    if (slot_ == kNoSlot) return;
    auto& t = table();
    const std::lock_guard lock(t.mu);
    t.slots[slot_] = WaitRec{};
    --t.active;
}

double ScopedWait::elapsed() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
}

std::string dump_waits() {
    const auto now = std::chrono::steady_clock::now();
    auto& t = table();
    const std::lock_guard lock(t.mu);
    std::ostringstream out;
    std::size_t n = 0;
    for (const WaitRec& w : t.slots) {
        if (!w.in_use) continue;
        const double blocked =
            std::chrono::duration<double>(now - w.t0).count();
        out << "  [" << wait_kind_name(w.kind) << "] " << w.what;
        if (!w.label.empty()) out << " [" << w.label << "]";
        out << " blocked " << blocked << "s\n";
        ++n;
    }
    if (n == 0) out << "  (no registered waits)\n";
    return out.str();
}

std::size_t active_wait_count() {
    auto& t = table();
    const std::lock_guard lock(t.mu);
    return t.active;
}

}  // namespace sb::check
