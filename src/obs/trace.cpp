#include "obs/trace.hpp"

#include "obs/metrics.hpp"

namespace sb::obs {

TraceLog& TraceLog::global() {
    static TraceLog log;
    return log;
}

void TraceLog::record(TraceEvent ev) {
    const std::lock_guard lock(mu_);
    if (events_.size() >= kCapacity) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(ev));
}

void TraceLog::counter(const std::string& name, const std::string& stream,
                       double value) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Counter;
    ev.name = name;
    ev.stream = stream;
    ev.t0 = steady_seconds();
    ev.value = value;
    record(std::move(ev));
}

void TraceLog::slice(const std::string& name, const std::string& stream,
                     const std::string& category, double t0, double t1,
                     std::uint64_t id) {
    if (!enabled()) return;
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::Slice;
    ev.name = name;
    ev.stream = stream;
    ev.category = category;
    ev.t0 = t0;
    ev.t1 = t1;
    ev.id = id;
    record(std::move(ev));
}

std::vector<TraceEvent> TraceLog::events_after(double t) const {
    const std::lock_guard lock(mu_);
    std::vector<TraceEvent> out;
    for (const TraceEvent& ev : events_) {
        if (ev.t0 >= t) out.push_back(ev);
    }
    return out;
}

std::uint64_t TraceLog::dropped() const {
    const std::lock_guard lock(mu_);
    return dropped_;
}

void TraceLog::clear() {
    const std::lock_guard lock(mu_);
    events_.clear();
    dropped_ = 0;
}

}  // namespace sb::obs
