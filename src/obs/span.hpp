// Step provenance spans: the causal timeline of one workflow step.
//
// Aggregate metrics (obs::Registry) say how much time a stream spent
// blocked; the trace log (obs::TraceLog) says when.  Neither says *which
// step* — and attributing end-to-end step latency to a component needs
// exactly that: for step k, when was it assembled by the writer group, how
// long did it sit in the bounded queue, how long did each reader rank wait
// for it, and how long did each component compute on it.
//
// The SpanStore records bounded per-(scope, step) timelines of such
// segments.  A scope is either a stream name (transport segments: Produce /
// Assemble / BackpressureOut / Queue / WaitIn / Consume) or a component
// instance label like "magnitude#1" (Compute segments).  The workflow layer
// joins the two through its dataflow graph: Workflow::critical_path walks a
// step's segments across components to name the limiter, and
// Workflow::write_trace exports producer->consumer flow events from them
// (docs/OBSERVABILITY.md, "Step provenance spans").
//
// Recording is gated on obs::enabled() — with SB_METRICS=off every record
// call is a single relaxed load — and, like TraceLog, the store is bounded:
// per scope only the most recent kMaxStepsPerScope steps are retained, and
// a step keeps at most kMaxSegmentsPerStep segments (drops are counted).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sb::obs {

/// What a span segment measures.  Transport kinds are recorded against the
/// stream's scope; Compute against the component instance's scope.
enum class SegmentKind {
    Produce,          // writer rank's begin_step..end_step session
    Assemble,         // first contribution -> step fully assembled
    BackpressureOut,  // last-arriving rank blocked pushing into a full queue
    Queue,            // assembled step waiting in the writer-side queue
    WaitIn,           // reader rank blocked in acquire for this step
    Consume,          // reader rank's begin_step..end_step session
    Compute,          // component kernel time for this step (one rank)
};

/// Stable lowercase name ("wait-in", "compute", ...) used in reports,
/// metric labels, and the JSON export.
const char* segment_kind_name(SegmentKind k);

/// One recorded interval of a step's timeline.
struct StepSegment {
    SegmentKind kind = SegmentKind::Compute;
    double t0 = 0.0;  // obs::steady_seconds
    double t1 = 0.0;
    int rank = -1;      // recording rank, -1 when not rank-scoped
    std::string actor;  // component instance on the recording thread ("" unknown)

    double seconds() const noexcept { return t1 - t0; }
};

/// All segments recorded for one (scope, step), in record order.
struct StepTimeline {
    std::string scope;
    std::uint64_t step = 0;
    std::vector<StepSegment> segments;
};

/// Labels the calling thread with the component instance it runs
/// ("magnitude#1"), so transport-layer segments recorded on this thread
/// carry the actor without every stream call site knowing about
/// components.  RAII; nests (the previous label is restored).
class ScopedActor {
public:
    explicit ScopedActor(std::string actor);
    ~ScopedActor();
    ScopedActor(const ScopedActor&) = delete;
    ScopedActor& operator=(const ScopedActor&) = delete;

    /// The calling thread's current actor label ("" when unset).
    static const std::string& current() noexcept;

private:
    std::string saved_;
};

/// Process-wide bounded store of step timelines.  Thread-safe; recording
/// is mutex-protected but low-rate (a handful of segments per step, never
/// per element).
class SpanStore {
public:
    static SpanStore& global();

    SpanStore() = default;
    SpanStore(const SpanStore&) = delete;
    SpanStore& operator=(const SpanStore&) = delete;

    static constexpr std::size_t kMaxStepsPerScope = 512;
    static constexpr std::size_t kMaxSegmentsPerStep = 256;

    /// Records one segment.  No-op when obs::enabled() is false.  The
    /// calling thread's ScopedActor label is captured as the actor.
    void record(const std::string& scope, std::uint64_t step, SegmentKind kind,
                double t0, double t1, int rank = -1);

    /// Timelines of `scope` ordered by step, keeping only segments with
    /// t0 >= after (a workflow filters by its run epoch, like
    /// TraceLog::events_after); steps left empty by the filter are omitted.
    std::vector<StepTimeline> timelines(const std::string& scope,
                                        double after = 0.0) const;

    /// Every scope with at least one retained step.
    std::vector<std::string> scopes() const;

    /// Segments dropped to the per-step bound (per-scope step eviction is
    /// not counted — retaining the newest steps is the intended behaviour).
    std::uint64_t dropped() const;

    void clear();

private:
    mutable std::mutex mu_;
    // scope -> step -> segments; the inner map is pruned oldest-first past
    // kMaxStepsPerScope (long runs keep a sliding window of recent steps).
    std::map<std::string, std::map<std::uint64_t, std::vector<StepSegment>>> scopes_;
    std::uint64_t dropped_ = 0;
};

}  // namespace sb::obs
