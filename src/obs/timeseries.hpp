// Time-series sampling of registry metrics.
//
// Counters and gauges are cumulative or instantaneous; what admission
// control and autoscaling (ROADMAP items 2 and 4) need is *rates over
// time*: steps/s, bytes/s, queue depth as a function of time.  The Sampler
// is an opt-in background thread that snapshots selected counters/gauges
// from a Registry on a fixed interval into fixed-size ring buffers
// (TimeSeries), from which rates are derived.  Nothing here runs unless a
// Sampler is constructed and started — the default observability cost
// stays one relaxed atomic per instrument update.
//
// Consumers: Workflow::write_metrics embeds a "timeseries" JSON block when
// a sampler is attached; smartblock_run --watch refreshes a live view from
// on_tick; --metrics-interval dumps numbered snapshots from the same
// thread (docs/OBSERVABILITY.md, "Time series").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace sb::obs {

/// Fixed-capacity ring of (t, value) samples for one metric.  Once full,
/// the oldest sample is overwritten — rates always reflect the most recent
/// capacity() samples.
class TimeSeries {
public:
    explicit TimeSeries(std::size_t capacity = 256);

    struct Sample {
        double t = 0.0;  // obs::steady_seconds
        double v = 0.0;
    };

    void push(double t, double v);

    /// Retained samples, oldest first.
    std::vector<Sample> samples() const;

    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return ring_.size(); }

    /// (v_last - v_first) / (t_last - t_first) over the retained window —
    /// the average rate for a counter, the average slope for a gauge.
    /// 0 with fewer than two samples or a degenerate time span.
    double rate() const;

    /// Most recent value (0 when empty).
    double last() const;

private:
    std::vector<Sample> ring_;
    std::size_t head_ = 0;  // next write position
    std::size_t size_ = 0;
};

struct SamplerOptions {
    double interval_ms = 250.0;
    /// Ring capacity per tracked series.
    std::size_t capacity = 256;
    /// Metric-name prefixes to sample; empty samples every counter and
    /// gauge (histograms are summarized by count/sum elsewhere and are
    /// not time-series sampled).
    std::vector<std::string> include;
};

class Sampler {
public:
    explicit Sampler(Registry& registry, SamplerOptions opts = {});
    ~Sampler();  // stops the thread

    Sampler(const Sampler&) = delete;
    Sampler& operator=(const Sampler&) = delete;

    void start();
    void stop();
    bool running() const;

    /// One synchronous snapshot pass (the background thread calls this
    /// every interval; tests and flush paths may call it directly).
    void sample_now();

    /// Invoked on the sampler thread after every background tick with the
    /// tick index (0-based).  Set before start().
    void set_on_tick(std::function<void(std::uint64_t)> fn);

    double interval_ms() const noexcept { return opts_.interval_ms; }
    /// Seconds since the first sample was taken (0 before any).
    double elapsed_seconds() const;

    /// Materialized view of every tracked series.
    struct SeriesSnapshot {
        std::string name;
        Labels labels;
        bool is_gauge = false;
        std::vector<TimeSeries::Sample> samples;  // t relative to sampler start
        double rate = 0.0;  // per second, over the retained window
        double last = 0.0;
    };
    std::vector<SeriesSnapshot> snapshot() const;

private:
    void loop();
    bool selected(const std::string& name) const;

    Registry& registry_;
    const SamplerOptions opts_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    bool running_ = false;
    double start_t_ = 0.0;  // steady_seconds of the first sample
    struct Series {
        std::string name;
        Labels labels;
        bool is_gauge = false;
        TimeSeries series;
    };
    std::map<std::string, Series> series_;  // keyed by name{labels}
    std::function<void(std::uint64_t)> on_tick_;
    std::thread thread_;
};

/// Renders the snapshot as a JSON value (an object, no trailing newline):
/// {"interval_ms":250,"series":[{"name":...,"labels":{...},"rate_per_s":...,
/// "samples":[{"t":...,"v":...},...]},...]}.  Embedded by
/// Workflow::write_metrics as the "timeseries" block.
std::string timeseries_to_json(const std::vector<Sampler::SeriesSnapshot>& series,
                               double interval_ms);

}  // namespace sb::obs
