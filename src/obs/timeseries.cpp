#include "obs/timeseries.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace sb::obs {

// ---- TimeSeries ------------------------------------------------------------

TimeSeries::TimeSeries(std::size_t capacity) : ring_(capacity ? capacity : 1) {}

void TimeSeries::push(double t, double v) {
    ring_[head_] = Sample{t, v};
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
}

std::vector<TimeSeries::Sample> TimeSeries::samples() const {
    std::vector<Sample> out;
    out.reserve(size_);
    // Oldest first: when full, head_ points at the oldest sample.
    const std::size_t start = size_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

double TimeSeries::rate() const {
    if (size_ < 2) return 0.0;
    const std::size_t start = size_ < ring_.size() ? 0 : head_;
    const Sample& first = ring_[start];
    const Sample& last = ring_[(start + size_ - 1) % ring_.size()];
    const double dt = last.t - first.t;
    if (!(dt > 0.0)) return 0.0;
    return (last.v - first.v) / dt;
}

double TimeSeries::last() const {
    if (size_ == 0) return 0.0;
    return ring_[(head_ + ring_.size() - 1) % ring_.size()].v;
}

// ---- Sampler ---------------------------------------------------------------

Sampler::Sampler(Registry& registry, SamplerOptions opts)
    : registry_(registry), opts_(std::move(opts)) {}

Sampler::~Sampler() { stop(); }

bool Sampler::selected(const std::string& name) const {
    if (opts_.include.empty()) return true;
    for (const std::string& prefix : opts_.include) {
        if (name.compare(0, prefix.size(), prefix) == 0) return true;
    }
    return false;
}

void Sampler::sample_now() {
    const std::vector<MetricSnapshot> metrics = registry_.snapshot();
    const double t = steady_seconds();
    const std::lock_guard lock(mu_);
    if (start_t_ == 0.0) start_t_ = t;
    for (const MetricSnapshot& m : metrics) {
        if (m.type == MetricSnapshot::Type::Histogram) continue;
        if (!selected(m.name)) continue;
        std::string key = m.name;
        key += '{';
        for (const auto& [k, v] : m.labels) {
            key += k;
            key += '=';
            key += v;
            key += ',';
        }
        key += '}';
        auto it = series_.find(key);
        if (it == series_.end()) {
            Series s;
            s.name = m.name;
            s.labels = m.labels;
            s.is_gauge = m.type == MetricSnapshot::Type::Gauge;
            s.series = TimeSeries(opts_.capacity);
            it = series_.emplace(std::move(key), std::move(s)).first;
        }
        const double v = it->second.is_gauge ? m.value
                                             : static_cast<double>(m.count);
        it->second.series.push(t - start_t_, v);
    }
}

void Sampler::loop() {
    std::unique_lock lock(mu_);
    std::uint64_t tick = 0;
    while (!stop_) {
        lock.unlock();
        sample_now();
        if (on_tick_) on_tick_(tick);
        ++tick;
        lock.lock();
        cv_.wait_for(lock,
                     std::chrono::duration<double, std::milli>(opts_.interval_ms),
                     [&] { return stop_; });
    }
}

void Sampler::start() {
    {
        const std::lock_guard lock(mu_);
        if (running_) return;
        running_ = true;
        stop_ = false;
    }
    thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
    {
        const std::lock_guard lock(mu_);
        if (!running_) return;
        stop_ = true;
        cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
    // Final flush: a run shorter than the interval still ends with one
    // complete sample of every selected series.
    sample_now();
    const std::lock_guard lock(mu_);
    running_ = false;
}

bool Sampler::running() const {
    const std::lock_guard lock(mu_);
    return running_;
}

double Sampler::elapsed_seconds() const {
    const std::lock_guard lock(mu_);
    if (start_t_ == 0.0) return 0.0;
    return steady_seconds() - start_t_;
}

void Sampler::set_on_tick(std::function<void(std::uint64_t)> fn) {
    const std::lock_guard lock(mu_);
    on_tick_ = std::move(fn);
}

std::vector<Sampler::SeriesSnapshot> Sampler::snapshot() const {
    const std::lock_guard lock(mu_);
    std::vector<SeriesSnapshot> out;
    out.reserve(series_.size());
    for (const auto& [key, s] : series_) {
        SeriesSnapshot snap;
        snap.name = s.name;
        snap.labels = s.labels;
        snap.is_gauge = s.is_gauge;
        snap.samples = s.series.samples();
        snap.rate = s.series.rate();
        snap.last = s.series.last();
        out.push_back(std::move(snap));
    }
    return out;
}

// ---- export ----------------------------------------------------------------

std::string timeseries_to_json(const std::vector<Sampler::SeriesSnapshot>& series,
                               double interval_ms) {
    std::ostringstream os;
    os << "{\"interval_ms\":" << json_number(interval_ms) << ",\"series\":[";
    bool first = true;
    for (const Sampler::SeriesSnapshot& s : series) {
        os << (first ? "" : ",") << "{\"name\":\"" << json_escape(s.name)
           << "\",\"labels\":{";
        first = false;
        bool lfirst = true;
        for (const auto& [k, v] : s.labels) {
            os << (lfirst ? "" : ",") << '"' << json_escape(k) << "\":\""
               << json_escape(v) << '"';
            lfirst = false;
        }
        os << "},\"type\":\"" << (s.is_gauge ? "gauge" : "counter")
           << "\",\"rate_per_s\":" << json_number(s.rate)
           << ",\"last\":" << json_number(s.last) << ",\"samples\":[";
        bool sfirst = true;
        for (const TimeSeries::Sample& p : s.samples) {
            os << (sfirst ? "" : ",") << "{\"t\":" << json_number(p.t)
               << ",\"v\":" << json_number(p.v) << '}';
            sfirst = false;
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

}  // namespace sb::obs
