#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace sb::obs {

namespace {

/// Largest entry of a stream->seconds map; ("", 0) when empty.
std::pair<std::string, double> argmax(const std::map<std::string, double>& m) {
    std::pair<std::string, double> best{"", 0.0};
    for (const auto& [stream, s] : m) {
        if (best.first.empty() || s > best.second) best = {stream, s};
    }
    return best;
}

double median_of(std::vector<double> xs) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

CriticalPathSummary analyze_critical_path(
    const std::vector<InstanceSteps>& instances) {
    CriticalPathSummary out;
    if (instances.empty()) return out;

    // Graph edges.  The workflow validator enforces single writer/reader
    // groups per stream, so these maps are unambiguous for valid graphs.
    std::map<std::string, std::size_t> producer_of;  // stream -> instance idx
    std::map<std::string, std::size_t> consumer_of;
    for (std::size_t i = 0; i < instances.size(); ++i) {
        for (const std::string& s : instances[i].outputs) producer_of[s] = i;
        for (const std::string& s : instances[i].inputs) consumer_of[s] = i;
    }

    // Per instance: step -> observation row.
    std::vector<std::map<std::uint64_t, const InstanceSteps::Step*>> rows(
        instances.size());
    std::set<std::uint64_t> steps;
    for (std::size_t i = 0; i < instances.size(); ++i) {
        for (const InstanceSteps::Step& st : instances[i].steps) {
            rows[i][st.step] = &st;
            steps.insert(st.step);
        }
    }

    // Sinks: no output consumed inside the workflow (the pipeline's end).
    std::vector<std::size_t> sinks;
    for (std::size_t i = 0; i < instances.size(); ++i) {
        bool consumed = false;
        for (const std::string& s : instances[i].outputs) {
            if (consumer_of.count(s)) consumed = true;
        }
        if (!consumed) sinks.push_back(i);
    }

    for (const std::uint64_t k : steps) {
        // Start the walk at the sink that finished this step last — proxied
        // by the largest compute + wait-in total (its completion closes the
        // step's end-to-end latency).
        const auto total_time = [&](std::size_t i) {
            const auto it = rows[i].find(k);
            if (it == rows[i].end()) return -1.0;
            double t = it->second->compute;
            for (const auto& [stream, w] : it->second->wait_in) t += w;
            return t;
        };
        std::ptrdiff_t cur = -1;
        double best = -1.0;
        for (const std::size_t i : sinks) {
            const double t = total_time(i);
            if (t > best) {
                best = t;
                cur = static_cast<std::ptrdiff_t>(i);
            }
        }
        if (cur < 0) {  // no sink has data for this step: fall back to any
            for (std::size_t i = 0; i < instances.size(); ++i) {
                const double t = total_time(i);
                if (t > best) {
                    best = t;
                    cur = static_cast<std::ptrdiff_t>(i);
                }
            }
        }
        if (cur < 0) continue;

        std::set<std::size_t> visited;
        CriticalPathEntry entry;
        entry.step = k;
        for (;;) {
            const std::size_t c = static_cast<std::size_t>(cur);
            visited.insert(c);
            const InstanceSteps::Step& d = *rows[c].at(k);
            const auto [wstream, w] = argmax(d.wait_in);
            const auto [bstream, b] = argmax(d.bp_out);
            const double comp = d.compute;
            if (comp >= w && comp >= b) {
                entry.limiter = instances[c].instance;
                entry.segment = SegmentKind::Compute;
                entry.seconds = comp;
                break;
            }
            if (w >= b) {
                // Bottleneck upstream: follow the most waited-on input to
                // its producer (if we can and haven't been there).
                const auto pit = producer_of.find(wstream);
                if (pit != producer_of.end() && !visited.count(pit->second) &&
                    rows[pit->second].count(k)) {
                    cur = static_cast<std::ptrdiff_t>(pit->second);
                    continue;
                }
                entry.limiter = instances[c].instance;
                entry.segment = SegmentKind::WaitIn;
                entry.seconds = w;
                break;
            }
            // Bottleneck downstream: a full queue means the consumer is not
            // draining — follow the most backpressured output.
            const auto cit = consumer_of.find(bstream);
            if (cit != consumer_of.end() && !visited.count(cit->second) &&
                rows[cit->second].count(k)) {
                cur = static_cast<std::ptrdiff_t>(cit->second);
                continue;
            }
            entry.limiter = instances[c].instance;
            entry.segment = SegmentKind::BackpressureOut;
            entry.seconds = b;
            break;
        }
        out.per_step.push_back(entry);
    }
    out.steps = out.per_step.size();

    // Aggregate by limiter.
    struct Agg {
        std::uint64_t count = 0;
        std::vector<double> seconds;
        std::map<SegmentKind, std::uint64_t> segments;
    };
    std::map<std::string, Agg> by;
    for (const CriticalPathEntry& e : out.per_step) {
        Agg& a = by[e.limiter];
        ++a.count;
        a.seconds.push_back(e.seconds);
        ++a.segments[e.segment];
    }
    for (auto& [name, a] : by) {
        CriticalPathSummary::PerInstance pi;
        pi.instance = name;
        pi.steps_limiting = a.count;
        pi.median_seconds = median_of(std::move(a.seconds));
        std::uint64_t best_n = 0;
        for (const auto& [seg, n] : a.segments) {
            if (n > best_n) {
                best_n = n;
                pi.segment = seg;
            }
        }
        out.by_instance.push_back(std::move(pi));
    }
    std::sort(out.by_instance.begin(), out.by_instance.end(),
              [](const auto& a, const auto& b) {
                  if (a.steps_limiting != b.steps_limiting) {
                      return a.steps_limiting > b.steps_limiting;
                  }
                  return a.instance < b.instance;
              });
    return out;
}

std::string format_critical_path(const CriticalPathSummary& summary) {
    std::ostringstream os;
    if (summary.steps == 0) {
        os << "critical path: no step timelines recorded (SB_METRICS off, or "
              "no steps ran)\n";
        return os.str();
    }
    os << "critical path over " << summary.steps << " step(s):\n";
    char line[256];
    for (const auto& pi : summary.by_instance) {
        const double pct = 100.0 * static_cast<double>(pi.steps_limiting) /
                           static_cast<double>(summary.steps);
        std::snprintf(line, sizeof line,
                      "  %-24s limits %3llu/%llu steps (%3.0f%%), median %.3f ms %s\n",
                      pi.instance.c_str(),
                      static_cast<unsigned long long>(pi.steps_limiting),
                      static_cast<unsigned long long>(summary.steps), pct,
                      pi.median_seconds * 1e3, segment_kind_name(pi.segment));
        os << line;
    }
    constexpr std::size_t kMaxPerStepLines = 32;
    if (summary.per_step.size() <= kMaxPerStepLines) {
        for (const CriticalPathEntry& e : summary.per_step) {
            std::snprintf(line, sizeof line, "    step %4llu  %-24s %-16s %10.3f ms\n",
                          static_cast<unsigned long long>(e.step),
                          e.limiter.c_str(), segment_kind_name(e.segment),
                          e.seconds * 1e3);
            os << line;
        }
    }
    return os.str();
}

std::string critical_path_to_json(const CriticalPathSummary& summary) {
    std::ostringstream os;
    os << "{\"steps\":" << summary.steps << ",\"by_instance\":[";
    bool first = true;
    for (const auto& pi : summary.by_instance) {
        const double frac = summary.steps
                                ? static_cast<double>(pi.steps_limiting) /
                                      static_cast<double>(summary.steps)
                                : 0.0;
        os << (first ? "" : ",") << "{\"instance\":\"" << json_escape(pi.instance)
           << "\",\"steps_limiting\":" << pi.steps_limiting
           << ",\"fraction\":" << json_number(frac)
           << ",\"median_seconds\":" << json_number(pi.median_seconds)
           << ",\"segment\":\"" << segment_kind_name(pi.segment) << "\"}";
        first = false;
    }
    os << "],\"per_step\":[";
    first = true;
    for (const CriticalPathEntry& e : summary.per_step) {
        os << (first ? "" : ",") << "{\"step\":" << e.step << ",\"limiter\":\""
           << json_escape(e.limiter) << "\",\"segment\":\""
           << segment_kind_name(e.segment)
           << "\",\"seconds\":" << json_number(e.seconds) << "}";
        first = false;
    }
    os << "]}";
    return os.str();
}

}  // namespace sb::obs
