#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/stats.hpp"

namespace sb::obs {

namespace detail {

namespace {
bool env_enabled() {
    const char* env = std::getenv("SB_METRICS");
    if (!env) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "OFF") != 0 &&
           std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

double steady_seconds() noexcept {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram() noexcept
    : neg_min_(-std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

int Histogram::bucket_index(double v) noexcept {
    if (!(v > 0.0)) return 0;  // <= 0 and NaN land in the underflow bucket
    const int e = std::ilogb(v);
    if (e < kMinExp) return 1;
    if (e >= kMaxExp) return kBuckets - 1;
    return e - kMinExp + 1;
}

double Histogram::bucket_upper_bound(int i) noexcept {
    if (i <= 0) return 0.0;
    if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, kMinExp + i);
}

namespace {

/// splitmix64 finalizer (same constants as the supervisor's deterministic
/// restart jitter): a stateless hash of the observation index stands in
/// for an RNG, so reservoir contents are reproducible run to run.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

void Histogram::observe(double v) noexcept {
    if (!enabled()) return;
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    Gauge::update_max(neg_min_, -v);
    Gauge::update_max(max_, v);
    // Uniform reservoir sampling (Vitter's Algorithm R): observation n
    // replaces a random slot with probability kReservoir/(n+1), so at any
    // point the reservoir is a uniform sample of all n observations — the
    // first-K-only scheme it replaces kept only the warm-up, biasing
    // p50/p95 on long runs.
    const std::size_t n = res_n_.fetch_add(1, std::memory_order_relaxed);
    if (n < kReservoir) {
        res_[n].store(v, std::memory_order_relaxed);
    } else {
        const std::uint64_t r = splitmix64(static_cast<std::uint64_t>(n)) %
                                (static_cast<std::uint64_t>(n) + 1);
        if (r < kReservoir) {
            res_[static_cast<std::size_t>(r)].store(v, std::memory_order_relaxed);
        }
    }
}

double Histogram::min() const noexcept {
    const double m = neg_min_.load(std::memory_order_relaxed);
    return std::isfinite(m) ? -m : 0.0;
}

double Histogram::max() const noexcept {
    const double m = max_.load(std::memory_order_relaxed);
    return std::isfinite(m) ? m : 0.0;
}

std::vector<double> Histogram::reservoir() const {
    const std::size_t n =
        std::min(res_n_.load(std::memory_order_relaxed), kReservoir);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(res_[i].load(std::memory_order_relaxed));
    }
    return out;
}

void Histogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    neg_min_.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    res_n_.store(0, std::memory_order_relaxed);
}

// ---- Registry --------------------------------------------------------------

Registry& Registry::global() {
    static Registry r;
    return r;
}

namespace {

Labels canonical_labels(const Labels& labels) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
}

std::string metric_key(const std::string& name, const Labels& sorted) {
    std::string key = name;
    key += '{';
    for (const auto& [k, v] : sorted) {
        key += k;
        key += '=';
        key += v;
        key += ',';
    }
    key += '}';
    return key;
}

std::string labels_to_string(const Labels& labels) {
    std::string out;
    for (const auto& [k, v] : labels) {
        if (!out.empty()) out += ',';
        out += k + "=" + v;
    }
    return out;
}

}  // namespace

template <typename T>
T& Registry::lookup(std::map<std::string, Entry<T>>& m, const std::string& name,
                    const Labels& labels) {
    const Labels sorted = canonical_labels(labels);
    const std::string key = metric_key(name, sorted);
    const std::lock_guard lock(mu_);
    auto it = m.find(key);
    if (it == m.end()) {
        it = m.emplace(key, Entry<T>{name, sorted, std::make_unique<T>()}).first;
    }
    return *it->second.metric;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
    return lookup(counters_, name, labels);
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
    return lookup(gauges_, name, labels);
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels) {
    return lookup(histograms_, name, labels);
}

std::vector<MetricSnapshot> Registry::snapshot() const {
    std::vector<MetricSnapshot> out;
    const std::lock_guard lock(mu_);
    for (const auto& [key, e] : counters_) {
        MetricSnapshot m;
        m.type = MetricSnapshot::Type::Counter;
        m.name = e.name;
        m.labels = e.labels;
        m.count = e.metric->value();
        out.push_back(std::move(m));
    }
    for (const auto& [key, e] : gauges_) {
        MetricSnapshot m;
        m.type = MetricSnapshot::Type::Gauge;
        m.name = e.name;
        m.labels = e.labels;
        m.value = e.metric->value();
        m.high_water = e.metric->high_water();
        out.push_back(std::move(m));
    }
    for (const auto& [key, e] : histograms_) {
        MetricSnapshot m;
        m.type = MetricSnapshot::Type::Histogram;
        m.name = e.name;
        m.labels = e.labels;
        m.count = e.metric->count();
        m.sum = e.metric->sum();
        m.min = e.metric->min();
        m.max = e.metric->max();
        const std::vector<double> samples = e.metric->reservoir();
        m.p50 = util::percentile(samples, 50.0);
        m.p95 = util::percentile(samples, 95.0);
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            const std::uint64_t c = e.metric->bucket_count(i);
            if (c) m.buckets.push_back({Histogram::bucket_upper_bound(i), c});
        }
        out.push_back(std::move(m));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSnapshot& a, const MetricSnapshot& b) {
                  if (a.name != b.name) return a.name < b.name;
                  return a.labels < b.labels;
              });
    return out;
}

double Registry::total(const std::string& name) const {
    double sum = 0.0;
    const std::lock_guard lock(mu_);
    for (const auto& [key, e] : counters_) {
        if (e.name == name) sum += static_cast<double>(e.metric->value());
    }
    for (const auto& [key, e] : gauges_) {
        if (e.name == name) sum += e.metric->value();
    }
    for (const auto& [key, e] : histograms_) {
        if (e.name == name) sum += e.metric->sum();
    }
    return sum;
}

void Registry::reset() {
    const std::lock_guard lock(mu_);
    for (auto& [key, e] : counters_) e.metric->reset();
    for (auto& [key, e] : gauges_) e.metric->reset();
    for (auto& [key, e] : histograms_) e.metric->reset();
    created_ = steady_seconds();
}

double Registry::uptime_seconds() const {
    const std::lock_guard lock(mu_);
    return steady_seconds() - created_;
}

// ---- export ----------------------------------------------------------------

void write_metrics_json(std::ostream& out, const std::vector<MetricSnapshot>& metrics,
                        const std::string& extra) {
    out << "{\n  \"version\": 1,\n  \"metrics\": [";
    bool first = true;
    for (const MetricSnapshot& m : metrics) {
        out << (first ? "\n" : ",\n") << "    {\"name\":\"" << json_escape(m.name)
            << "\",\"labels\":{";
        first = false;
        bool lfirst = true;
        for (const auto& [k, v] : m.labels) {
            out << (lfirst ? "" : ",") << '"' << json_escape(k) << "\":\""
                << json_escape(v) << '"';
            lfirst = false;
        }
        out << "},";
        switch (m.type) {
            case MetricSnapshot::Type::Counter:
                out << "\"type\":\"counter\",\"value\":" << m.count;
                break;
            case MetricSnapshot::Type::Gauge:
                out << "\"type\":\"gauge\",\"value\":" << json_number(m.value)
                    << ",\"high_water\":" << json_number(m.high_water);
                break;
            case MetricSnapshot::Type::Histogram: {
                out << "\"type\":\"histogram\",\"count\":" << m.count
                    << ",\"sum\":" << json_number(m.sum)
                    << ",\"min\":" << json_number(m.min)
                    << ",\"max\":" << json_number(m.max)
                    << ",\"p50\":" << json_number(m.p50)
                    << ",\"p95\":" << json_number(m.p95) << ",\"buckets\":[";
                bool bfirst = true;
                for (const auto& b : m.buckets) {
                    out << (bfirst ? "" : ",") << "{\"le\":"
                        << (std::isfinite(b.le) ? json_number(b.le)
                                                : std::string("\"inf\""))
                        << ",\"count\":" << b.count << '}';
                    bfirst = false;
                }
                out << ']';
                break;
            }
        }
        out << '}';
    }
    out << "\n  ]";
    if (!extra.empty()) out << ",\n  " << extra;
    out << "\n}\n";
}

std::string format_metrics_table(const std::vector<MetricSnapshot>& metrics,
                                 double uptime_seconds) {
    std::ostringstream os;
    char line[288];
    const bool rates = uptime_seconds > 0.0;
    if (rates) {
        std::snprintf(line, sizeof line, "uptime: %.3f s\n", uptime_seconds);
        os << line;
    }
    std::snprintf(line, sizeof line, "%-44s %-28s %12s %12s %12s %12s %12s\n",
                  "metric", "labels", "count/value", rates ? "rate/s" : "sum",
                  rates ? "sum/mean" : "mean", "p50", "p95");
    os << line;
    for (const MetricSnapshot& m : metrics) {
        const std::string labels = labels_to_string(m.labels);
        switch (m.type) {
            case MetricSnapshot::Type::Counter:
                if (rates) {
                    std::snprintf(line, sizeof line, "%-44s %-28s %12llu %12.6g\n",
                                  m.name.c_str(), labels.c_str(),
                                  static_cast<unsigned long long>(m.count),
                                  static_cast<double>(m.count) / uptime_seconds);
                } else {
                    std::snprintf(line, sizeof line, "%-44s %-28s %12llu\n",
                                  m.name.c_str(), labels.c_str(),
                                  static_cast<unsigned long long>(m.count));
                }
                break;
            case MetricSnapshot::Type::Gauge:
                std::snprintf(line, sizeof line,
                              "%-44s %-28s %12.6g %12s hwm=%.6g\n", m.name.c_str(),
                              labels.c_str(), m.value, "", m.high_water);
                break;
            case MetricSnapshot::Type::Histogram: {
                // Histograms print sum then mean in the middle columns
                // either way (the rate-mode header reads "rate/s sum/mean").
                const double mean =
                    m.count ? m.sum / static_cast<double>(m.count) : 0.0;
                std::snprintf(line, sizeof line,
                              "%-44s %-28s %12llu %12.6g %12.6g %12.6g %12.6g\n",
                              m.name.c_str(), labels.c_str(),
                              static_cast<unsigned long long>(m.count), m.sum,
                              mean, m.p50, m.p95);
                break;
            }
        }
        os << line;
    }
    return os.str();
}

}  // namespace sb::obs
