// sb::obs — process-wide, low-overhead observability.
//
// The paper's evaluation hinges on knowing where time goes in an in situ
// pipeline — compute vs. transport vs. backpressure — so the transport and
// runtime layers publish their telemetry here: monotonic counters, gauges
// with high-water marks, and log-bucketed histograms, addressed by name
// plus labels (stream=, comm=).  Design constraints:
//
//   - cheap enough to leave on: the hot path is one relaxed atomic op per
//     update, and a single relaxed bool load when disabled (SB_METRICS=off);
//   - stable identities: the registry never deletes an instrument, so a
//     component may resolve its instruments once and keep the pointers for
//     its whole lifetime; Registry::reset() zeroes values but keeps every
//     pointer valid (tests and benches isolate runs this way);
//   - self-contained export: snapshot() captures everything needed by the
//     JSON exporter and the human-readable summary table (see
//     docs/OBSERVABILITY.md for the metric name reference).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sb::obs {

/// Label set attached to a metric, e.g. {{"stream", "gtcp.fp"}}.  Order
/// does not matter; the registry canonicalizes by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
extern std::atomic<bool> g_enabled;  // initialized from SB_METRICS
}

/// Whether instruments record at all.  Initialized from the SB_METRICS env
/// var ("off"/"0"/"false" disable; anything else, or unset, enables).
inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Seconds on the process-wide steady clock — the shared time base of all
/// observability timestamps (same base as core::steady_now_seconds).
double steady_seconds() noexcept;

/// Monotonic counter (events, bytes).
class Counter {
public:
    void add(std::uint64_t n) noexcept {
        if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
    }
    void inc() noexcept { add(1); }
    std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous value with a high-water mark (queue depths, accumulated
/// blocked time republished from another accounting domain).
class Gauge {
public:
    void set(double v) noexcept {
        if (!enabled()) return;
        v_.store(v, std::memory_order_relaxed);
        update_max(hwm_, v);
    }
    double value() const noexcept { return v_.load(std::memory_order_relaxed); }
    double high_water() const noexcept { return hwm_.load(std::memory_order_relaxed); }
    void reset() noexcept {
        v_.store(0.0, std::memory_order_relaxed);
        hwm_.store(0.0, std::memory_order_relaxed);
    }

private:
    friend class Histogram;
    static void update_max(std::atomic<double>& slot, double v) noexcept {
        double cur = slot.load(std::memory_order_relaxed);
        while (v > cur &&
               !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    std::atomic<double> v_{0.0};
    std::atomic<double> hwm_{0.0};
};

/// Log-bucketed histogram for durations (seconds) and sizes (bytes):
/// bucket boundaries are powers of two from 2^-40 (~1 ns) to 2^24 (~16 M),
/// plus an underflow bucket for v <= 0 and an overflow bucket on top.
/// Tracks count/sum/min/max exactly; additionally keeps a uniform random
/// reservoir of kReservoir raw samples (Algorithm R with a deterministic
/// splitmix hash of the observation index — reproducible runs, matching
/// sb::fault's jitter style) so percentiles computed with util::percentile
/// reflect the whole run, not its warm-up.
class Histogram {
public:
    static constexpr int kMinExp = -40;   // lowest bucket: v < 2^-40
    static constexpr int kMaxExp = 24;    // overflow bucket: v >= 2^24
    static constexpr int kBuckets = kMaxExp - kMinExp + 2;  // + under/overflow
    static constexpr std::size_t kReservoir = 512;

    Histogram() noexcept;

    void observe(double v) noexcept;

    std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    /// Smallest / largest observed value; 0 when empty.
    double min() const noexcept;
    double max() const noexcept;

    /// Index of the bucket `v` lands in.
    static int bucket_index(double v) noexcept;
    /// Exclusive upper bound of bucket `i` (infinity for the overflow bucket).
    static double bucket_upper_bound(int i) noexcept;
    std::uint64_t bucket_count(int i) const noexcept {
        return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }

    /// The retained raw samples (at most kReservoir; a uniform random
    /// subset of all observations, in slot order).
    std::vector<double> reservoir() const;

    void reset() noexcept;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    // Extrema via the monotonic update_max helper: the minimum is tracked
    // negated so both directions are "move up only".
    std::atomic<double> neg_min_;  // initialized to -inf in the ctor
    std::atomic<double> max_;      // initialized to -inf in the ctor
    std::atomic<std::size_t> res_n_{0};
    std::array<std::atomic<double>, kReservoir> res_{};
};

/// One exported metric, fully materialized (see Registry::snapshot).
struct MetricSnapshot {
    enum class Type { Counter, Gauge, Histogram };

    Type type = Type::Counter;
    std::string name;
    Labels labels;  // sorted by key

    // Counter / histogram observation count.
    std::uint64_t count = 0;
    // Gauge.
    double value = 0.0;
    double high_water = 0.0;
    // Histogram.
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    struct Bucket {
        double le = 0.0;  // exclusive upper bound
        std::uint64_t count = 0;
    };
    std::vector<Bucket> buckets;  // non-empty buckets only, ascending
};

/// Thread-safe instrument registry.  Lookup takes a mutex; the returned
/// references are valid for the life of the process, so callers resolve
/// once and then touch only atomics.
class Registry {
public:
    /// The process-wide registry every layer publishes into.
    static Registry& global();

    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    Counter& counter(const std::string& name, const Labels& labels = {});
    Gauge& gauge(const std::string& name, const Labels& labels = {});
    Histogram& histogram(const std::string& name, const Labels& labels = {});

    /// Every registered metric, materialized and sorted by (name, labels).
    std::vector<MetricSnapshot> snapshot() const;

    /// Sum over all label sets of `name`: counter values, gauge values, or
    /// histogram sums (whichever type the name resolves to).
    double total(const std::string& name) const;

    /// Zeroes every instrument.  Identities survive: pointers previously
    /// returned remain valid and start accumulating from zero again.  Also
    /// restarts the uptime clock.
    void reset();

    /// Seconds since this registry was created or last reset() — the
    /// elapsed time counters accumulated over (rate = count / uptime).
    double uptime_seconds() const;

private:
    template <typename T>
    struct Entry {
        std::string name;
        Labels labels;
        std::unique_ptr<T> metric;
    };
    template <typename T>
    T& lookup(std::map<std::string, Entry<T>>& m, const std::string& name,
              const Labels& labels);

    mutable std::mutex mu_;
    std::map<std::string, Entry<Counter>> counters_;
    std::map<std::string, Entry<Gauge>> gauges_;
    std::map<std::string, Entry<Histogram>> histograms_;
    double created_ = steady_seconds();  // uptime base; refreshed by reset()
};

/// Writes the snapshot as a JSON document: {"version":1,"metrics":[...]}.
/// `extra`, when non-empty, is spliced verbatim as additional top-level
/// members (e.g. "\"critical_path\": {...}") — callers are responsible for
/// it being valid JSON member syntax.
void write_metrics_json(std::ostream& out, const std::vector<MetricSnapshot>& metrics,
                        const std::string& extra = {});

/// Renders the snapshot as an aligned human-readable table (counters,
/// gauges with high-water marks, histograms with count/sum/mean/p50/p95/max
/// via util::stats percentiles over the retained samples).  With a positive
/// `uptime_seconds` (e.g. Registry::uptime_seconds) the header carries an
/// uptime line and counters gain a rate column (total / elapsed).
std::string format_metrics_table(const std::vector<MetricSnapshot>& metrics,
                                 double uptime_seconds = 0.0);

}  // namespace sb::obs
