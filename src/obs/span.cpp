#include "obs/span.hpp"

#include "obs/metrics.hpp"

namespace sb::obs {

const char* segment_kind_name(SegmentKind k) {
    switch (k) {
        case SegmentKind::Produce: return "produce";
        case SegmentKind::Assemble: return "assemble";
        case SegmentKind::BackpressureOut: return "backpressure-out";
        case SegmentKind::Queue: return "queue";
        case SegmentKind::WaitIn: return "wait-in";
        case SegmentKind::Consume: return "consume";
        case SegmentKind::Compute: return "compute";
    }
    return "unknown";
}

namespace {

std::string& actor_tls() {
    thread_local std::string actor;
    return actor;
}

}  // namespace

ScopedActor::ScopedActor(std::string actor) : saved_(std::move(actor_tls())) {
    actor_tls() = std::move(actor);
}

ScopedActor::~ScopedActor() { actor_tls() = std::move(saved_); }

const std::string& ScopedActor::current() noexcept { return actor_tls(); }

SpanStore& SpanStore::global() {
    static SpanStore store;
    return store;
}

void SpanStore::record(const std::string& scope, std::uint64_t step,
                       SegmentKind kind, double t0, double t1, int rank) {
    if (!enabled()) return;
    StepSegment seg;
    seg.kind = kind;
    seg.t0 = t0;
    seg.t1 = t1;
    seg.rank = rank;
    seg.actor = ScopedActor::current();

    const std::lock_guard lock(mu_);
    auto& steps = scopes_[scope];
    auto it = steps.find(step);
    if (it == steps.end()) {
        // Sliding window of recent steps: evict the oldest, never refuse
        // the newest (a long run's tail is what reports care about).
        while (steps.size() >= kMaxStepsPerScope) steps.erase(steps.begin());
        it = steps.emplace(step, std::vector<StepSegment>{}).first;
    }
    if (it->second.size() >= kMaxSegmentsPerStep) {
        ++dropped_;
        return;
    }
    it->second.push_back(std::move(seg));
}

std::vector<StepTimeline> SpanStore::timelines(const std::string& scope,
                                               double after) const {
    const std::lock_guard lock(mu_);
    std::vector<StepTimeline> out;
    const auto sit = scopes_.find(scope);
    if (sit == scopes_.end()) return out;
    for (const auto& [step, segments] : sit->second) {
        StepTimeline tl;
        tl.scope = scope;
        tl.step = step;
        for (const StepSegment& seg : segments) {
            if (seg.t0 >= after) tl.segments.push_back(seg);
        }
        if (!tl.segments.empty()) out.push_back(std::move(tl));
    }
    return out;
}

std::vector<std::string> SpanStore::scopes() const {
    const std::lock_guard lock(mu_);
    std::vector<std::string> out;
    out.reserve(scopes_.size());
    for (const auto& [scope, steps] : scopes_) {
        if (!steps.empty()) out.push_back(scope);
    }
    return out;
}

std::uint64_t SpanStore::dropped() const {
    const std::lock_guard lock(mu_);
    return dropped_;
}

void SpanStore::clear() {
    const std::lock_guard lock(mu_);
    scopes_.clear();
    dropped_ = 0;
}

}  // namespace sb::obs
