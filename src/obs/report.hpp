// Critical-path attribution across a workflow's step timelines.
//
// Given, per component instance and per step, (a) the kernel compute time,
// (b) the acquire wait on each input stream, and (c) the backpressure wait
// on each output stream, the analyzer walks the workflow graph per step to
// name the *limiter*: start at the sink; if the dominant segment is
// wait-in, the bottleneck is upstream — move to the producer of the most
// waited-on input; if it is backpressure-out, the bottleneck is downstream
// — move to the consumer of the most backpressured output; if compute
// dominates (or there is nowhere left to move), this instance is the
// limiter.  The per-step verdicts aggregate into summaries like
// "magnitude#1 is the limiter on 83% of steps, median 12.4 ms compute" —
// exactly the signal the ROADMAP's admission control and autoscaling need.
//
// This module is plain data-in/data-out: the workflow layer assembles
// InstanceSteps from StepStats and the SpanStore (core/workflow.cpp) so
// obs stays independent of core.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace sb::obs {

/// One component instance's per-step observations plus its graph edges.
struct InstanceSteps {
    std::string instance;              // e.g. "magnitude#1"
    std::vector<std::string> inputs;   // input stream names
    std::vector<std::string> outputs;  // output stream names

    struct Step {
        std::uint64_t step = 0;
        /// Communicator completion time (max over ranks) of the kernel.
        double compute = 0.0;
        /// Acquire wait per input stream (max over ranks).
        std::map<std::string, double> wait_in;
        /// Backpressure push wait per output stream.
        std::map<std::string, double> bp_out;
    };
    std::vector<Step> steps;  // ascending by step
};

/// Per-step verdict of the walk.
struct CriticalPathEntry {
    std::uint64_t step = 0;
    std::string limiter;  // instance name
    SegmentKind segment = SegmentKind::Compute;  // Compute/WaitIn/BackpressureOut
    double seconds = 0.0;  // the dominant segment's duration
};

struct CriticalPathSummary {
    struct PerInstance {
        std::string instance;
        std::uint64_t steps_limiting = 0;
        /// Median dominant-segment duration over the steps this instance
        /// limited.
        double median_seconds = 0.0;
        /// Most frequent dominant segment over those steps.
        SegmentKind segment = SegmentKind::Compute;
    };

    std::uint64_t steps = 0;  // steps analyzed
    std::vector<CriticalPathEntry> per_step;     // ascending by step
    std::vector<PerInstance> by_instance;        // most-limiting first
};

/// Walks every step present in `instances` (see file comment).  Instances
/// with no data for a step are skipped for that step; an empty input is an
/// empty summary.
CriticalPathSummary analyze_critical_path(const std::vector<InstanceSteps>& instances);

/// Human-readable report: one line per instance ("magnitude#1 limits 10/12
/// steps (83%): median 12.4 ms compute") plus a per-step table when the
/// run is short enough to print one.
std::string format_critical_path(const CriticalPathSummary& summary);

/// JSON value (an object) for embedding as the "critical_path" block of
/// Workflow::write_metrics.
std::string critical_path_to_json(const CriticalPathSummary& summary);

}  // namespace sb::obs
