// Timeline event capture for the transport layer.
//
// Aggregate metrics (obs::Registry) say *how much* time went to
// backpressure; the trace log says *when*: the transport records
// queue-depth samples and stall intervals here, and
// Workflow::write_trace merges them into the Chrome trace as counter
// tracks ("C" events) and async slices, so a viewer shows why a component
// lane is idle, not just that it is.
//
// Events are low-rate (per step / per stall, never per element), so a
// mutex-protected ring is enough; the log is bounded and counts drops
// instead of growing without limit.  Recording is gated on obs::enabled().
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sb::obs {

struct TraceEvent {
    enum class Kind { Counter, Slice };

    Kind kind = Kind::Counter;
    std::string name;      // track or slice name, e.g. "queue depth"
    std::string stream;    // the stream the event belongs to
    std::string category;  // slice category: "backpressure", "acquire", ...
    double t0 = 0.0;       // steady-clock seconds (obs::steady_seconds)
    double t1 = 0.0;       // slice end; unused for counter samples
    double value = 0.0;    // counter sample value
    /// Step/span id the slice refers to (restart and replay slices carry
    /// the resume step so a viewer can cross-reference the step timelines
    /// in the SpanStore); 0 = none.
    std::uint64_t id = 0;
};

class TraceLog {
public:
    static TraceLog& global();

    TraceLog() = default;
    TraceLog(const TraceLog&) = delete;
    TraceLog& operator=(const TraceLog&) = delete;

    /// Records an instantaneous sample of a per-stream counter track
    /// (timestamped now).
    void counter(const std::string& name, const std::string& stream, double value);

    /// Records a completed stall interval [t0, t1].  A non-zero `id` tags
    /// the slice with the step/span it refers to (TraceEvent::id).
    void slice(const std::string& name, const std::string& stream,
               const std::string& category, double t0, double t1,
               std::uint64_t id = 0);

    /// Events with t0 >= t, in record order (a workflow filters by its own
    /// run epoch so earlier runs in the same process don't leak in).
    std::vector<TraceEvent> events_after(double t) const;

    /// Events dropped because the log was full.
    std::uint64_t dropped() const;

    void clear();

    static constexpr std::size_t kCapacity = 1 << 16;

private:
    void record(TraceEvent ev);

    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::uint64_t dropped_ = 0;
};

}  // namespace sb::obs
