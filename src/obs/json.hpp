// Tiny JSON output helpers shared by the observability exporters
// (Workflow::write_trace, Workflow::write_metrics).  Only escaping lives
// here: the exporters emit their own structure, but every string that ends
// up inside a JSON document must pass through json_escape so instance
// names, stream names, and labels can never produce an invalid file.
#pragma once

#include <string>
#include <string_view>

namespace sb::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes are NOT
/// added): ", \, and control characters become their escape sequences.
std::string json_escape(std::string_view s);

/// Formats a double as a JSON number: finite values as shortest round-trip
/// decimal, NaN/inf (not representable in JSON) as 0.
std::string json_number(double v);

}  // namespace sb::obs
