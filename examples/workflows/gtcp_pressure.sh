# The paper's GTCP workflow (Fig. 6): 3-D plasma field -> Select the
# perpendicular pressure -> two Dim-Reduces -> Histogram over the toroid.
# Run with: build/examples/smartblock_run examples/workflows/gtcp_pressure.sh
aprun -n 4 gtcp slices=8 gridpoints=4096 steps=4 &
aprun -n 2 select gtcp.fp field3d 2 psel.fp pp perpendicular_pressure &
aprun -n 2 dim-reduce psel.fp pp 2 1 pflat1.fp pp1 &
aprun -n 2 dim-reduce pflat1.fp pp1 0 1 pflat2.fp pp2 &
aprun -n 1 histogram pflat2.fp pp2 16 gtcp_pressures.txt &
wait
