# The paper's GROMACS workflow (Fig. 7): atom coordinates -> Magnitude
# (distance from origin) -> Histogram of the spread of the atoms.
# Run with: build/examples/smartblock_run examples/workflows/gromacs_spread.sh
aprun -n 2 histogram radii.fp radii 12 gromacs_spread.txt &
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 gromacs atoms=4096 steps=6 substeps=8 &
wait
