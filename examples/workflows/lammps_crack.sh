# The paper's Fig. 8 launch script, scaled to one node: LAMMPS crack
# simulation -> Select(vx,vy,vz) -> Magnitude -> Histogram of speeds.
# Run with: build/examples/smartblock_run examples/workflows/lammps_crack.sh
aprun -n 2 histogram velos.fp velocities 16 lammps_speeds.txt &
aprun -n 2 magnitude lmpselect.fp lmpsel velos.fp velocities &
aprun -n 2 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
aprun -n 4 lammps rows=48 cols=48 steps=4 substeps=10 &
wait
