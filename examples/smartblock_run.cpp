// smartblock_run: execute a SmartBlock workflow "out of the box" from a
// launch-script file — no recompilation, exactly the paper's deployment
// model (Fig. 8) — with the workflow-management extensions of §VI: the
// dataflow graph is validated before launch (typo'd stream names are
// reported instead of deadlocking) and can be rendered to Graphviz.
//
//   smartblock_run [options] <workflow-script> [queue-capacity]
//   smartblock_run --validate <workflow-script>    check wiring, don't run
//   smartblock_run --lint[=strict] <workflow-script>   full static analysis
//                                                  (docs/LINT.md), don't run
//   smartblock_run --dot <workflow-script>         print the dataflow graph
//   smartblock_run --trace t.json <script>         write a Chrome trace
//   smartblock_run --metrics m.json <script>       write metrics + summary
//   smartblock_run --report <script>               print critical-path attribution
//   smartblock_run --watch <script>                live progress line while running
//   smartblock_run --metrics-interval=250 <script> periodic numbered metrics dumps
//   smartblock_run --fault <spec> <script>         arm fault injection (SB_FAULT syntax)
//   smartblock_run --fuse=off <script>             pin operator fusion (on|off|auto)
//   smartblock_run --pool=off <script>             pin step-buffer pooling (on|off)
//   smartblock_run --restart-policy on_failure:3 <script>   supervise + restart
//   smartblock_run --liveness-ms 5000 <script>     hung-peer detection timeout
//   smartblock_run --durable=logdir <script>       crash-consistent step log
//   smartblock_run --durable=logdir --fsync=commit <script>  fsync per frame
//   smartblock_run --durable=logdir --recover      scan + print recovery
//                                                  report, don't run
//
// Example workflow script:
//   aprun -n 2 histogram velos.fp velocities 16 speeds.txt &
//   aprun -n 2 magnitude lmpselect.fp lmpsel velos.fp velocities &
//   aprun -n 2 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
//   aprun -n 4 lammps rows=32 cols=32 steps=4 &
//   wait
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/graph.hpp"
#include "core/launch_script.hpp"
#include "durable/log.hpp"
#include "fault/fault.hpp"
#include "lint/lint.hpp"
#include "flexpath/stream.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/pool.hpp"
#include "sim/source_component.hpp"

namespace {

void print_usage() {
    std::fprintf(stderr,
                 "usage: smartblock_run [--validate|--lint[=strict]|--dot] "
                 "[--allow=<rule-id>] [--trace <out.json>] "
                 "[--metrics <out.json>] [--report] [--watch] "
                 "[--metrics-interval=<ms>] [--read-ahead <depth>] "
                 "[--fuse=on|off|auto] [--pool=on|off] "
                 "[--fault <spec>] [--restart-policy never|on_failure[:max]] "
                 "[--liveness-ms <ms>] [--durable=<dir>] "
                 "[--fsync=never|commit|interval:<ms>] [--recover] "
                 "<workflow-script> [queue-capacity]\n\nregistered components:\n");
    for (const auto& name : sb::core::component_names()) {
        std::fprintf(stderr, "  %-12s %s\n", name.c_str(),
                     sb::core::make_component(name)->usage().c_str());
    }
}

std::string read_file(const char* path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error(std::string("cannot open '") + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
    sb::sim::register_simulations();

    bool validate_only = false, dot_only = false;
    bool lint_only = false, lint_strict = false;
    sb::lint::Options lint_opts;
    bool report = false, watch = false;
    double metrics_interval_ms = 0.0;  // 0 = no periodic dumps
    const char* trace_path = nullptr;
    const char* metrics_path = nullptr;
    const char* fault_spec = nullptr;
    const char* restart_policy = nullptr;
    const char* fuse = nullptr;  // null = resolve from SB_FUSE
    const char* pool = nullptr;  // null = resolve from SB_POOL
    std::size_t read_ahead = 0;  // 0 = resolve from SB_READ_AHEAD / default
    double liveness_ms = -1.0;   // -1 = resolve from SB_LIVENESS_MS / disabled
    const char* durable_dir = nullptr;  // null = durable log disabled
    const char* fsync_policy = nullptr;
    bool recover_only = false;
    int argi = 1;
    while (argi < argc && argv[argi][0] == '-') {
        if (std::strcmp(argv[argi], "--read-ahead") == 0 && argi + 1 < argc) {
            read_ahead = static_cast<std::size_t>(std::stoul(argv[argi + 1]));
            argi += 2;
        } else if (std::strcmp(argv[argi], "--fault") == 0 && argi + 1 < argc) {
            fault_spec = argv[argi + 1];
            argi += 2;
        } else if (std::strcmp(argv[argi], "--restart-policy") == 0 && argi + 1 < argc) {
            restart_policy = argv[argi + 1];
            argi += 2;
        } else if (std::strcmp(argv[argi], "--liveness-ms") == 0 && argi + 1 < argc) {
            liveness_ms = std::stod(argv[argi + 1]);
            argi += 2;
        } else if (std::strncmp(argv[argi], "--fuse=", 7) == 0) {
            fuse = argv[argi] + 7;
            ++argi;
        } else if (std::strncmp(argv[argi], "--pool=", 7) == 0) {
            pool = argv[argi] + 7;
            ++argi;
        } else if (std::strncmp(argv[argi], "--durable=", 10) == 0) {
            durable_dir = argv[argi] + 10;
            ++argi;
        } else if (std::strncmp(argv[argi], "--fsync=", 8) == 0) {
            fsync_policy = argv[argi] + 8;
            ++argi;
        } else if (std::strcmp(argv[argi], "--recover") == 0) {
            recover_only = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--report") == 0) {
            report = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--watch") == 0) {
            watch = true;
            ++argi;
        } else if (std::strncmp(argv[argi], "--metrics-interval=", 19) == 0) {
            metrics_interval_ms = std::stod(argv[argi] + 19);
            ++argi;
        } else if (std::strcmp(argv[argi], "--metrics-interval") == 0 &&
                   argi + 1 < argc) {
            metrics_interval_ms = std::stod(argv[argi + 1]);
            argi += 2;
        } else if (std::strcmp(argv[argi], "--validate") == 0) {
            validate_only = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--lint") == 0) {
            lint_only = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--lint=strict") == 0) {
            lint_only = lint_strict = true;
            ++argi;
        } else if (std::strncmp(argv[argi], "--allow=", 8) == 0) {
            lint_opts.allow.insert(argv[argi] + 8);
            ++argi;
        } else if (std::strcmp(argv[argi], "--dot") == 0) {
            dot_only = true;
            ++argi;
        } else if (std::strcmp(argv[argi], "--trace") == 0 && argi + 1 < argc) {
            trace_path = argv[argi + 1];
            argi += 2;
        } else if (std::strcmp(argv[argi], "--metrics") == 0 && argi + 1 < argc) {
            metrics_path = argv[argi + 1];
            argi += 2;
        } else {
            print_usage();
            return 2;
        }
    }
    if (recover_only) {
        // Offline recovery report: scan the step logs (non-destructively —
        // torn tails are reported, not truncated) and print what a restart
        // would recover.  No script needed, nothing runs.
        if (!durable_dir || !*durable_dir) {
            std::fprintf(stderr, "smartblock_run: --recover needs --durable=<dir>\n");
            return 2;
        }
        try {
            const auto reports = sb::durable::scan_dir(durable_dir);
            if (reports.empty()) {
                std::printf("smartblock_run: no step logs in '%s'\n", durable_dir);
                return 0;
            }
            for (const auto& r : reports) {
                std::printf("%s\n", r.to_string().c_str());
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "smartblock_run: %s\n", e.what());
            return 1;
        }
        return 0;
    }
    if (argi >= argc) {
        print_usage();
        return 2;
    }

    try {
        const std::string script = read_file(argv[argi]);
        const auto entries = sb::core::parse_launch_script(script);

        if (fault_spec) {
            lint_opts.faults = sb::lint::parse_fault_specs(fault_spec);
        }
        if (durable_dir) lint_opts.stream.durable.dir = durable_dir;
        if (fsync_policy &&
            !sb::durable::parse_fsync_policy(fsync_policy, lint_opts.stream.durable)) {
            std::fprintf(stderr,
                         "smartblock_run: bad --fsync '%s' "
                         "(never | commit | interval:<ms>)\n",
                         fsync_policy);
            return 2;
        }
        if (restart_policy &&
            std::string(restart_policy).rfind("on_failure", 0) == 0) {
            lint_opts.restart = sb::core::RestartPolicy::on_failure();
        }

        if (dot_only) {
            // Findings from the full analysis color the rendered graph
            // (errors red, warnings gold).
            const auto result = sb::lint::lint_entries(entries, lint_opts);
            std::fputs(sb::core::graph_to_dot(
                           entries, sb::lint::dot_annotations(entries, result))
                           .c_str(),
                       stdout);
            return 0;
        }
        if (lint_only) {
            // Full static analysis (docs/LINT.md) without running, honoring
            // the `# lint-config:` directives committed in the script.
            const auto result = sb::lint::lint_script(script, lint_opts);
            std::fputs(sb::lint::render_text(result, argv[argi]).c_str(), stdout);
            return sb::lint::exit_code(result, lint_strict);
        }

        // Validate the wiring before any thread launches: a typo'd stream
        // name should be an error message, not a deadlock.  Only the graph
        // rules gate a run — contract and config findings are advisory here
        // and reported by `--lint` — so anything the seed could execute
        // still executes.
        const sb::lint::Result all = sb::lint::lint_entries(entries, lint_opts);
        sb::lint::Result graph;
        for (const auto& d : all.diagnostics) {
            if (d.rule.rfind("graph-", 0) != 0 || d.rule == "graph-opaque-ports") {
                continue;
            }
            graph.diagnostics.push_back(d);
            if (d.severity == sb::lint::Severity::Error) ++graph.errors;
            if (d.severity == sb::lint::Severity::Warning) ++graph.warnings;
        }
        if (!graph.diagnostics.empty()) {
            std::fputs(sb::lint::render_text(graph, argv[argi]).c_str(), stderr);
        }
        if (graph.errors > 0) {
            std::fprintf(stderr, "smartblock_run: workflow graph is not runnable\n");
            return 1;
        }
        if (validate_only) {
            std::printf("smartblock_run: %zu components, wiring OK%s\n",
                        entries.size(),
                        graph.diagnostics.empty() ? "" : " (with warnings)");
            return 0;
        }

        if (fault_spec) {
            const std::size_t n =
                sb::fault::Registry::global().arm_from_env(fault_spec);
            std::printf("smartblock_run: %zu fault spec(s) armed\n", n);
        }

        if (pool) {
            const std::string p(pool);
            if (p == "on") {
                sb::util::set_pool_enabled(true);
            } else if (p == "off") {
                sb::util::set_pool_enabled(false);
            } else {
                std::fprintf(stderr, "smartblock_run: bad --pool '%s' (on | off)\n",
                             pool);
                return 2;
            }
        }

        sb::flexpath::StreamOptions opts;
        opts.read_ahead = read_ahead;
        opts.liveness_ms = liveness_ms;
        opts.durable = lint_opts.stream.durable;  // --durable / --fsync
        if (argi + 1 < argc) {
            opts.queue_capacity = static_cast<std::size_t>(std::stoul(argv[argi + 1]));
        }
        sb::flexpath::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(fabric, script, opts);
        if (fuse) {
            const std::string f(fuse);
            if (f == "on") {
                wf.set_fusion(sb::core::FusionMode::On);
            } else if (f == "off") {
                wf.set_fusion(sb::core::FusionMode::Off);
            } else if (f == "auto") {
                wf.set_fusion(sb::core::FusionMode::Auto);
            } else {
                std::fprintf(stderr,
                             "smartblock_run: bad --fuse '%s' (on | off | auto)\n",
                             fuse);
                return 2;
            }
        }
        if (restart_policy) {
            const std::string p(restart_policy);
            if (p == "never") {
                wf.set_restart_policy(sb::core::RestartPolicy::never());
            } else if (p.rfind("on_failure", 0) == 0) {
                int max_attempts = 2;
                if (p.size() > 10 && p[10] == ':') {
                    max_attempts = std::stoi(p.substr(11));
                }
                wf.set_restart_policy(
                    sb::core::RestartPolicy::on_failure(max_attempts));
            } else {
                std::fprintf(stderr,
                             "smartblock_run: bad --restart-policy '%s' "
                             "(never | on_failure[:max])\n",
                             restart_policy);
                return 2;
            }
        }
        std::printf("smartblock_run: %zu components, %d processes\n", wf.size(),
                    wf.total_procs());

        // Health sampler: one background thread snapshots counters/gauges
        // into time-series rings.  --watch prints a live line per tick,
        // --metrics-interval dumps a numbered metrics JSON per tick, and an
        // attached sampler makes write_metrics embed the "timeseries" block.
        std::optional<sb::obs::Sampler> sampler;
        if (watch || metrics_interval_ms > 0.0) {
            sb::obs::SamplerOptions sopts;
            if (metrics_interval_ms > 0.0) sopts.interval_ms = metrics_interval_ms;
            sampler.emplace(sb::obs::Registry::global(), sopts);
            const std::string dump_base =
                metrics_path ? metrics_path : "metrics.json";
            sampler->set_on_tick([&](std::uint64_t tick) {
                if (watch) {
                    double steps_per_s = 0.0, max_depth = 0.0;
                    const auto series = sampler->snapshot();
                    for (const auto& s : series) {
                        if (s.name == "adios.steps_written") steps_per_s += s.rate;
                        if (s.name == "flexpath.queue_depth") {
                            max_depth = std::max(max_depth, s.last);
                        }
                    }
                    std::fprintf(stderr,
                                 "[watch %7.2f s] %3zu series, steps %.1f/s, "
                                 "max queue depth %.0f\n",
                                 sampler->elapsed_seconds(), series.size(),
                                 steps_per_s, max_depth);
                }
                if (metrics_interval_ms > 0.0) {
                    // Numbered snapshot: <base>.<tick> (critical-path
                    // attribution is only in the final --metrics file —
                    // mid-run dumps are plain counters + time series).
                    std::ofstream out(dump_base + "." + std::to_string(tick),
                                      std::ios::trunc);
                    if (out) {
                        const std::string extra =
                            "\"timeseries\": " +
                            sb::obs::timeseries_to_json(sampler->snapshot(),
                                                        sampler->interval_ms());
                        sb::obs::write_metrics_json(
                            out, sb::obs::Registry::global().snapshot(), extra);
                    }
                }
            });
            sampler->start();
            wf.attach_sampler(&*sampler);
        }

        wf.run();
        if (sampler) sampler->stop();
        std::printf("smartblock_run: workflow completed in %.3f s\n",
                    wf.elapsed_seconds());
        for (std::size_t i = 0; i < wf.size(); ++i) {
            std::printf("  %-20s %6llu steps, mean timestep %.4f s\n",
                        wf.describe(i).c_str(),
                        static_cast<unsigned long long>(wf.stats(i).steps()),
                        wf.stats(i).mean_step_seconds());
        }
        if (trace_path) {
            wf.write_trace(trace_path);
            std::printf("smartblock_run: trace written to %s\n", trace_path);
        }
        if (metrics_path) {
            wf.write_metrics(metrics_path);
            std::printf("smartblock_run: metrics written to %s\n", metrics_path);
            std::fputs(wf.metrics_summary().c_str(), stdout);
        }
        if (report) {
            std::printf("smartblock_run: critical path\n%s",
                        wf.report().c_str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "smartblock_run: %s\n", e.what());
        return 1;
    }
    return 0;
}
