// The extended component library and WMS features in one workflow:
//
//   gtcp --> reduce(mean over toroidal rank) --> transpose --> select
//        --> dim-reduce --> threshold --> moments
//
// plus: pre-launch graph validation, a Graphviz rendering of the DAG, and
// a Chrome-trace timeline of the run (open extended_trace.json in
// Perfetto / chrome://tracing).
#include <cmath>
#include <cstdio>

#include "core/graph.hpp"
#include "core/launch_script.hpp"
#include "core/moments.hpp"
#include "flexpath/stream.hpp"
#include "sim/source_component.hpp"

int main() {
    sb::sim::register_simulations();

    const std::string script =
        "aprun -n 4 gtcp slices=8 gridpoints=2048 steps=4 &\n"
        "aprun -n 2 reduce gtcp.fp field3d 0 mean avg.fp a &\n"
        "aprun -n 1 transpose avg.fp a 1,0 byq.fp t &\n"
        "aprun -n 1 select byq.fp t 0 sel.fp s perpendicular_pressure energy_flux &\n"
        "aprun -n 1 dim-reduce sel.fp s 0 1 flat.fp f &\n"
        "aprun -n 2 threshold flat.fp f above 0.0 pos.fp p &\n"
        "aprun -n 1 moments pos.fp p extended_moments.txt &\n"
        "wait\n";

    const auto entries = sb::core::parse_launch_script(script);

    // 1. Validate the wiring before launch.
    const auto issues = sb::core::validate_graph(entries);
    for (const auto& i : issues) {
        std::printf("%s [%s] %s\n", i.fatal ? "error:" : "warning:",
                    sb::core::graph_issue_kind_name(i.kind), i.message.c_str());
    }
    if (!sb::core::graph_is_runnable(issues)) return 1;
    std::printf("graph validated: %zu components\n\n", entries.size());

    // 2. Show the DAG.
    std::printf("%s\n", sb::core::graph_to_dot(entries).c_str());

    // 3. Run it and dump the timeline.
    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf = sb::core::build_workflow(fabric, script);
    wf.run();
    wf.write_trace("extended_trace.json");
    std::printf("workflow finished in %.3f s; timeline in extended_trace.json\n\n",
                wf.elapsed_seconds());

    std::printf("%6s %8s %12s %12s %12s\n", "step", "count", "mean", "stddev", "max");
    for (const auto& m : sb::core::read_moments_file("extended_moments.txt")) {
        std::printf("%6llu %8llu %12.4f %12.4f %12.4f\n",
                    static_cast<unsigned long long>(m.step),
                    static_cast<unsigned long long>(m.count), m.mean,
                    std::sqrt(m.variance), m.max);
    }
    return 0;
}
