// The paper's GTCP workflow (Fig. 6): the toroidal plasma simulation's
// 3-D output (toroidal rank x gridpoint x quantity) is filtered to the
// perpendicular pressure, flattened by two Dim-Reduce stages into the 1-D
// array Histogram expects, and binned into a pressure distribution of the
// whole toroid.  Per-component timestep timings are printed at the end —
// the measurement behind the paper's Fig. 9.
//
// Usage: gtcp_pressure_workflow [slices] [gridpoints] [steps]
#include <cstdio>
#include <string>

#include "core/histogram.hpp"
#include "core/workflow.hpp"
#include "flexpath/stream.hpp"
#include "sim/source_component.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
    sb::sim::register_simulations();
    const std::string slices = argc > 1 ? argv[1] : "8";
    const std::string gridpoints = argc > 2 ? argv[2] : "4096";
    const std::string steps = argc > 3 ? argv[3] : "4";

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf(fabric);
    wf.add("gtcp", 4,
           {"slices=" + slices, "gridpoints=" + gridpoints, "steps=" + steps});
    auto sel = wf.add("select", 2, {"gtcp.fp", "field3d", "2", "psel.fp", "pp",
                                    "perpendicular_pressure"});
    auto dr1 = wf.add("dim-reduce", 2, {"psel.fp", "pp", "2", "1", "pflat1.fp", "pp1"});
    auto dr2 = wf.add("dim-reduce", 2, {"pflat1.fp", "pp1", "0", "1", "pflat2.fp", "pp2"});
    auto hist = wf.add("histogram", 1, {"pflat2.fp", "pp2", "16", "gtcp_pressure_hist.txt"});
    wf.run();

    std::printf("end-to-end: %.3f s over %d processes\n\n", wf.elapsed_seconds(),
                wf.total_procs());
    const auto report = [](const char* name, const sb::core::StepStats& s, int nprocs) {
        const double t = s.mean_step_seconds();
        const double per_proc_in =
            t > 0 ? static_cast<double>(s.total_bytes_in()) /
                        static_cast<double>(s.steps()) / nprocs / t
                  : 0.0;
        std::printf("%-12s mean timestep %8.4f s   per-process throughput %s\n", name,
                    t, sb::util::format_rate(per_proc_in).c_str());
    };
    report("select", *sel, 2);
    report("dim-reduce1", *dr1, 2);
    report("dim-reduce2", *dr2, 2);
    report("histogram", *hist, 1);

    const auto hists = sb::core::read_histogram_file("gtcp_pressure_hist.txt");
    std::printf("\n%zu per-timestep pressure histograms written; final range "
                "[%.3f, %.3f] over %llu gridpoints\n",
                hists.size(), hists.back().min, hists.back().max,
                static_cast<unsigned long long>(hists.back().total()));
    return 0;
}
