// The paper's GROMACS workflow (Fig. 7): the MD driver publishes atom
// coordinates; Magnitude computes each atom's distance from the origin;
// Histogram shows the evolving spread of the molecule over the run.
//
// Usage: gromacs_spread_workflow [atoms] [steps]
#include <cstdio>
#include <string>

#include "core/histogram.hpp"
#include "core/launch_script.hpp"
#include "flexpath/stream.hpp"
#include "sim/source_component.hpp"

int main(int argc, char** argv) {
    sb::sim::register_simulations();
    const std::string atoms = argc > 1 ? argv[1] : "4096";
    const std::string steps = argc > 2 ? argv[2] : "6";

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf = sb::core::build_workflow(
        fabric,
        "aprun -n 4 gromacs atoms=" + atoms + " steps=" + steps + " substeps=8 &\n"
        "aprun -n 2 magnitude gmx.fp coords radii.fp radii &\n"
        "aprun -n 1 histogram radii.fp radii 12 gromacs_spread_hist.txt &\n"
        "wait\n");
    wf.run();
    std::printf("end-to-end: %.3f s\n\n", wf.elapsed_seconds());

    std::printf("evolution of the spread of the atoms:\n");
    std::printf("%6s %12s %12s %12s\n", "step", "min |x|", "max |x|", "atoms");
    for (const auto& h : sb::core::read_histogram_file("gromacs_spread_hist.txt")) {
        std::printf("%6llu %12.4f %12.4f %12llu\n",
                    static_cast<unsigned long long>(h.step), h.min, h.max,
                    static_cast<unsigned long long>(h.total()));
    }
    return 0;
}
