# Fixed counterpart of rank_unsolvable_bad.sh: both branches demand the
# same rank (1-D), which the replayed stream can satisfy.
aprun -n 1 file-reader replay gtcp.fp field3d &
aprun -n 1 fork gtcp.fp field3d a.fp da b.fp db &
aprun -n 1 histogram a.fp da 8 coarse.txt &
aprun -n 1 histogram b.fp db 16 fine.txt &
wait
