# Trigger: shape-rank-mismatch (error) — histogram needs a 1-D array, but
# gromacs publishes 'coords' as [atoms, 3]; unlinted, this fails at runtime
# on the first step (and with it the whole workflow).
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 histogram gmx.fp coords 16 spread.txt &
wait
