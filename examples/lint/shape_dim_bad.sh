# Trigger: shape-dim-out-of-range (error) — 'field3d' is 3-D, so dimension
# index 3 is out of range for select.
aprun -n 2 gtcp slices=4 gridpoints=64 steps=2 &
aprun -n 1 select gtcp.fp field3d 3 psel.fp pp density &
aprun -n 1 file-writer psel.fp pp psel_out &
wait
