# Trigger: config-replay-impossible (warning) — restart-on-failure with no
# retained steps, no spool, and a dropping data-loss policy: a restarted
# component has nothing to replay.
# lint-config: restart-policy=on-failure retain-steps=0 on-data-loss=skip
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
