# Trigger: graph-multiple-writers (error) — two simulation instances both
# publish 'gmx.fp'; streams support exactly one writer group.
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 gromacs atoms=128 steps=2 &
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
wait
