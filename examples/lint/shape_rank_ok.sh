# Fixed counterpart of shape_rank_bad.sh: magnitude collapses [atoms, 3]
# to the 1-D radii the histogram needs.
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 16 spread.txt &
wait
