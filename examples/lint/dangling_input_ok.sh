# Fixed counterpart of dangling_input_bad.sh: every stream has exactly one
# writer and one reader; smartblock_lint exits 0.
aprun -n 2 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
aprun -n 2 magnitude lmpselect.fp lmpsel velos.fp velocities &
aprun -n 2 histogram velos.fp velocities 16 speeds.txt &
aprun -n 4 lammps rows=16 cols=16 steps=2 &
wait
