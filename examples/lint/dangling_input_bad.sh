# Trigger: graph-dangling-input (error) — 'velso.fp' is a typo for the
# 'velos.fp' stream magnitude writes; the histogram would block forever.
aprun -n 2 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
aprun -n 2 magnitude lmpselect.fp lmpsel velos.fp velocities &
aprun -n 2 histogram velso.fp velocities 16 speeds.txt &
aprun -n 4 lammps rows=16 cols=16 steps=2 &
wait
