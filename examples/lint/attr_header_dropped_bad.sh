# Trigger: attr-header-dropped (error) — dim-reduce absorbs dimension 2
# into 1 and drops both headers; the downstream select then asks for a
# header that provably no longer exists.
aprun -n 2 gtcp slices=4 gridpoints=64 steps=2 &
aprun -n 1 select gtcp.fp field3d 2 psel.fp pp perpendicular_pressure &
aprun -n 1 dim-reduce psel.fp pp 2 1 pflat.fp pp1 &
aprun -n 1 select pflat.fp pp1 1 psel2.fp pp2 perpendicular_pressure &
aprun -n 1 file-writer psel2.fp pp2 psel2_out &
wait
