# Positive counterpart for the attr-header-* rules: select runs on the
# quantity axis (dimension 2) with a published quantity name, before any
# header-dropping transform.
aprun -n 2 gtcp slices=4 gridpoints=64 steps=2 &
aprun -n 1 select gtcp.fp field3d 2 psel.fp pp perpendicular_pressure &
aprun -n 1 dim-reduce psel.fp pp 2 1 pflat.fp pp1 &
aprun -n 1 file-writer pflat.fp pp1 pflat_out &
wait
