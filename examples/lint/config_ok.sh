# Positive counterpart for the config-* rules: retention, data-loss policy,
# liveness, and fault schedule are mutually consistent.
# lint-config: restart-policy=on-failure retain-steps=8 on-data-loss=fail
# lint-config: durable-dir=logs fsync=commit
# lint-config: liveness-ms=5000 fault=flexpath.acquire=delay:50
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
