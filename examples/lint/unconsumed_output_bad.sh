# Trigger: graph-unconsumed-output (warning) — nothing reads radii.fp, so
# the magnitude stalls once the stream's buffer fills.
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
