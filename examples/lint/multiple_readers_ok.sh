# Fixed counterpart of multiple_readers_bad.sh: a fork duplicates the
# radii stream so each histogram has its own copy.
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 1 fork radii.fp radii rcoarse.fp radii rfine.fp radii &
aprun -n 2 histogram rcoarse.fp radii 8 coarse.txt &
aprun -n 2 histogram rfine.fp radii 16 fine.txt &
wait
