# Trigger: shape-validate-mismatch (error) — the two branches select one
# vs. two quantities, so validate compares [4, 64, 1] against [4, 64, 2].
aprun -n 2 gtcp slices=4 gridpoints=64 steps=2 &
aprun -n 1 fork gtcp.fp field3d f1.fp a1 f2.fp a2 &
aprun -n 1 select f1.fp a1 2 s1.fp b1 density &
aprun -n 1 select f2.fp a2 2 s2.fp b2 density temperature &
aprun -n 1 validate s1.fp b1 s2.fp b2 &
wait
