# Trigger: shape-bad-param (error) — zero bins makes the histogram throw on
# its first step; the analyzer reports it before launch.
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 0 spread.txt &
wait
