# Fixed counterpart of multiple_writers_bad.sh: one writer per stream.
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
wait
