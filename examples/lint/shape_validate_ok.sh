# Fixed counterpart of shape_validate_bad.sh: both branches apply the same
# selection, so the compared shapes agree.
aprun -n 2 gtcp slices=4 gridpoints=64 steps=2 &
aprun -n 1 fork gtcp.fp field3d f1.fp a1 f2.fp a2 &
aprun -n 1 select f1.fp a1 2 s1.fp b1 density &
aprun -n 1 select f2.fp a2 2 s2.fp b2 density &
aprun -n 1 validate s1.fp b1 s2.fp b2 &
wait
