# Demonstrates per-rule suppression: the unconsumed radii.fp would warn,
# but the committed allow directive waives exactly that rule
# (equivalently: smartblock_lint --allow=graph-unconsumed-output).
# lint-config: allow=graph-unconsumed-output
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
