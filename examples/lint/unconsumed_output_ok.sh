# Fixed counterpart of unconsumed_output_bad.sh: a histogram consumes the
# radii stream; smartblock_lint exits 0.
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 12 gromacs_spread.txt &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
