# Trigger: config-zerofill-validate (warning) — a zero-filled step flowing
# into validate compares as a (false) mismatch instead of being skipped.
# lint-config: on-data-loss=zero-fill
aprun -n 2 gromacs atoms=128 steps=2 &
aprun -n 1 fork gmx.fp coords c1.fp c1 c2.fp c2 &
aprun -n 1 magnitude c1.fp c1 r1.fp r1 &
aprun -n 1 magnitude c2.fp c2 r2.fp r2 &
aprun -n 1 validate r1.fp r1 r2.fp r2 &
wait
