# Trigger: config-liveness-fault-delay (warning) — the injected 500 ms
# delay exceeds the 100 ms liveness timeout, so the delayed peer is
# declared dead rather than slow.
# lint-config: liveness-ms=100 fault=flexpath.acquire=delay:500
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
