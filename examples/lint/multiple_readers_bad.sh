# Trigger: graph-multiple-readers (error) — two histograms read 'radii.fp';
# duplicate the stream with `fork` to fan out instead.
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 coarse.txt &
aprun -n 2 histogram radii.fp radii 16 fine.txt &
wait
