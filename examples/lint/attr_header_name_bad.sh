# Trigger: attr-header-name (error) — 'vorticity' is not one of the
# quantities gtcp publishes in the dimension-2 header.
aprun -n 2 gtcp slices=4 gridpoints=64 steps=2 &
aprun -n 1 select gtcp.fp field3d 2 psel.fp pp vorticity &
aprun -n 1 file-writer psel.fp pp psel_out &
wait
