# Fixed counterpart of config_durable_volatile_bad.sh: the durable step log
# gives a relaunched process its history back, so restart-on-failure can
# resume instead of starting over.
# lint-config: restart-policy=on-failure retain-steps=8 on-data-loss=fail
# lint-config: durable-dir=logs fsync=interval:50
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
