# Trigger: attr-header-missing (error) — gtcp only attaches a header to
# dimension 2 (the quantity axis); select on dimension 0 has no names to
# select by.
aprun -n 2 gtcp slices=4 gridpoints=64 steps=2 &
aprun -n 1 select gtcp.fp field3d 0 psel.fp pp density &
aprun -n 1 file-writer psel.fp pp psel_out &
wait
