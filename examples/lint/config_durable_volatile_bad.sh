# Trigger: config-durable-volatile (warning) — restart-on-failure with no
# durable log and no spool dir: buffered steps live only in process memory,
# so a process crash loses everything and on_data_loss=fail starts over.
# lint-config: restart-policy=on-failure retain-steps=8 on-data-loss=fail
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
