# Trigger: shape-array-mismatch (error) — the magnitude asks stream gmx.fp
# for array 'coordz', but gromacs writes 'coords'.
aprun -n 2 gromacs atoms=256 steps=2 &
aprun -n 2 magnitude gmx.fp coordz radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
wait
