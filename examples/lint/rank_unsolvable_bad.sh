# Trigger: shape-rank-unsolvable (error) — the file-reader's replayed rank
# is unknown statically; one fork branch needs it to be 1-D (histogram) and
# the other 2-D (magnitude).  No rank satisfies both.
aprun -n 1 file-reader replay gtcp.fp field3d &
aprun -n 1 fork gtcp.fp field3d a.fp da b.fp db &
aprun -n 1 histogram a.fp da 8 h.txt &
aprun -n 1 magnitude b.fp db m.fp mag &
aprun -n 1 file-writer m.fp mag m_out &
wait
