# Fixed counterpart of config_replay_bad.sh: retained steps give restarts
# their replay material back.
# lint-config: restart-policy=on-failure retain-steps=8 on-data-loss=skip
aprun -n 2 magnitude gmx.fp coords radii.fp radii &
aprun -n 2 histogram radii.fp radii 8 spread.txt &
aprun -n 2 gromacs atoms=256 steps=2 &
wait
