// Quickstart: assemble and run a three-stage in situ workflow in ~30 lines.
//
//   gromacs (MD driver) --gmx.fp--> magnitude --radii.fp--> histogram
//
// Every component runs concurrently; the streams connect them by name; the
// workflow drains when the simulation finishes.  The histogram of atom
// distances from the origin lands in quickstart_hist.txt.
#include <cstdio>

#include "core/histogram.hpp"
#include "core/workflow.hpp"
#include "flexpath/stream.hpp"
#include "sim/source_component.hpp"

int main() {
    sb::sim::register_simulations();

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf(fabric);
    wf.add("gromacs", 2, {"atoms=256", "steps=4", "substeps=5"});
    wf.add("magnitude", 2, {"gmx.fp", "coords", "radii.fp", "radii"});
    wf.add("histogram", 1, {"radii.fp", "radii", "12", "quickstart_hist.txt"});
    wf.run();

    std::printf("workflow of %d processes finished in %.3f s\n", wf.total_procs(),
                wf.elapsed_seconds());
    for (const auto& h : sb::core::read_histogram_file("quickstart_hist.txt")) {
        std::printf("step %llu: %llu atoms, |x| in [%.3f, %.3f]\n",
                    static_cast<unsigned long long>(h.step),
                    static_cast<unsigned long long>(h.total()), h.min, h.max);
    }
    return 0;
}
