// smartblock_lint: statically analyze a SmartBlock workflow launch script
// without running it (docs/LINT.md).  Wiring, symbolic shape/rank/kind
// propagation, header availability, fusion legality, and configuration
// safety are all checked against the components' declarative contracts;
// diagnostics carry stable rule IDs, launch-script line anchors, and fix-it
// hints.
//
//   smartblock_lint <workflow-script>                 human-readable report
//   smartblock_lint --json <script>                   machine-readable report
//   smartblock_lint --strict <script>                 warnings fail too (exit 2)
//   smartblock_lint --allow=<rule-id> <script>        suppress a rule (repeatable)
//   smartblock_lint --dot <script>                    Graphviz graph, findings colored
//   smartblock_lint --fuse=on|off|auto <script>       pin fusion for the legality notes
//   smartblock_lint --restart-policy on_failure <script>   audit restart config
//   smartblock_lint --retain-steps N --on-data-loss skip ...   audit stream config
//   smartblock_lint --liveness-ms 100 --fault 'p=delay:500' ...
//
// Exit code: 2 if any error, 1 if any warning (2 under --strict), 0 when
// clean — notes never fail.  Scripts may also embed `# lint-config:
// key=value` comment directives to make a committed script self-contained.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/graph.hpp"
#include "core/launch_script.hpp"
#include "lint/lint.hpp"
#include "sim/source_component.hpp"

namespace {

void print_usage() {
    std::fprintf(
        stderr,
        "usage: smartblock_lint [--json] [--strict] [--dot] [--allow=<rule-id>] "
        "[--fuse=on|off|auto] [--read-ahead <depth>] [--queue-capacity <n>] "
        "[--retain-steps <n>] [--spool-dir <dir>] "
        "[--on-data-loss fail|skip|zero-fill] "
        "[--restart-policy never|on_failure[:max]] [--liveness-ms <ms>] "
        "[--fault <spec>] <workflow-script>\n"
        "\nstatically checks the workflow's wiring, shapes, headers, fusion\n"
        "legality, and configuration safety; see docs/LINT.md for the rule\n"
        "catalog.  exit code: 0 clean, 1 warnings, 2 errors.\n");
}

std::string read_file(const char* path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error(std::string("cannot open '") + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
    sb::sim::register_simulations();

    bool json = false, strict = false, dot = false;
    sb::lint::Options opts;
    int argi = 1;
    try {
        while (argi < argc && argv[argi][0] == '-') {
            if (std::strcmp(argv[argi], "--json") == 0) {
                json = true;
                ++argi;
            } else if (std::strcmp(argv[argi], "--strict") == 0) {
                strict = true;
                ++argi;
            } else if (std::strcmp(argv[argi], "--dot") == 0) {
                dot = true;
                ++argi;
            } else if (std::strncmp(argv[argi], "--allow=", 8) == 0) {
                opts.allow.insert(argv[argi] + 8);
                ++argi;
            } else if (std::strncmp(argv[argi], "--fuse=", 7) == 0) {
                const std::string f(argv[argi] + 7);
                if (f == "on") {
                    opts.fusion = sb::core::FusionMode::On;
                } else if (f == "off") {
                    opts.fusion = sb::core::FusionMode::Off;
                } else if (f == "auto") {
                    opts.fusion = sb::core::FusionMode::Auto;
                } else {
                    print_usage();
                    return 2;
                }
                ++argi;
            } else if (std::strcmp(argv[argi], "--read-ahead") == 0 &&
                       argi + 1 < argc) {
                opts.stream.read_ahead =
                    static_cast<std::size_t>(std::stoul(argv[argi + 1]));
                argi += 2;
            } else if (std::strcmp(argv[argi], "--queue-capacity") == 0 &&
                       argi + 1 < argc) {
                opts.stream.queue_capacity =
                    static_cast<std::size_t>(std::stoul(argv[argi + 1]));
                argi += 2;
            } else if (std::strcmp(argv[argi], "--retain-steps") == 0 &&
                       argi + 1 < argc) {
                opts.stream.retain_steps =
                    static_cast<std::size_t>(std::stoul(argv[argi + 1]));
                argi += 2;
            } else if (std::strcmp(argv[argi], "--spool-dir") == 0 &&
                       argi + 1 < argc) {
                opts.stream.spool_dir = argv[argi + 1];
                argi += 2;
            } else if (std::strcmp(argv[argi], "--on-data-loss") == 0 &&
                       argi + 1 < argc) {
                const std::string v(argv[argi + 1]);
                if (v == "fail") {
                    opts.stream.on_data_loss = sb::flexpath::OnDataLoss::Fail;
                } else if (v == "skip") {
                    opts.stream.on_data_loss = sb::flexpath::OnDataLoss::Skip;
                } else if (v == "zero-fill") {
                    opts.stream.on_data_loss = sb::flexpath::OnDataLoss::ZeroFill;
                } else {
                    print_usage();
                    return 2;
                }
                argi += 2;
            } else if (std::strcmp(argv[argi], "--restart-policy") == 0 &&
                       argi + 1 < argc) {
                const std::string p(argv[argi + 1]);
                if (p == "never") {
                    opts.restart = sb::core::RestartPolicy::never();
                } else if (p.rfind("on_failure", 0) == 0 ||
                           p.rfind("on-failure", 0) == 0) {
                    int max_attempts = 2;
                    if (p.size() > 10 && p[10] == ':') {
                        max_attempts = std::stoi(p.substr(11));
                    }
                    opts.restart = sb::core::RestartPolicy::on_failure(max_attempts);
                } else {
                    print_usage();
                    return 2;
                }
                argi += 2;
            } else if (std::strcmp(argv[argi], "--liveness-ms") == 0 &&
                       argi + 1 < argc) {
                opts.stream.liveness_ms = std::stod(argv[argi + 1]);
                argi += 2;
            } else if (std::strcmp(argv[argi], "--fault") == 0 && argi + 1 < argc) {
                for (auto& spec : sb::lint::parse_fault_specs(argv[argi + 1])) {
                    opts.faults.push_back(std::move(spec));
                }
                argi += 2;
            } else {
                print_usage();
                return 2;
            }
        }
        if (argi != argc - 1) {
            print_usage();
            return 2;
        }

        const std::string script = read_file(argv[argi]);
        const sb::lint::Result result = sb::lint::lint_script(script, opts);

        if (dot) {
            const auto entries = sb::core::parse_launch_script(script);
            std::fputs(sb::core::graph_to_dot(
                           entries, sb::lint::dot_annotations(entries, result))
                           .c_str(),
                       stdout);
            return sb::lint::exit_code(result, strict);
        }
        if (json) {
            std::fputs(sb::lint::render_json(result, strict).c_str(), stdout);
        } else {
            std::fputs(sb::lint::render_text(result, argv[argi]).c_str(), stdout);
        }
        return sb::lint::exit_code(result, strict);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "smartblock_lint: %s\n", e.what());
        return 2;
    }
}
