// The paper's LAMMPS workflow (Fig. 5), assembled exactly the way the paper
// assembles it: a Fig. 8-style launch script.  A thin particle layer is
// cracked under strain; Select keeps the velocity components, Magnitude
// turns them into speeds, Histogram shows the per-timestep speed
// distribution of the whole simulation.
//
// Usage: lammps_crack_workflow [rows] [cols] [steps]
#include <cstdio>
#include <string>

#include "core/histogram.hpp"
#include "core/launch_script.hpp"
#include "flexpath/stream.hpp"
#include "sim/source_component.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
    sb::sim::register_simulations();
    const std::string rows = argc > 1 ? argv[1] : "48";
    const std::string cols = argc > 2 ? argv[2] : "48";
    const std::string steps = argc > 3 ? argv[3] : "5";

    const std::string script =
        "# Fig. 8 of the paper, scaled to one node\n"
        "aprun -n 2 histogram velos.fp velocities 16 lammps_crack_hist.txt &\n"
        "aprun -n 2 magnitude lmpselect.fp lmpsel velos.fp velocities &\n"
        "aprun -n 2 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &\n"
        "aprun -n 4 lammps rows=" + rows + " cols=" + cols + " steps=" + steps +
        " substeps=10 &\n"
        "wait\n";

    sb::flexpath::Fabric fabric;
    sb::core::Workflow wf = sb::core::build_workflow(fabric, script);
    std::printf("launching %zu components, %d processes total\n", wf.size(),
                wf.total_procs());
    wf.run();
    std::printf("end-to-end: %.3f s\n\n", wf.elapsed_seconds());

    for (const auto& h : sb::core::read_histogram_file("lammps_crack_hist.txt")) {
        std::printf("step %llu  speed range [%.4f, %.4f]\n",
                    static_cast<unsigned long long>(h.step), h.min, h.max);
        // A small console rendering of the distribution.
        std::uint64_t peak = 1;
        for (auto c : h.counts) peak = std::max(peak, c);
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            const int bar = static_cast<int>(50 * h.counts[b] / peak);
            std::printf("  %9.4f |%-*s| %llu\n", h.bin_lo(b), 50,
                        std::string(static_cast<std::size_t>(bar), '#').c_str(),
                        static_cast<unsigned long long>(h.counts[b]));
        }
        std::printf("\n");
    }
    return 0;
}
