// A DAG workflow using the future-work components of paper §VI: Fork fans
// the MD stream out to two independent analysis branches, and a third
// branch parks the raw data on disk with FileWriter for later offline
// replay — breaking the "all components simultaneous" constraint.
//
//           +-> magnitude -> histogram (spread of atoms)
//   gromacs -> fork
//           +-> select x -> dim-reduce -> histogram (x-coordinate spread)
//           +-> file-writer (replayable .ffs step files)
#include <cstdio>

#include "core/histogram.hpp"
#include "core/launch_script.hpp"
#include "flexpath/stream.hpp"
#include "sim/source_component.hpp"

int main() {
    sb::sim::register_simulations();

    {
        sb::flexpath::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(
            fabric,
            "aprun -n 2 gromacs atoms=1024 steps=3 substeps=5 &\n"
            "aprun -n 2 fork gmx.fp coords live.fp c1 xsel.fp c2 disk.fp c3 &\n"
            "aprun -n 2 magnitude live.fp c1 radii.fp radii &\n"
            "aprun -n 1 histogram radii.fp radii 10 dag_radii_hist.txt &\n"
            "aprun -n 1 select xsel.fp c2 1 xonly.fp x x &\n"
            "aprun -n 1 dim-reduce xonly.fp x 1 0 xflat.fp xf &\n"
            "aprun -n 1 histogram xflat.fp xf 10 dag_x_hist.txt &\n"
            "aprun -n 2 file-writer disk.fp c3 dag_steps &\n"
            "wait\n");
        wf.run();
        std::printf("DAG of %zu components finished in %.3f s\n", wf.size(),
                    wf.elapsed_seconds());
    }

    // Later (no simulation running): replay the parked stream.
    {
        sb::flexpath::Fabric fabric;
        sb::core::Workflow wf = sb::core::build_workflow(
            fabric,
            "aprun -n 2 file-reader dag_steps replay.fp coords &\n"
            "aprun -n 2 magnitude replay.fp coords r2.fp radii &\n"
            "aprun -n 1 histogram r2.fp radii 10 dag_replay_hist.txt &\n");
        wf.run();
    }

    const auto live = sb::core::read_histogram_file("dag_radii_hist.txt");
    const auto replay = sb::core::read_histogram_file("dag_replay_hist.txt");
    std::printf("live branch: %zu histograms; offline replay: %zu histograms; "
                "identical: %s\n",
                live.size(), replay.size(), live == replay ? "yes" : "NO");
    return live == replay ? 0 : 1;
}
