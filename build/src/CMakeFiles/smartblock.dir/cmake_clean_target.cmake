file(REMOVE_RECURSE
  "libsmartblock.a"
)
