# Empty compiler generated dependencies file for smartblock.
# This may be replaced when dependencies are built.
