
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adios/group.cpp" "src/CMakeFiles/smartblock.dir/adios/group.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/adios/group.cpp.o.d"
  "/root/repo/src/adios/reader.cpp" "src/CMakeFiles/smartblock.dir/adios/reader.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/adios/reader.cpp.o.d"
  "/root/repo/src/adios/writer.cpp" "src/CMakeFiles/smartblock.dir/adios/writer.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/adios/writer.cpp.o.d"
  "/root/repo/src/adios/xml.cpp" "src/CMakeFiles/smartblock.dir/adios/xml.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/adios/xml.cpp.o.d"
  "/root/repo/src/core/all_pairs.cpp" "src/CMakeFiles/smartblock.dir/core/all_pairs.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/all_pairs.cpp.o.d"
  "/root/repo/src/core/component.cpp" "src/CMakeFiles/smartblock.dir/core/component.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/component.cpp.o.d"
  "/root/repo/src/core/dim_reduce.cpp" "src/CMakeFiles/smartblock.dir/core/dim_reduce.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/dim_reduce.cpp.o.d"
  "/root/repo/src/core/downsample.cpp" "src/CMakeFiles/smartblock.dir/core/downsample.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/downsample.cpp.o.d"
  "/root/repo/src/core/file_io.cpp" "src/CMakeFiles/smartblock.dir/core/file_io.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/file_io.cpp.o.d"
  "/root/repo/src/core/fork.cpp" "src/CMakeFiles/smartblock.dir/core/fork.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/fork.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/CMakeFiles/smartblock.dir/core/graph.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/graph.cpp.o.d"
  "/root/repo/src/core/heatmap.cpp" "src/CMakeFiles/smartblock.dir/core/heatmap.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/heatmap.cpp.o.d"
  "/root/repo/src/core/histogram.cpp" "src/CMakeFiles/smartblock.dir/core/histogram.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/histogram.cpp.o.d"
  "/root/repo/src/core/launch_script.cpp" "src/CMakeFiles/smartblock.dir/core/launch_script.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/launch_script.cpp.o.d"
  "/root/repo/src/core/magnitude.cpp" "src/CMakeFiles/smartblock.dir/core/magnitude.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/magnitude.cpp.o.d"
  "/root/repo/src/core/moments.cpp" "src/CMakeFiles/smartblock.dir/core/moments.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/moments.cpp.o.d"
  "/root/repo/src/core/reduce.cpp" "src/CMakeFiles/smartblock.dir/core/reduce.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/reduce.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/smartblock.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/select.cpp" "src/CMakeFiles/smartblock.dir/core/select.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/select.cpp.o.d"
  "/root/repo/src/core/threshold.cpp" "src/CMakeFiles/smartblock.dir/core/threshold.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/threshold.cpp.o.d"
  "/root/repo/src/core/transpose.cpp" "src/CMakeFiles/smartblock.dir/core/transpose.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/transpose.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/smartblock.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/validate.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/CMakeFiles/smartblock.dir/core/workflow.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/core/workflow.cpp.o.d"
  "/root/repo/src/ffs/encode.cpp" "src/CMakeFiles/smartblock.dir/ffs/encode.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/ffs/encode.cpp.o.d"
  "/root/repo/src/ffs/type.cpp" "src/CMakeFiles/smartblock.dir/ffs/type.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/ffs/type.cpp.o.d"
  "/root/repo/src/flexpath/reader.cpp" "src/CMakeFiles/smartblock.dir/flexpath/reader.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/flexpath/reader.cpp.o.d"
  "/root/repo/src/flexpath/stream.cpp" "src/CMakeFiles/smartblock.dir/flexpath/stream.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/flexpath/stream.cpp.o.d"
  "/root/repo/src/flexpath/writer.cpp" "src/CMakeFiles/smartblock.dir/flexpath/writer.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/flexpath/writer.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/CMakeFiles/smartblock.dir/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/mpi/runtime.cpp.o.d"
  "/root/repo/src/sim/all_in_one.cpp" "src/CMakeFiles/smartblock.dir/sim/all_in_one.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/sim/all_in_one.cpp.o.d"
  "/root/repo/src/sim/crack_sim.cpp" "src/CMakeFiles/smartblock.dir/sim/crack_sim.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/sim/crack_sim.cpp.o.d"
  "/root/repo/src/sim/md_sim.cpp" "src/CMakeFiles/smartblock.dir/sim/md_sim.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/sim/md_sim.cpp.o.d"
  "/root/repo/src/sim/source_component.cpp" "src/CMakeFiles/smartblock.dir/sim/source_component.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/sim/source_component.cpp.o.d"
  "/root/repo/src/sim/toroid_sim.cpp" "src/CMakeFiles/smartblock.dir/sim/toroid_sim.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/sim/toroid_sim.cpp.o.d"
  "/root/repo/src/util/argparse.cpp" "src/CMakeFiles/smartblock.dir/util/argparse.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/util/argparse.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/smartblock.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/ndarray.cpp" "src/CMakeFiles/smartblock.dir/util/ndarray.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/util/ndarray.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/smartblock.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/smartblock.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
