# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ndarray[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_ffs[1]_include.cmake")
include("/root/repo/build/tests/test_flexpath[1]_include.cmake")
include("/root/repo/build/tests/test_adios[1]_include.cmake")
include("/root/repo/build/tests/test_components[1]_include.cmake")
include("/root/repo/build/tests/test_launch_script[1]_include.cmake")
include("/root/repo/build/tests/test_sims[1]_include.cmake")
include("/root/repo/build/tests/test_workflows[1]_include.cmake")
include("/root/repo/build/tests/test_integration_extra[1]_include.cmake")
include("/root/repo/build/tests/test_extended_components[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_pipelines[1]_include.cmake")
