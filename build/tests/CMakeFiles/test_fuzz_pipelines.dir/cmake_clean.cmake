file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_pipelines.dir/test_fuzz_pipelines.cpp.o"
  "CMakeFiles/test_fuzz_pipelines.dir/test_fuzz_pipelines.cpp.o.d"
  "test_fuzz_pipelines"
  "test_fuzz_pipelines.pdb"
  "test_fuzz_pipelines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
