# Empty dependencies file for test_launch_script.
# This may be replaced when dependencies are built.
