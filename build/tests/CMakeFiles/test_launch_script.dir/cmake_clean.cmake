file(REMOVE_RECURSE
  "CMakeFiles/test_launch_script.dir/test_launch_script.cpp.o"
  "CMakeFiles/test_launch_script.dir/test_launch_script.cpp.o.d"
  "test_launch_script"
  "test_launch_script.pdb"
  "test_launch_script[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_launch_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
