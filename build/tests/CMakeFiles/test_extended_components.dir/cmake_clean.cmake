file(REMOVE_RECURSE
  "CMakeFiles/test_extended_components.dir/test_extended_components.cpp.o"
  "CMakeFiles/test_extended_components.dir/test_extended_components.cpp.o.d"
  "test_extended_components"
  "test_extended_components.pdb"
  "test_extended_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
