file(REMOVE_RECURSE
  "CMakeFiles/test_ffs.dir/test_ffs.cpp.o"
  "CMakeFiles/test_ffs.dir/test_ffs.cpp.o.d"
  "test_ffs"
  "test_ffs.pdb"
  "test_ffs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
