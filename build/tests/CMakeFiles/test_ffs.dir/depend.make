# Empty dependencies file for test_ffs.
# This may be replaced when dependencies are built.
