# Empty dependencies file for test_flexpath.
# This may be replaced when dependencies are built.
