# Empty compiler generated dependencies file for fig10_magnitude_strong_scaling.
# This may be replaced when dependencies are built.
