file(REMOVE_RECURSE
  "../bench/fig9_component_throughput"
  "../bench/fig9_component_throughput.pdb"
  "CMakeFiles/fig9_component_throughput.dir/fig9_component_throughput.cpp.o"
  "CMakeFiles/fig9_component_throughput.dir/fig9_component_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_component_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
