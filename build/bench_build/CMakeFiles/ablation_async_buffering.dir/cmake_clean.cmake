file(REMOVE_RECURSE
  "../bench/ablation_async_buffering"
  "../bench/ablation_async_buffering.pdb"
  "CMakeFiles/ablation_async_buffering.dir/ablation_async_buffering.cpp.o"
  "CMakeFiles/ablation_async_buffering.dir/ablation_async_buffering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
