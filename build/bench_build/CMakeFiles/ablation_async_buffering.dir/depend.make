# Empty dependencies file for ablation_async_buffering.
# This may be replaced when dependencies are built.
