file(REMOVE_RECURSE
  "../bench/table1_gtcp_weak_scaling"
  "../bench/table1_gtcp_weak_scaling.pdb"
  "CMakeFiles/table1_gtcp_weak_scaling.dir/table1_gtcp_weak_scaling.cpp.o"
  "CMakeFiles/table1_gtcp_weak_scaling.dir/table1_gtcp_weak_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_gtcp_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
