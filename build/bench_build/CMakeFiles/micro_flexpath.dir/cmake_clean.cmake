file(REMOVE_RECURSE
  "../bench/micro_flexpath"
  "../bench/micro_flexpath.pdb"
  "CMakeFiles/micro_flexpath.dir/micro_flexpath.cpp.o"
  "CMakeFiles/micro_flexpath.dir/micro_flexpath.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flexpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
