# Empty dependencies file for micro_flexpath.
# This may be replaced when dependencies are built.
