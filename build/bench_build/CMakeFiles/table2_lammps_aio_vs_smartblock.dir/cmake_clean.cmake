file(REMOVE_RECURSE
  "../bench/table2_lammps_aio_vs_smartblock"
  "../bench/table2_lammps_aio_vs_smartblock.pdb"
  "CMakeFiles/table2_lammps_aio_vs_smartblock.dir/table2_lammps_aio_vs_smartblock.cpp.o"
  "CMakeFiles/table2_lammps_aio_vs_smartblock.dir/table2_lammps_aio_vs_smartblock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lammps_aio_vs_smartblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
