# Empty dependencies file for table2_lammps_aio_vs_smartblock.
# This may be replaced when dependencies are built.
