file(REMOVE_RECURSE
  "CMakeFiles/gromacs_spread_workflow.dir/gromacs_spread_workflow.cpp.o"
  "CMakeFiles/gromacs_spread_workflow.dir/gromacs_spread_workflow.cpp.o.d"
  "gromacs_spread_workflow"
  "gromacs_spread_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gromacs_spread_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
