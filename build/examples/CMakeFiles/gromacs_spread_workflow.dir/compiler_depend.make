# Empty compiler generated dependencies file for gromacs_spread_workflow.
# This may be replaced when dependencies are built.
