# Empty dependencies file for extended_analytics_workflow.
# This may be replaced when dependencies are built.
