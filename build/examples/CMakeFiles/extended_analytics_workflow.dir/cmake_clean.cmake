file(REMOVE_RECURSE
  "CMakeFiles/extended_analytics_workflow.dir/extended_analytics_workflow.cpp.o"
  "CMakeFiles/extended_analytics_workflow.dir/extended_analytics_workflow.cpp.o.d"
  "extended_analytics_workflow"
  "extended_analytics_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_analytics_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
