# Empty dependencies file for lammps_crack_workflow.
# This may be replaced when dependencies are built.
