file(REMOVE_RECURSE
  "CMakeFiles/lammps_crack_workflow.dir/lammps_crack_workflow.cpp.o"
  "CMakeFiles/lammps_crack_workflow.dir/lammps_crack_workflow.cpp.o.d"
  "lammps_crack_workflow"
  "lammps_crack_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lammps_crack_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
