# Empty compiler generated dependencies file for gtcp_pressure_workflow.
# This may be replaced when dependencies are built.
