file(REMOVE_RECURSE
  "CMakeFiles/gtcp_pressure_workflow.dir/gtcp_pressure_workflow.cpp.o"
  "CMakeFiles/gtcp_pressure_workflow.dir/gtcp_pressure_workflow.cpp.o.d"
  "gtcp_pressure_workflow"
  "gtcp_pressure_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtcp_pressure_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
