file(REMOVE_RECURSE
  "CMakeFiles/dag_fork_workflow.dir/dag_fork_workflow.cpp.o"
  "CMakeFiles/dag_fork_workflow.dir/dag_fork_workflow.cpp.o.d"
  "dag_fork_workflow"
  "dag_fork_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_fork_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
