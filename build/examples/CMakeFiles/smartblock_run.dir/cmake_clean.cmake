file(REMOVE_RECURSE
  "CMakeFiles/smartblock_run.dir/smartblock_run.cpp.o"
  "CMakeFiles/smartblock_run.dir/smartblock_run.cpp.o.d"
  "smartblock_run"
  "smartblock_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartblock_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
