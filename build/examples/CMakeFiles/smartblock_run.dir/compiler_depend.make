# Empty compiler generated dependencies file for smartblock_run.
# This may be replaced when dependencies are built.
