// Ablation A2 (DESIGN.md): component granularity.
//
// Paper §III.A argues that "designing a smaller number of components to
// assemble workflows with finer step decomposition allows for more general
// processing", and §V.C validates that the finer decomposition costs
// little.  This ablation runs the same LAMMPS velocity analysis fused into
// 1 stage (the AIO baseline), split into the paper's 3 stages, and split
// into 4 stages (an extra Fork pass-through inserted), reporting end-to-end
// time per decomposition.
//
// Expected shape: time grows only mildly with stage count — each extra
// stage adds an MxN exchange that buffering mostly hides.
#include "bench_util.hpp"

namespace {

double run_stages(int stages) {
    using namespace sb;
    sim::register_simulations();
    flexpath::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("lammps", 2, {"rows=160", "cols=160", "steps=8", "substeps=20"});
    switch (stages) {
        case 1:
            wf.add("aio", 2, {"dump.custom.fp", "atoms", "1", "16",
                              "/tmp/sb_bench_a2.txt", "vx", "vy", "vz"});
            break;
        case 3:
            wf.add("select", 2,
                   {"dump.custom.fp", "atoms", "1", "s.fp", "v", "vx", "vy", "vz"});
            wf.add("magnitude", 2, {"s.fp", "v", "m.fp", "mag"});
            wf.add("histogram", 1, {"m.fp", "mag", "16", "/tmp/sb_bench_a2.txt"});
            break;
        case 4:
            wf.add("select", 2,
                   {"dump.custom.fp", "atoms", "1", "s.fp", "v", "vx", "vy", "vz"});
            wf.add("fork", 2, {"s.fp", "v", "s2.fp", "v2"});  // pass-through stage
            wf.add("magnitude", 2, {"s2.fp", "v2", "m.fp", "mag"});
            wf.add("histogram", 1, {"m.fp", "mag", "16", "/tmp/sb_bench_a2.txt"});
            break;
        default:
            throw std::logic_error("unsupported stage count");
    }
    wf.run();
    return wf.elapsed_seconds();
}

}  // namespace

int main() {
    using namespace sb::bench;
    print_header("Ablation — analysis decomposition granularity",
                 "paper §III.A / §V.C (componentization cost)");

    std::printf("%-34s %-16s\n", "decomposition", "end-to-end (s)");
    double t1 = 0.0, t3 = 0.0;
    for (const int stages : {1, 3, 4}) {
        double t = run_stages(stages);  // best of three (scheduler noise)
        for (int i = 0; i < 2; ++i) t = std::min(t, run_stages(stages));
        if (stages == 1) t1 = t;
        if (stages == 3) t3 = t;
        const char* label = stages == 1   ? "1 stage  (fused all-in-one)"
                            : stages == 3 ? "3 stages (paper's pipeline)"
                                          : "4 stages (extra pass-through)";
        std::printf("%-34s %-16.3f\n", label, t);
    }
    std::printf("\n3-stage SmartBlock vs fused: %+.1f%% (paper Table II: <= +1.9%%)\n",
                100.0 * (t3 - t1) / t1);
    return 0;
}
