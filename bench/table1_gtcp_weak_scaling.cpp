// Reproduces Table I of the paper: "GTCP-SmartBlock: weak scaling
// experiment setup, and end-to-end results".
//
// Five runs of the GTCP workflow at growing scale (process counts and data
// volumes scaled together), reporting each run's end-to-end time and the
// per-process end-to-end throughput (total simulation output / total
// processes / end-to-end time).  The paper's observation to reproduce:
// throughput stays roughly flat across the ladder (good weak scaling), with
// a drop at the largest scale where coordination overhead is most visible
// (the paper measures a worst-case ~57% decrease).
#include "bench_util.hpp"

int main() {
    using namespace sb::bench;
    print_header("Table I — GTCP-SmartBlock weak scaling, end-to-end",
                 "Table I of the paper (values scaled: procs ~1/16, data ~1/100)");

    std::printf("%-4s %-18s %-11s %-12s %-13s %-11s %-13s %-17s %-16s\n", "Run",
                "GTCP Output (MB)", "GTCP Procs", "Select Procs", "Dim-Red Procs",
                "Histo Procs", "End2End (s)", "PerProc (KB/s)", "Aggregate (MB/s)");

    double first_agg = 0.0, last_agg = 0.0;
    double first_pp = 0.0, last_pp = 0.0;
    for (const GtcpRunConfig& c : gtcp_weak_scaling_ladder()) {
        const GtcpRunResult r = run_gtcp_workflow(c);
        const double pp = r.end_to_end_kb_per_proc_per_sec();
        const double agg = static_cast<double>(c.sim_bytes_total()) /
                           (1024.0 * 1024.0) / r.end_to_end_seconds;
        if (c.run_number == 1) { first_agg = agg; first_pp = pp; }
        last_agg = agg;
        last_pp = pp;
        std::printf("%-4d %-18.1f %-11d %-12d %-13d %-11d %-13.2f %-17.0f %-16.1f\n",
                    c.run_number,
                    static_cast<double>(c.sim_bytes_total()) / (1024.0 * 1024.0),
                    c.gtcp_procs, c.select_procs, c.dimred1_procs, c.histo_procs,
                    r.end_to_end_seconds, pp, agg);
    }

    std::printf(
        "\nper-process throughput change, run 1 -> run 5: %.0f%% "
        "(paper: about -57%% at the largest scale).\n"
        "Single-core caveat: rank threads share one core, so per-process "
        "throughput necessarily falls ~1/procs here;\nthe faithful analog of "
        "the paper's flat weak-scaling curve is the AGGREGATE column "
        "(cost per byte does not\ndeteriorate as the ladder grows): "
        "run 1 -> run 5 change %.0f%%.\n",
        100.0 * (last_pp - first_pp) / first_pp,
        100.0 * (last_agg - first_agg) / first_agg);
    return 0;
}
