// Micro-benchmark of the zero-copy publish path (flexpath::WriterPort):
// steady-state step publishing through one stream, writer filling and a
// reader releasing every step, under three write paths —
//
//   view_pooled    put_view() backed by the recycling BufferPool: after the
//                  pool warms up, every step reuses a retired buffer (no
//                  allocation, no zero-fill, no staging copy).
//   view_unpooled  put_view() with SB_POOL off: same API, but every step
//                  pays a fresh zero-initialised allocation.
//   copy_path      the pre-pool idiom: fill a staging vector, then put<T>()
//                  packs it into a fresh shared buffer (allocation + copy).
//
// The payload is sized above the allocator's mmap threshold so the unpooled
// paths pay real page faults each step, as a large simulation output would.
//
// Usage: micro_writepath [--smoke]
// Writes BENCH_micro_writepath.json (see bench_util.hpp JsonReport).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/writer.hpp"
#include "util/pool.hpp"
#include "util/timer.hpp"

namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

enum class Path { ViewPooled, ViewUnpooled, CopyPath };

struct WritepathCase {
    std::uint64_t warmup = 0;  // untimed steps (pool shelf fill, queue prime)
    std::uint64_t steps = 0;   // timed steps
    std::uint64_t elems = 0;   // doubles per step
};

/// Seconds for `wc.steps` steady-state publishes under one write path.
/// The reader releases each step without copying, so the measured loop is
/// the publish path itself: buffer acquisition, fill, submit, retire.
double run_path(const WritepathCase& wc, Path path) {
    const bool prior = u::pool_enabled();
    u::set_pool_enabled(path == Path::ViewPooled);
    fp::Fabric fabric;
    const u::NdShape shape{wc.elems};
    const u::Box whole = u::Box::whole(shape);
    const std::uint64_t total = wc.warmup + wc.steps;

    std::jthread reader([&fabric, total] {
        fp::ReaderPort port(fabric, "wp.fp", 0, 1);
        while (port.begin_step()) port.end_step();
    });

    fp::WriterPort port(fabric, "wp.fp", 0, 1, fp::StreamOptions(4));
    std::vector<double> staging(path == Path::CopyPath ? wc.elems : 0);
    double elapsed = 0.0;
    for (std::uint64_t t = 0; t < total; ++t) {
        u::WallTimer timer;
        port.declare(fp::VarDecl{"v", fp::DataKind::Float64, shape, {}});
        if (path == Path::CopyPath) {
            std::memset(staging.data(), 0x5A, staging.size() * sizeof(double));
            port.put<double>("v", whole, staging);
        } else {
            const std::span<std::byte> view = port.put_view("v", whole);
            std::memset(view.data(), 0x5A, view.size());
        }
        port.end_step();
        if (t >= wc.warmup) elapsed += timer.seconds();
    }
    port.close();
    u::set_pool_enabled(prior);
    return elapsed;
}

const char* path_name(Path p) {
    switch (p) {
        case Path::ViewPooled:
            return "view_pooled";
        case Path::ViewUnpooled:
            return "view_unpooled";
        case Path::CopyPath:
            break;
    }
    return "copy_path";
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    // 32 MiB steps sit above glibc's maximum dynamic mmap threshold, so the
    // unpooled paths mmap + page-fault every step, as a large simulation
    // output would; the recycled buffer keeps its pages mapped.  The smoke
    // case (512 KiB) is small enough for CI but still mmap-backed cold.
    const WritepathCase wc = smoke ? WritepathCase{4, 24, 64 * 1024}
                                   : WritepathCase{4, 20, 4 * 1024 * 1024};
    const int reps = smoke ? 1 : 2;

    sb::bench::print_header(
        "micro: zero-copy publish path with pooled step-buffer recycling",
        "transport overhead per component hop, paper Fig. 9");
    sb::bench::JsonReport report("micro_writepath");

    const double mb = static_cast<double>(wc.steps) *
                      static_cast<double>(wc.elems) * sizeof(double) / 1e6;
    std::printf("1 writer rank -> 1 reader rank, %llu timed steps of [%llu] "
                "doubles (%.1f MB/run)\n\n",
                static_cast<unsigned long long>(wc.steps),
                static_cast<unsigned long long>(wc.elems), mb);

    sb::obs::Registry& reg = sb::obs::Registry::global();
    double pooled_best = 0.0, unpooled_best = 0.0;
    for (const Path path :
         {Path::ViewPooled, Path::ViewUnpooled, Path::CopyPath}) {
        const std::uint64_t before = reg.counter("pool.bytes_allocated", {}).value();
        const std::uint64_t hits_before = reg.counter("pool.hits", {}).value();
        double best = run_path(wc, path);
        for (int i = 1; i < reps; ++i) best = std::min(best, run_path(wc, path));
        // Fresh-allocation volume over all reps: the pool only counts its own
        // misses, so the unpooled paths allocate every published byte afresh.
        const double fresh_mb =
            path == Path::ViewPooled
                ? static_cast<double>(reg.counter("pool.bytes_allocated", {}).value() -
                                      before) / 1e6
                : mb * reps;
        const std::uint64_t hits = reg.counter("pool.hits", {}).value() - hits_before;
        report.add(path_name(path), "pool_hits", static_cast<double>(hits));
        report.add(path_name(path), "elapsed_seconds", best);
        report.add(path_name(path), "mb_per_second", mb / best);
        report.add(path_name(path), "fresh_mb_allocated", fresh_mb);
        std::printf("%-14s %8.2f ms  (%8.1f MB/s publish, %.1f MB freshly "
                    "allocated across %d rep(s))\n",
                    path_name(path), best * 1e3, mb / best, fresh_mb, reps);
        if (path == Path::ViewPooled) pooled_best = best;
        if (path == Path::ViewUnpooled) unpooled_best = best;
    }
    report.add("view_pooled", "speedup_vs_unpooled", unpooled_best / pooled_best);
    std::printf("\npooled put_view speedup vs unpooled: %.2fx\n",
                unpooled_best / pooled_best);

    sb::util::BufferPool::global().trim();
    report.write();
    return 0;
}
