// Micro-benchmark of reader-side step pipelining: a *skewed* reader group
// (each step, a rotating rank pays a fixed compute delay) consuming a
// pre-buffered stream with the in-flight step window at depth 1 (the seed's
// lockstep protocol), 2 (default), and 4.
//
// Under lockstep every rank waits for the slowest peer every step, so the
// group pays the delay once per step (~steps x delay total).  With a window
// of W, ranks may skew by up to W steps, so consecutive delays — which land
// on *different* ranks — overlap, and the group approaches each rank's own
// share (~steps x delay / ranks).  The spooled variant additionally moves
// the spool reload off the stream mutex into the prefetcher, overlapping
// file I/O + decode with reader compute.
//
// Usage: micro_pipeline [--smoke]
// Writes BENCH_micro_pipeline.json (see bench_util.hpp JsonReport).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/writer.hpp"
#include "mpi/runtime.hpp"
#include "util/ndarray.hpp"
#include "util/timer.hpp"

namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

struct PipelineCase {
    std::uint64_t steps = 0;
    int readers = 0;
    std::chrono::milliseconds slow{0};  // per-step delay of the rotating slow rank
    std::uint64_t n = 0, m = 0;
};

/// End-to-end reader-group seconds for one window depth.  The writer runs
/// ahead into a deep queue (optionally spooled), so the readers' pipeline —
/// not production — dominates.
double run_skewed(const PipelineCase& pc, std::size_t read_ahead,
                  const std::string& spool_dir) {
    fp::Fabric fabric;
    const u::NdShape shape{pc.n, pc.m};
    fp::StreamOptions opts(8, spool_dir);
    opts.read_ahead = read_ahead;

    std::jthread writer([&] {
        fp::WriterPort port(fabric, "pipe", 0, 1, opts);
        for (std::uint64_t t = 0; t < pc.steps; ++t) {
            port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
            for (int w = 0; w < 2; ++w) {
                const u::Box b = u::partition_along(shape, 0, w, 2);
                std::vector<double> block(b.volume(), static_cast<double>(t));
                port.put<double>("a", b, block);
            }
            port.end_step();
        }
        port.close();
    });

    u::WallTimer timer;
    sb::mpi::run_ranks(pc.readers, [&](sb::mpi::Communicator& c) {
        fp::ReaderPort port(fabric, "pipe", c.rank(), c.size());
        std::vector<double> buf;
        std::uint64_t t = 0;
        while (port.begin_step()) {
            const u::Box box = u::partition_along(shape, 1, c.rank(), c.size());
            buf.resize(box.volume());
            port.read_bytes("a", box, std::as_writable_bytes(std::span(buf)));
            // Rotating skew: this step's slow rank.
            if (t % static_cast<std::uint64_t>(pc.readers) ==
                static_cast<std::uint64_t>(c.rank())) {
                std::this_thread::sleep_for(pc.slow);
            }
            port.end_step();
            ++t;
        }
    });
    return timer.seconds();
}

double best_of(int reps, const PipelineCase& pc, std::size_t read_ahead,
               const std::string& spool_dir) {
    double best = run_skewed(pc, read_ahead, spool_dir);
    for (int i = 1; i < reps; ++i) {
        best = std::min(best, run_skewed(pc, read_ahead, spool_dir));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    const PipelineCase pc = smoke
                                ? PipelineCase{8, 3, std::chrono::milliseconds(2), 32, 32}
                                : PipelineCase{48, 4, std::chrono::milliseconds(5), 256, 256};
    const int reps = smoke ? 1 : 3;

    sb::bench::print_header(
        "micro: reader-side step pipelining (in-flight window + prefetch)",
        "consumer-side asynchronous overlap, paper §IV");
    sb::bench::JsonReport report("micro_pipeline");

    namespace fs = std::filesystem;
    const fs::path spool = fs::temp_directory_path() / "sb_bench_pipeline_spool";
    fs::remove_all(spool);
    fs::create_directories(spool);

    std::printf("skewed-rank reader group: %d ranks, %llu steps, %lld ms rotating delay\n\n",
                pc.readers, static_cast<unsigned long long>(pc.steps),
                static_cast<long long>(pc.slow.count()));
    for (const bool spooled : {false, true}) {
        std::printf("%-24s %14s %14s %9s\n",
                    spooled ? "spooled" : "in-memory", "elapsed ms", "steps/s",
                    "speedup");
        double lockstep = 0.0;
        for (const std::size_t ra : {1u, 2u, 4u}) {
            const double t = best_of(reps, pc, ra, spooled ? spool.string() : "");
            if (ra == 1) lockstep = t;
            const std::string config = std::string(spooled ? "spool" : "inmem") +
                                       "_ra" + std::to_string(ra);
            report.add(config, "elapsed_seconds", t);
            report.add(config, "steps_per_second",
                       static_cast<double>(pc.steps) / t);
            std::printf("  read_ahead=%-14zu %14.2f %14.1f %8.2fx\n", ra, t * 1e3,
                        static_cast<double>(pc.steps) / t,
                        t > 0.0 ? lockstep / t : 0.0);
        }
        std::printf("\n");
    }

    fs::remove_all(spool);
    report.write();
    return 0;
}
