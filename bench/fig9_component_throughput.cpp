// Reproduces Figure 9 of the paper: "GTCP workflow weak scaling experiment:
// per-component, per-process throughputs in KB/s" for Select, Dim-Reduce 1,
// and Dim-Reduce 2 across the five weak-scaling runs, measured on a
// timestep taken from the middle of the workflow.
//
// Shape to reproduce: throughput per process stays within the same order of
// magnitude across runs (weak scaling holds per component), with visible
// variation at the largest scale where communication overhead dominates.
#include "bench_util.hpp"

int main() {
    using namespace sb::bench;
    print_header("Figure 9 — per-component, per-process throughput (KB/s)",
                 "Fig. 9 of the paper (GTCP weak-scaling runs 1-5)");

    std::printf("%-4s %-14s %-14s %-14s %-14s %-10s\n", "Run", "Select",
                "Dim-Reduce 1", "Dim-Reduce 2", "Histogram", "BP-stall%");

    JsonReport report("fig9_component_throughput");
    std::vector<double> sel_series;
    for (const GtcpRunConfig& c : gtcp_weak_scaling_ladder()) {
        const GtcpRunResult r = run_gtcp_workflow(c);
        const double sel = r.component_kb_per_proc_per_sec(*r.select, c.select_procs);
        const double d1 = r.component_kb_per_proc_per_sec(*r.dimred1, c.dimred1_procs);
        const double d2 = r.component_kb_per_proc_per_sec(*r.dimred2, c.dimred2_procs);
        const double h = r.component_kb_per_proc_per_sec(*r.histo, c.histo_procs);
        sel_series.push_back(sel);
        std::printf("%-4d %-14.0f %-14.0f %-14.0f %-14.0f %-10.2f\n", c.run_number,
                    sel, d1, d2, h, r.backpressure_stall_percent());
        const std::string cfg = "run" + std::to_string(c.run_number);
        report.add(cfg, "select_kb_per_proc_per_sec", sel);
        report.add(cfg, "dimred1_kb_per_proc_per_sec", d1);
        report.add(cfg, "dimred2_kb_per_proc_per_sec", d2);
        report.add(cfg, "histogram_kb_per_proc_per_sec", h);
    }

    // Fast-path counters: the workflow's bounding-box reads should hit the
    // plan cache after the first step, and the aligned pass-through reads
    // should go zero-copy.
    auto& reg = sb::obs::Registry::global();
    std::printf("\nplan cache: %.0f hits / %.0f misses; zero-copy reads: %.0f\n",
                reg.total("flexpath.plan_hits"), reg.total("flexpath.plan_misses"),
                reg.total("flexpath.zero_copy_reads"));

    const auto s = sb::util::summarize(sel_series);
    std::printf("\nSelect throughput spread across runs: min/max = %.2f "
                "(paper reads ~0.4-0.6 from its chart)\n",
                s.max > 0 ? s.min / s.max : 0.0);
    report.write();
    return 0;
}
