// Micro-benchmark of the resilience machinery (docs/RESILIENCE.md):
//
//   1. Replay throughput vs retained depth — a reader detaches with D
//      spool-retained steps outstanding, reattaches, and drains the replay.
//      Measures the spool reload + redistribution cost a restarted
//      component pays before it sees fresh data.
//   2. Restart latency — the same two-component workflow run clean and with
//      one injected mid-stream crash of the sink (restart policy
//      on_failure), reporting the end-to-end overhead of detach + backoff +
//      relaunch + replay.
//
// Usage: micro_restart [--smoke]
// Writes BENCH_micro_restart.json (see bench_util.hpp JsonReport).
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/component.hpp"
#include "core/registry.hpp"
#include "core/workflow.hpp"
#include "fault/fault.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/writer.hpp"
#include "util/ndarray.hpp"
#include "util/timer.hpp"

namespace core = sb::core;
namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

/// Publishes `depth` steps of `len` doubles, parks them on disk by
/// detaching the reader, then times the reattached reader draining the
/// replay (spool reload + copy per step).
double replay_drain_seconds(std::uint64_t depth, std::uint64_t len,
                            const std::string& spool_dir) {
    fp::Fabric fabric;
    // The queue must hold every step: payloads spill to the spool, but each
    // assembled step still passes through the bounded queue, and no reader
    // is attached while the writer runs ahead.
    fp::StreamOptions opts(static_cast<std::size_t>(depth) + 1, spool_dir);
    opts.read_ahead = 2;
    opts.retain_steps = static_cast<std::size_t>(depth);

    {
        fp::WriterPort w(fabric, "replay", 0, 1, opts);
        std::vector<double> block(len);
        for (std::uint64_t t = 0; t < depth; ++t) {
            for (std::uint64_t i = 0; i < len; ++i) {
                block[i] = static_cast<double>(t * len + i);
            }
            w.declare(fp::VarDecl{"a", fp::DataKind::Float64, u::NdShape{len}, {}});
            w.put<double>("a", u::Box({0}, {len}), block);
            w.end_step();
        }
        w.close();
    }
    // A reader attaches, acknowledges nothing, and dies.
    { fp::ReaderPort dead(fabric, "replay", 0, 1); }
    fabric.get("replay")->detach_reader();

    u::WallTimer timer;
    fp::ReaderPort port(fabric, "replay", 0, 1);
    std::vector<double> buf(len);
    std::uint64_t steps = 0;
    while (port.begin_step()) {
        port.read_bytes("a", u::Box({0}, {len}),
                        std::as_writable_bytes(std::span(buf)));
        port.end_step();
        ++steps;
    }
    const double t = timer.seconds();
    if (steps != depth) {
        std::fprintf(stderr, "micro_restart: replayed %llu of %llu steps\n",
                     static_cast<unsigned long long>(steps),
                     static_cast<unsigned long long>(depth));
    }
    return t;
}

/// Deterministic source for the restart-latency workflow (same shape as the
/// chaos tests): `steps` steps of `len` doubles on one rank.
class BenchSource final : public core::Component {
public:
    std::string name() const override { return "bench_source"; }
    std::string usage() const override {
        return "bench_source out-stream-name num-steps len";
    }
    core::Ports ports(const sb::util::ArgList& args) const override {
        args.require_at_least(3, usage());
        return core::Ports{{}, {args.str(0, "out-stream-name")}};
    }
    void run(core::RunContext& ctx, const sb::util::ArgList& args) override {
        args.require_at_least(3, usage());
        const std::string out = args.str(0, "out-stream-name");
        const std::uint64_t steps = args.unsigned_integer(1, "num-steps");
        const std::uint64_t len = args.unsigned_integer(2, "len");
        fp::WriterPort port(ctx.fabric, out, ctx.comm.rank(), ctx.comm.size(),
                            ctx.stream_options);
        std::vector<double> v(len);
        for (std::uint64_t t = 0; t < steps; ++t) {
            for (std::uint64_t i = 0; i < len; ++i) {
                v[i] = static_cast<double>(t * 100 + i) * 0.5;
            }
            port.declare(
                fp::VarDecl{"v", fp::DataKind::Float64, u::NdShape{len}, {}});
            port.put<double>("v", u::Box({0}, {len}), v);
            port.end_step();
            core::record_step(ctx, t, 0.0, 0, len * sizeof(double));
        }
        port.close();
    }
};

/// End-to-end seconds of a source→histogram workflow; when `fault` is
/// non-empty it is armed (SB_FAULT syntax) and the sink restarts once.
double workflow_seconds(std::uint64_t steps, std::uint64_t len,
                        const std::string& stream, const std::string& out_file,
                        const std::string& fault) {
    auto& faults = sb::fault::Registry::global();
    faults.disarm_all();
    if (!fault.empty()) faults.arm_from_env(fault.c_str());

    fp::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("bench_source",
           1, {stream, std::to_string(steps), std::to_string(len)});
    wf.add("histogram", 1, {stream, "v", "16", out_file});
    wf.set_restart_policy(core::RestartPolicy::on_failure(2));
    wf.run();
    faults.disarm_all();
    return wf.elapsed_seconds();
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    const int reps = smoke ? 1 : 3;
    const std::uint64_t len = smoke ? 4096 : 32768;  // doubles per step

    core::register_component("bench_source",
                             [] { return std::make_unique<BenchSource>(); });

    sb::bench::print_header(
        "micro: restart + replay (detach/reattach, supervised relaunch)",
        "fault tolerance machinery, docs/RESILIENCE.md");
    sb::bench::JsonReport report("micro_restart");

    namespace fs = std::filesystem;
    const fs::path scratch = fs::temp_directory_path() / "sb_bench_restart";
    fs::remove_all(scratch);
    fs::create_directories(scratch);

    std::printf("replay drain after reader detach (%llu KiB/step, spooled)\n\n",
                static_cast<unsigned long long>(len * sizeof(double) / 1024));
    std::printf("%-16s %14s %14s %12s\n", "retained depth", "elapsed ms",
                "steps/s", "MB/s");
    const std::vector<std::uint64_t> depths =
        smoke ? std::vector<std::uint64_t>{2, 4}
              : std::vector<std::uint64_t>{2, 4, 8, 16};
    for (const std::uint64_t depth : depths) {
        double best = replay_drain_seconds(depth, len, scratch.string());
        for (int i = 1; i < reps; ++i) {
            best = std::min(best,
                            replay_drain_seconds(depth, len, scratch.string()));
        }
        const double steps_s = static_cast<double>(depth) / best;
        const double mb_s =
            static_cast<double>(depth * len * sizeof(double)) / best / 1e6;
        const std::string config = "replay_d" + std::to_string(depth);
        report.add(config, "elapsed_seconds", best);
        report.add(config, "steps_per_second", steps_s);
        std::printf("%-16llu %14.2f %14.1f %12.1f\n",
                    static_cast<unsigned long long>(depth), best * 1e3, steps_s,
                    mb_s);
    }

    const std::uint64_t steps = smoke ? 6 : 12;
    std::printf("\nsupervised restart latency (source->histogram, %llu steps)\n\n",
                static_cast<unsigned long long>(steps));
    double clean = workflow_seconds(steps, len, "bench.clean.fp",
                                    (scratch / "clean.txt").string(), "");
    double faulted = workflow_seconds(
        steps, len, "bench.fault.fp", (scratch / "fault.txt").string(),
        "seed=7; flexpath.acquire:bench.fault.fp=throw@3");
    for (int i = 1; i < reps; ++i) {
        clean = std::min(clean,
                         workflow_seconds(steps, len, "bench.clean.fp",
                                          (scratch / "clean.txt").string(), ""));
        faulted = std::min(
            faulted,
            workflow_seconds(steps, len, "bench.fault.fp",
                             (scratch / "fault.txt").string(),
                             "seed=7; flexpath.acquire:bench.fault.fp=throw@3"));
    }
    report.add("workflow", "clean_seconds", clean);
    report.add("workflow", "faulted_seconds", faulted);
    report.add("workflow", "restart_overhead_seconds", faulted - clean);
    std::printf("%-16s %14.2f ms\n", "clean", clean * 1e3);
    std::printf("%-16s %14.2f ms\n", "1 crash+restart", faulted * 1e3);
    std::printf("%-16s %14.2f ms (backoff + detach + replay)\n", "overhead",
                (faulted - clean) * 1e3);

    fs::remove_all(scratch);
    report.write();
    return 0;
}
