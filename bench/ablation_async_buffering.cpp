// Ablation A1 (DESIGN.md): FlexPath's asynchronous writer-side buffering.
//
// Paper §IV point 4 credits the overlap of computation and I/O to the
// writer-side buffer ("a FlexPath stream is implemented as writer side
// internal data buffering until readers are ready...").  This ablation runs
// the LAMMPS pipeline with the stream queue capacity set to 0 (synchronous
// rendezvous handoff: a writer's end_step blocks until the reader group has
// taken the step), 1, 2, and 4 buffered steps, and reports end-to-end time.
//
// Expected shape: on parallel hardware the synchronous handoff is slowest
// (every stage waits for its consumer every step) and a small buffer
// recovers the compute/I-O overlap.  On this single-core container the
// total CPU work is fixed, so overlap cannot shorten wall time — the
// honest expectation here is that buffering costs nothing and removes
// per-step synchronization stalls (a small, sometimes noise-level win);
// the structural effect (writers run ahead, bounded memory, backpressure)
// is verified functionally in the test suite.
#include "bench_util.hpp"

namespace {

double run_with_queue_capacity(std::size_t capacity) {
    using namespace sb;
    sim::register_simulations();
    flexpath::Fabric fabric;
    flexpath::StreamOptions opts;
    opts.queue_capacity = capacity;
    // Pin the reader-side window to 1 so writer-side buffering depth stays
    // the only variable of this ablation (read-ahead is measured separately
    // by micro_pipeline).
    opts.read_ahead = 1;
    core::Workflow wf(fabric, opts);
    wf.add("lammps", 2, {"rows=160", "cols=160", "steps=8", "substeps=20"});
    wf.add("select", 2, {"dump.custom.fp", "atoms", "1", "s.fp", "v", "vx", "vy", "vz"});
    wf.add("magnitude", 2, {"s.fp", "v", "m.fp", "mag"});
    wf.add("histogram", 1, {"m.fp", "mag", "16", "/tmp/sb_bench_ablation_a1.txt"});
    wf.run();
    return wf.elapsed_seconds();
}

}  // namespace

int main() {
    using namespace sb::bench;
    print_header("Ablation — asynchronous writer-side buffering depth",
                 "paper §IV assembly property 4");

    std::printf("%-26s %-16s\n", "queue capacity (steps)", "end-to-end (s)");
    double sync_time = 0.0, async_time = 0.0;
    for (const std::size_t cap : {0u, 1u, 2u, 4u}) {
        double t = run_with_queue_capacity(cap);  // best of three (noise)
        for (int i = 0; i < 2; ++i) t = std::min(t, run_with_queue_capacity(cap));
        if (cap == 0) sync_time = t;
        if (cap == 2) async_time = t;
        std::printf("%-26s %-16.3f\n",
                    cap == 0 ? "0 (synchronous handoff)" : std::to_string(cap).c_str(),
                    t);
    }
    std::printf("\nasync buffering (depth 2) vs synchronous handoff: %+.1f%%\n",
                100.0 * (async_time - sync_time) / sync_time);
    return 0;
}
