// Shared machinery for the evaluation-reproduction benches.
//
// Scaling note (documented in DESIGN.md): the paper ran on Titan (up to
// 1,600 processes) and an 80-node cluster; this reproduction runs on a
// single container where each "process" is a thread.  Process counts are
// scaled down ~16x and data volumes ~100x from the paper's Table I / II,
// keeping the *ratios between runs* so the scaling shapes are comparable.
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/histogram.hpp"
#include "core/workflow.hpp"
#include "flexpath/stream.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/source_component.hpp"
#include "sim/toroid_sim.hpp"
#include "util/stats.hpp"

namespace sb::bench {

/// One run of the GTCP workflow (Table I / Fig. 9 of the paper): the
/// simulation, Select(perpendicular_pressure), two Dim-Reduces, and the
/// Histogram endpoint, launched together.
struct GtcpRunConfig {
    int run_number = 1;
    std::uint64_t slices = 8;
    std::uint64_t gridpoints = 1024;
    std::uint64_t steps = 3;
    int gtcp_procs = 4;
    int select_procs = 1;
    int dimred1_procs = 1;
    int dimred2_procs = 1;
    int histo_procs = 1;
    /// Transport knobs for every stream the workflow opens (buffering depth,
    /// spooling) and the fusion mode — Auto follows SB_FUSE, so fused-vs-
    /// unfused A/Bs pin On/Off explicitly.
    flexpath::StreamOptions stream_options{};
    core::FusionMode fusion = core::FusionMode::Auto;

    std::uint64_t sim_bytes_per_step() const {
        return slices * gridpoints * 7 * 8;
    }
    std::uint64_t sim_bytes_total() const { return sim_bytes_per_step() * steps; }
    int total_procs() const {
        return gtcp_procs + select_procs + dimred1_procs + dimred2_procs + histo_procs;
    }
};

struct GtcpRunResult {
    GtcpRunConfig config;
    double end_to_end_seconds = 0.0;
    /// Transport stall time this run added across all streams and ranks
    /// (deltas of the process-wide obs totals).
    double backpressure_wait_seconds = 0.0;
    double acquire_wait_seconds = 0.0;
    /// Per-component stats, in pipeline order.
    std::shared_ptr<core::StepStats> select, dimred1, dimred2, histo;

    /// Backpressure stall as a percentage of total process-time: how much
    /// of the workflow's aggregate compute capacity was spent blocked on
    /// full downstream queues.  0 when metrics are off (SB_METRICS=off).
    double backpressure_stall_percent() const {
        const double proc_seconds = end_to_end_seconds * config.total_procs();
        return proc_seconds > 0.0
                   ? 100.0 * backpressure_wait_seconds / proc_seconds
                   : 0.0;
    }

    /// The paper's Table I throughput: total simulation output divided by
    /// the total process count and the end-to-end time.
    double end_to_end_kb_per_proc_per_sec() const {
        return static_cast<double>(config.sim_bytes_total()) / 1024.0 /
               config.total_procs() / end_to_end_seconds;
    }

    /// Fig. 9's per-component, per-process throughput (KB/s): the
    /// component's per-step input volume over its process count and step
    /// completion time, averaged over the steady-state steps (the first
    /// step is warm-up: lazily created writers, first-touch buffers).
    double component_kb_per_proc_per_sec(const core::StepStats& s, int nprocs) const {
        const auto rows = s.per_step();
        double sum = 0.0;
        int n = 0;
        for (std::size_t i = rows.size() > 1 ? 1 : 0; i < rows.size(); ++i) {
            if (rows[i].mean_seconds <= 0.0) continue;
            sum += static_cast<double>(rows[i].bytes_in) / 1024.0 / nprocs /
                   rows[i].mean_seconds;
            ++n;
        }
        return n ? sum / n : 0.0;
    }
};

/// The five weak-scaling runs: process ladder scaled ~1/16 and data ~1/100
/// from the paper's Table I setup.
inline std::vector<GtcpRunConfig> gtcp_weak_scaling_ladder() {
    // Paper: output {918, 1435, 2066, 2811, 12905} MB over runs 1..5 with
    // procs gtcp {64,84,156,234,1024}, select {10,16,18,25,116},
    // dim-reduce {6,10,14,19,88} (x2), histogram {2,2,4,5,24}.
    std::vector<GtcpRunConfig> runs;
    const double mb[] = {9.18, 14.35, 20.66, 28.11, 129.05};  // /100
    const int gtcp[] = {4, 5, 10, 15, 64};
    const int sel[] = {1, 1, 1, 2, 7};
    const int dr[] = {1, 1, 1, 1, 6};
    const int hist[] = {1, 1, 1, 1, 2};
    for (int i = 0; i < 5; ++i) {
        GtcpRunConfig c;
        c.run_number = i + 1;
        c.steps = 6;
        c.slices = 8;
        // Total bytes = slices * gridpoints * 7 * 8 * steps.
        c.gridpoints = static_cast<std::uint64_t>(
            mb[i] * 1024.0 * 1024.0 /
            (static_cast<double>(c.slices) * 7.0 * 8.0 *
             static_cast<double>(c.steps)));
        c.gtcp_procs = gtcp[i];
        c.select_procs = sel[i];
        c.dimred1_procs = dr[i];
        c.dimred2_procs = dr[i];
        c.histo_procs = hist[i];
        runs.push_back(c);
    }
    return runs;
}

/// Assembles and runs one GTCP workflow; the histogram file goes to /tmp.
inline GtcpRunResult run_gtcp_workflow(const GtcpRunConfig& c) {
    sim::register_simulations();
    flexpath::Fabric fabric;
    core::Workflow wf(fabric, c.stream_options);
    wf.set_fusion(c.fusion);
    wf.add("gtcp", c.gtcp_procs,
           {"slices=" + std::to_string(c.slices),
            "gridpoints=" + std::to_string(c.gridpoints),
            "steps=" + std::to_string(c.steps)});
    GtcpRunResult r;
    r.config = c;
    r.select = wf.add("select", c.select_procs,
                      {"gtcp.fp", "field3d", "2", "psel.fp", "pp",
                       "perpendicular_pressure"});
    r.dimred1 = wf.add("dim-reduce", c.dimred1_procs,
                       {"psel.fp", "pp", "2", "1", "pflat1.fp", "pp1"});
    r.dimred2 = wf.add("dim-reduce", c.dimred2_procs,
                       {"pflat1.fp", "pp1", "0", "1", "pflat2.fp", "pp2"});
    r.histo = wf.add("histogram", c.histo_procs,
                     {"pflat2.fp", "pp2", "16",
                      "/tmp/sb_bench_gtcp_run" + std::to_string(c.run_number) + ".txt"});
    auto& reg = obs::Registry::global();
    const double bp0 = reg.total("flexpath.backpressure_wait_seconds");
    const double acq0 = reg.total("flexpath.acquire_wait_seconds");
    wf.run();
    r.end_to_end_seconds = wf.elapsed_seconds();
    r.backpressure_wait_seconds =
        reg.total("flexpath.backpressure_wait_seconds") - bp0;
    r.acquire_wait_seconds = reg.total("flexpath.acquire_wait_seconds") - acq0;
    return r;
}

/// Machine-readable bench output: collects samples per (config, metric) and
/// writes `BENCH_<name>.json` with n/median/p90 for each, so CI and the
/// EXPERIMENTS.md tables consume the same numbers the console shows.
class JsonReport {
public:
    explicit JsonReport(std::string name) : name_(std::move(name)) {}

    void add(const std::string& config, const std::string& metric, double value) {
        samples_[{config, metric}].push_back(value);
    }

    /// Writes BENCH_<name>.json into `dir`; returns the path written.
    std::string write(const std::string& dir = ".") const {
        const std::string path = dir + "/BENCH_" + name_ + ".json";
        std::ofstream out(path, std::ios::trunc);
        out << "{\n  \"bench\": \"" << obs::json_escape(name_)
            << "\",\n  \"results\": [";
        bool first = true;
        for (const auto& [key, vals] : samples_) {
            out << (first ? "\n" : ",\n") << "    {\"config\":\""
                << obs::json_escape(key.first) << "\",\"metric\":\""
                << obs::json_escape(key.second) << "\",\"n\":" << vals.size()
                << ",\"median\":" << obs::json_number(util::percentile(vals, 50.0))
                << ",\"p90\":" << obs::json_number(util::percentile(vals, 90.0))
                << "}";
            first = false;
        }
        out << "\n  ]\n}\n";
        std::printf("wrote %s\n", path.c_str());
        return path;
    }

private:
    std::string name_;
    std::map<std::pair<std::string, std::string>, std::vector<double>> samples_;
};

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("\n================================================================\n");
    std::printf("%s\n(reproduces %s; single-node thread-per-process scaling — see "
                "DESIGN.md)\n", title, paper_ref);
    std::printf("================================================================\n");
}

}  // namespace sb::bench
