// Micro-benchmark of the MxN redistribution fast path (DESIGN.md):
// per-step bounding-box read cost with the reader-side copy-plan cache on
// vs off across fan-in shapes, plus the zero-copy view path on
// writer-aligned boxes.  Small blocks on purpose — the cache removes
// per-read intersection/plan bookkeeping, so the effect is largest when
// bookkeeping is comparable to the payload copy.
//
// Usage: micro_redistribution [--smoke]
// Writes BENCH_micro_redistribution.json (see bench_util.hpp JsonReport).
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/writer.hpp"
#include "util/ndarray.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

struct MxnShape {
    int writers = 1;   // blocks along dim 0
    int readers = 1;   // boxes along dim 1 (cross-cut: every box hits every block)
    std::uint64_t n = 128, m = 128;

    std::string label() const {
        return std::to_string(writers) + "w_x_" + std::to_string(readers) + "r_" +
               std::to_string(n) + "x" + std::to_string(m);
    }
};

// Streams `steps` steps of an n x m doubles array written as `writers`
// row-slabs; the reader pulls `readers` column-slab boxes per step.  Only
// the read calls are timed (begin_step's wait on the producer is not).
// Returns the per-step read seconds, one sample per step.
std::vector<double> run_cross_cut(const MxnShape& s, std::uint64_t steps,
                                  bool cached) {
    fp::Fabric fabric;
    const u::NdShape shape{s.n, s.m};
    std::jthread writer([&] {
        fp::WriterPort port(fabric, "mxn", 0, 1, fp::StreamOptions{});
        for (std::uint64_t t = 0; t < steps; ++t) {
            port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
            for (int w = 0; w < s.writers; ++w) {
                const u::Box b = u::partition_along(shape, 0, w, s.writers);
                std::vector<double> block(b.volume(), static_cast<double>(t));
                port.put<double>("a", b, block);
            }
            port.end_step();
        }
        port.close();
    });

    fp::ReaderPort reader(fabric, "mxn", 0, 1);
    reader.set_plan_cache_enabled(cached);
    std::vector<double> samples;
    std::vector<double> buf;
    while (reader.begin_step()) {
        u::WallTimer t;
        for (int r = 0; r < s.readers; ++r) {
            const u::Box box = u::partition_along(shape, 1, r, s.readers);
            buf.resize(box.volume());
            reader.read_bytes("a", box, std::as_writable_bytes(std::span(buf)));
        }
        samples.push_back(t.seconds());
        reader.end_step();
    }
    return samples;
}

// Reader boxes identical to the writer blocks: compares an assembled copy
// (read_bytes) against the zero-copy view (try_read_view_bytes).
std::vector<double> run_aligned(const MxnShape& s, std::uint64_t steps,
                                bool zero_copy) {
    fp::Fabric fabric;
    const u::NdShape shape{s.n, s.m};
    std::jthread writer([&] {
        fp::WriterPort port(fabric, "mxn", 0, 1, fp::StreamOptions{});
        for (std::uint64_t t = 0; t < steps; ++t) {
            port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
            for (int w = 0; w < s.writers; ++w) {
                const u::Box b = u::partition_along(shape, 0, w, s.writers);
                std::vector<double> block(b.volume(), static_cast<double>(t));
                port.put<double>("a", b, block);
            }
            port.end_step();
        }
        port.close();
    });

    fp::ReaderPort reader(fabric, "mxn", 0, 1);
    std::vector<double> samples;
    std::vector<double> buf;
    double sink = 0.0;
    while (reader.begin_step()) {
        u::WallTimer t;
        for (int w = 0; w < s.writers; ++w) {
            const u::Box box = u::partition_along(shape, 0, w, s.writers);
            if (zero_copy) {
                const auto view = reader.try_read_view_bytes("a", box);
                if (!view) throw std::runtime_error("aligned box not zero-copyable");
                sink += static_cast<double>((*view)[view->size() - 1]);
            } else {
                buf.resize(box.volume());
                reader.read_bytes("a", box, std::as_writable_bytes(std::span(buf)));
                sink += buf.back();
            }
        }
        samples.push_back(t.seconds());
        reader.end_step();
    }
    if (sink < 0.0) std::printf("%f\n", sink);  // keep the reads observable
    return samples;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    const std::uint64_t steps = smoke ? 8 : 400;
    const std::vector<MxnShape> shapes =
        smoke ? std::vector<MxnShape>{{2, 2, 32, 32}, {4, 4, 32, 32}}
              : std::vector<MxnShape>{
                    {2, 2, 128, 128}, {8, 8, 128, 128}, {16, 16, 128, 128}};

    sb::bench::print_header(
        "micro: MxN redistribution plan cache",
        "the fast-path optimisation of DESIGN.md (cached copy plans)");
    sb::bench::JsonReport report("micro_redistribution");

    std::printf("%-20s %14s %14s %9s\n", "shape (cross-cut)", "uncached us",
                "cached us", "speedup");
    for (const MxnShape& s : shapes) {
        const auto uncached = run_cross_cut(s, steps, false);
        const auto cached = run_cross_cut(s, steps, true);
        const double mu = sb::util::percentile(uncached, 50.0);
        const double mc = sb::util::percentile(cached, 50.0);
        for (double v : uncached)
            report.add(s.label(), "uncached_read_seconds_per_step", v);
        for (double v : cached)
            report.add(s.label(), "cached_read_seconds_per_step", v);
        std::printf("%-20s %14.2f %14.2f %8.2fx\n", s.label().c_str(), mu * 1e6,
                    mc * 1e6, mc > 0.0 ? mu / mc : 0.0);
    }

    std::printf("\n%-20s %14s %14s %9s\n", "shape (aligned)", "copy us",
                "view us", "speedup");
    const MxnShape aligned{8, 8, smoke ? 32ull : 256ull, smoke ? 32ull : 256ull};
    const auto copied = run_aligned(aligned, steps, false);
    const auto viewed = run_aligned(aligned, steps, true);
    const double mcopy = sb::util::percentile(copied, 50.0);
    const double mview = sb::util::percentile(viewed, 50.0);
    for (double v : copied) report.add(aligned.label(), "copy_read_seconds_per_step", v);
    for (double v : viewed) report.add(aligned.label(), "view_read_seconds_per_step", v);
    std::printf("%-20s %14.2f %14.2f %8.2fx\n", aligned.label().c_str(),
                mcopy * 1e6, mview * 1e6, mview > 0.0 ? mcopy / mview : 0.0);

    report.write();
    return 0;
}
