// Micro-benchmark of graph-level operator fusion (core/fusion.hpp): a
// four-component analysis chain — magnitude -> downsample -> threshold ->
// histogram — consuming a pre-produced stream, run unfused (every hop pays
// a publish/acquire round-trip, an FFS encode/decode, and a scheduling
// handoff per step) and fused (one unit, composed kernels, zero
// intermediate streams).  The source runs ahead into a deep queue so the
// analysis pipeline, not production, dominates.
//
// The spooled variant additionally routes every buffered step through
// packet files on disk; fusion's win grows because the three intermediate
// streams never exist, so nothing is spooled or reloaded between stages.
//
// Usage: micro_fusion [--smoke]
// Writes BENCH_micro_fusion.json (see bench_util.hpp JsonReport).
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "flexpath/writer.hpp"
#include "util/timer.hpp"

namespace core = sb::core;
namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

struct FusionCase {
    std::uint64_t steps = 0;
    std::uint64_t atoms = 0;  // rows of the [atoms, 3] source array
    int procs = 0;            // ranks of every analysis component
};

/// End-to-end seconds for the 4-component chain under one fusion mode.
double run_chain(const FusionCase& fc, core::FusionMode mode,
                 const std::string& spool_dir) {
    fp::Fabric fabric;
    fp::StreamOptions opts(8, spool_dir);
    const u::NdShape shape{fc.atoms, 3};

    // Deep-queued source: publishes the whole run up front where capacity
    // allows, so consumers never wait on production.
    std::jthread source([&] {
        fp::WriterPort port(fabric, "src.fp", 0, 1, opts);
        std::vector<double> block(shape.volume());
        for (std::uint64_t t = 0; t < fc.steps; ++t) {
            for (std::size_t i = 0; i < block.size(); ++i) {
                block[i] = 2.0 * std::sin(0.001 * static_cast<double>(i + t));
            }
            port.declare(fp::VarDecl{"v", fp::DataKind::Float64, shape, {}});
            port.put<double>("v", u::Box::whole(shape), block);
            port.end_step();
        }
        port.close();
    });

    const std::string hist = "/tmp/sb_bench_micro_fusion_hist.txt";
    core::Workflow wf(fabric, opts);
    wf.set_fusion(mode);
    wf.add("magnitude", fc.procs, {"src.fp", "v", "m.fp", "mag"});
    wf.add("downsample", fc.procs, {"m.fp", "mag", "0", "2", "d.fp", "dmag"});
    wf.add("threshold", fc.procs, {"d.fp", "dmag", "above", "1.0", "t.fp", "tmag"});
    wf.add("histogram", fc.procs, {"t.fp", "tmag", "32", hist});

    u::WallTimer timer;
    wf.run();
    return timer.seconds();
}

double best_of(int reps, const FusionCase& fc, core::FusionMode mode,
               const std::string& spool_dir) {
    double best = run_chain(fc, mode, spool_dir);
    for (int i = 1; i < reps; ++i) {
        best = std::min(best, run_chain(fc, mode, spool_dir));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    const FusionCase fc = smoke ? FusionCase{4, 4096, 2} : FusionCase{16, 65536, 2};
    const int reps = smoke ? 1 : 3;

    sb::bench::print_header(
        "micro: operator fusion of a 4-component analysis chain",
        "component standardization overhead, paper §V");
    sb::bench::JsonReport report("micro_fusion");

    namespace fs = std::filesystem;
    const fs::path spool = fs::temp_directory_path() / "sb_bench_fusion_spool";
    fs::remove_all(spool);
    fs::create_directories(spool);

    const double melems = static_cast<double>(fc.steps) *
                          static_cast<double>(fc.atoms) / 1e6;
    std::printf("magnitude -> downsample -> threshold -> histogram, %d ranks "
                "each, %llu steps of [%llu x 3] doubles\n\n",
                fc.procs, static_cast<unsigned long long>(fc.steps),
                static_cast<unsigned long long>(fc.atoms));
    for (const bool spooled : {false, true}) {
        const std::string dir = spooled ? spool.string() : "";
        const double unfused = best_of(reps, fc, core::FusionMode::Off, dir);
        const double fused = best_of(reps, fc, core::FusionMode::On, dir);
        const std::string base = spooled ? "spool" : "inmem";
        report.add(base + "_unfused", "elapsed_seconds", unfused);
        report.add(base + "_unfused", "melems_per_second", melems / unfused);
        report.add(base + "_fused", "elapsed_seconds", fused);
        report.add(base + "_fused", "melems_per_second", melems / fused);
        report.add(base + "_fused", "speedup_vs_unfused", unfused / fused);
        std::printf("%-10s unfused %8.2f ms (%7.2f Melem/s)   fused %8.2f ms "
                    "(%7.2f Melem/s)   speedup %.2fx\n",
                    base.c_str(), unfused * 1e3, melems / unfused, fused * 1e3,
                    melems / fused, unfused / fused);
    }

    fs::remove_all(spool);
    report.write();
    return 0;
}
