// Micro-benchmarks of the transport layer (google-benchmark): the MxN
// redistribution cost across writer/reader cardinalities, step-metadata
// encode/decode through FFS, and the raw hyperslab copy.
#include <benchmark/benchmark.h>

#include <thread>

#include "flexpath/reader.hpp"
#include "flexpath/writer.hpp"
#include "util/ndarray.hpp"

namespace fp = sb::flexpath;
namespace u = sb::util;

namespace {

// One step of an (n x m) doubles array pushed through a stream with W
// writer blocks and read back in R reader boxes, all on the bench thread
// (the redistribution copy cost is what's measured, not thread scheduling).
void bm_mxn_step(benchmark::State& state) {
    const int writers = static_cast<int>(state.range(0));
    const int readers = static_cast<int>(state.range(1));
    const std::uint64_t n = 512, m = 256;
    const u::NdShape shape{n, m};
    std::vector<std::vector<double>> blocks;
    for (int w = 0; w < writers; ++w) {
        blocks.emplace_back(
            u::partition_along(shape, 0, w, writers).volume(), 1.0);
    }

    for (auto _ : state) {
        fp::Fabric fabric;
        fp::WriterPort port(fabric, "s", 0, 1, fp::StreamOptions{1});
        port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
        for (int w = 0; w < writers; ++w) {
            port.put<double>("a", u::partition_along(shape, 0, w, writers),
                             blocks[static_cast<std::size_t>(w)]);
        }
        port.end_step();

        fp::ReaderPort reader(fabric, "s", 0, 1);
        reader.begin_step();
        for (int r = 0; r < readers; ++r) {
            auto data =
                reader.read<double>("a", u::partition_along(shape, 1, r, readers));
            benchmark::DoNotOptimize(data.data());
        }
        reader.end_step();
        port.close();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(shape.volume() * 8));
}

void bm_step_meta_encode(benchmark::State& state) {
    const int nvars = static_cast<int>(state.range(0));
    fp::StepMeta meta;
    meta.step = 7;
    for (int v = 0; v < nvars; ++v) {
        const std::string name = "var" + std::to_string(v);
        meta.vars[name] =
            fp::VarDecl{name, fp::DataKind::Float64, u::NdShape{128, 64, 8},
                        {"x", "y", "z"}};
        meta.string_attrs[name + ".header.2"] = {"a", "b", "c", "d", "e", "f", "g", "h"};
    }
    for (auto _ : state) {
        auto wire = fp::encode_step_meta(meta);
        benchmark::DoNotOptimize(wire.data());
    }
}

void bm_step_meta_decode(benchmark::State& state) {
    fp::StepMeta meta;
    meta.step = 7;
    for (int v = 0; v < 8; ++v) {
        const std::string name = "var" + std::to_string(v);
        meta.vars[name] = fp::VarDecl{name, fp::DataKind::Float64,
                                      u::NdShape{128, 64, 8}, {"x", "y", "z"}};
    }
    const auto wire = fp::encode_step_meta(meta);
    for (auto _ : state) {
        auto back = fp::decode_step_meta(wire);
        benchmark::DoNotOptimize(&back);
    }
}

void bm_copy_box(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const u::NdShape shape{n, n};
    const u::Box whole = u::Box::whole(shape);
    const u::Box half({0, 0}, {n, n / 2});  // strided rows
    std::vector<std::byte> src(shape.volume() * 8, std::byte{1});
    std::vector<std::byte> dst(half.volume() * 8);
    for (auto _ : state) {
        u::copy_box(src, whole, dst, half, half, 8);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(half.volume() * 8));
}

// A full producer/consumer stream with real threads: measures the
// end-to-end per-step cost including synchronization.
void bm_stream_pipeline(benchmark::State& state) {
    const std::uint64_t elems = static_cast<std::uint64_t>(state.range(0));
    const u::NdShape shape{elems};
    const std::uint64_t steps = 16;
    for (auto _ : state) {
        fp::Fabric fabric;
        std::jthread writer([&] {
            fp::WriterPort port(fabric, "p", 0, 1, fp::StreamOptions{2});
            std::vector<double> data(elems, 1.0);
            for (std::uint64_t t = 0; t < steps; ++t) {
                port.declare(fp::VarDecl{"a", fp::DataKind::Float64, shape, {}});
                port.put<double>("a", u::Box::whole(shape), data);
                port.end_step();
            }
            port.close();
        });
        fp::ReaderPort reader(fabric, "p", 0, 1);
        while (reader.begin_step()) {
            auto data = reader.read<double>("a", u::Box::whole(shape));
            benchmark::DoNotOptimize(data.data());
            reader.end_step();
        }
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(steps * elems * 8));
}

}  // namespace

BENCHMARK(bm_mxn_step)
    ->ArgsProduct({{1, 2, 8}, {1, 2, 8}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_step_meta_encode)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(bm_step_meta_decode);
BENCHMARK(bm_copy_box)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_stream_pipeline)->Arg(1024)->Arg(262144)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
