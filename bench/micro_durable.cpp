// Micro-benchmark of the durable step log (sb::durable): what crash
// consistency costs on the publish path, and what recovery costs at
// relaunch.
//
// Publish legs — one writer rank streaming fixed-size steps to a releasing
// reader, identical except for where the step's bytes go:
//
//   memory          bounded in-memory queue only (the volatile baseline)
//   spool           volatile spool file per step (pre-durable disk path)
//   durable_never   framed+checksummed log, fsync left to the page cache
//   durable_commit  framed+checksummed log, fsync after every commit marker
//
// Recovery legs time Log construction (scan + index rebuild + torn-tail
// repair) against logs of increasing step count, since a cold restart pays
// this once per stream before the workflow resumes.
//
// Usage: micro_durable [--smoke]
// Writes BENCH_micro_durable.json (see bench_util.hpp JsonReport).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "durable/log.hpp"
#include "flexpath/reader.hpp"
#include "flexpath/writer.hpp"
#include "util/timer.hpp"

namespace d = sb::durable;
namespace fp = sb::flexpath;
namespace u = sb::util;
namespace fs = std::filesystem;

namespace {

struct DurableCase {
    std::uint64_t warmup = 0;
    std::uint64_t steps = 0;  // timed publishes per leg
    std::uint64_t elems = 0;  // doubles per step
};

fs::path fresh_dir(const std::string& leg) {
    const fs::path dir = fs::temp_directory_path() / ("sb_bench_durable_" + leg);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// Seconds for `c.steps` steady-state publishes with `opts` deciding the
/// disk path (none / volatile spool / durable log + fsync policy).
double run_publish(const DurableCase& c, const fp::StreamOptions& opts) {
    fp::Fabric fabric;
    const u::NdShape shape{c.elems};
    const u::Box whole = u::Box::whole(shape);
    const std::uint64_t total = c.warmup + c.steps;

    std::jthread reader([&fabric, total] {
        fp::ReaderPort port(fabric, "dur.fp", 0, 1);
        while (port.begin_step()) port.end_step();
    });

    fp::WriterPort port(fabric, "dur.fp", 0, 1, opts);
    std::vector<double> staging(c.elems, 0.5);
    double elapsed = 0.0;
    for (std::uint64_t t = 0; t < total; ++t) {
        u::WallTimer timer;
        port.declare(fp::VarDecl{"v", fp::DataKind::Float64, shape, {}});
        port.put<double>("v", whole, staging);
        port.end_step();
        if (t >= c.warmup) elapsed += timer.seconds();
    }
    port.close();
    return elapsed;
}

/// Builds a clean `steps`-step log, then times its recovery scan (the Log
/// constructor) on reopen.
double run_recovery(const fs::path& dir, std::uint64_t steps,
                    std::uint64_t elems) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    d::Options o;
    o.dir = dir.string();
    {
        d::Log log("rec", o);
        sb::ffs::EncodedSegments payload;
        payload.header.resize(elems * sizeof(double), std::byte{0x5A});
        payload.segments.emplace_back(payload.header);
        payload.total = payload.header.size();
        const std::string meta = "bench-meta";
        for (std::uint64_t t = 0; t < steps; ++t) {
            log.append_step(
                t, 1,
                std::as_bytes(std::span<const char>(meta.data(), meta.size())),
                payload);
        }
        log.append_eos();
    }
    u::WallTimer timer;
    d::Options ro = o;
    ro.replay_history = true;
    d::Log log("rec", ro);
    const double seconds = timer.seconds();
    if (log.recovery().steps_recovered != steps) {
        std::fprintf(stderr, "recovery mismatch: %llu of %llu steps\n",
                     static_cast<unsigned long long>(
                         log.recovery().steps_recovered),
                     static_cast<unsigned long long>(steps));
    }
    return seconds;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
    const DurableCase c = smoke ? DurableCase{2, 24, 16 * 1024}
                                : DurableCase{4, 64, 256 * 1024};
    const int reps = smoke ? 1 : 3;

    sb::bench::print_header(
        "micro: durable step log append and recovery overhead",
        "crash consistency cost vs the volatile spool and in-memory paths");
    sb::bench::JsonReport report("micro_durable");

    const double mb_per_step =
        static_cast<double>(c.elems) * sizeof(double) / 1e6;
    std::printf("1 writer rank -> 1 reader rank, %llu timed steps of %.2f MB\n\n",
                static_cast<unsigned long long>(c.steps), mb_per_step);

    struct Leg {
        const char* name;
        fp::StreamOptions opts;
    };
    std::vector<Leg> legs;
    legs.push_back({"memory", fp::StreamOptions(4)});
    legs.push_back(
        {"spool", fp::StreamOptions(4, fresh_dir("spool").string())});
    {
        fp::StreamOptions o(4);
        o.durable.dir = fresh_dir("never").string();
        o.durable.mode = d::Mode::On;
        o.durable.fsync = d::FsyncPolicy::Never;
        legs.push_back({"durable_never", o});
    }
    {
        fp::StreamOptions o(4);
        o.durable.dir = fresh_dir("commit").string();
        o.durable.mode = d::Mode::On;
        o.durable.fsync = d::FsyncPolicy::Commit;
        legs.push_back({"durable_commit", o});
    }

    for (const Leg& leg : legs) {
        for (int r = 0; r < reps; ++r) {
            // Each rep republishes the same step range; recreate the leg's
            // disk state so reps measure a fresh log, not a replayed one.
            if (!leg.opts.durable.dir.empty()) {
                fs::remove_all(leg.opts.durable.dir);
                fs::create_directories(leg.opts.durable.dir);
            }
            const double s = run_publish(c, leg.opts);
            const double us_per_step = s / static_cast<double>(c.steps) * 1e6;
            report.add(leg.name, "publish_us_per_step", us_per_step);
            report.add(leg.name, "publish_mb_per_s",
                       mb_per_step * static_cast<double>(c.steps) / s);
            if (r == reps - 1) {
                std::printf("  %-15s %9.1f us/step  %8.1f MB/s\n", leg.name,
                            us_per_step,
                            mb_per_step * static_cast<double>(c.steps) / s);
            }
        }
    }

    std::printf("\nrecovery scan (reopen of a clean log):\n");
    const fs::path rec_dir = fresh_dir("recovery");
    const std::vector<std::uint64_t> sizes =
        smoke ? std::vector<std::uint64_t>{16, 64}
              : std::vector<std::uint64_t>{64, 512, 2048};
    for (const std::uint64_t steps : sizes) {
        for (int r = 0; r < reps; ++r) {
            const double s = run_recovery(rec_dir, steps, smoke ? 1024 : 8192);
            report.add("recover_" + std::to_string(steps) + "_steps",
                       "recovery_seconds", s);
            report.add("recover_" + std::to_string(steps) + "_steps",
                       "recovery_steps_per_s", static_cast<double>(steps) / s);
            if (r == reps - 1) {
                std::printf("  %6llu steps  %8.2f ms  (%.0f steps/s)\n",
                            static_cast<unsigned long long>(steps), s * 1e3,
                            static_cast<double>(steps) / s);
            }
        }
    }

    for (const Leg& leg : legs) {
        if (!leg.opts.durable.dir.empty()) fs::remove_all(leg.opts.durable.dir);
        if (!leg.opts.spool_dir.empty()) fs::remove_all(leg.opts.spool_dir);
    }
    fs::remove_all(rec_dir);
    report.write();
    return 0;
}
