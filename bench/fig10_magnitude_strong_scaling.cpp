// Reproduces Figure 10 of the paper: "Magnitude strong scaling in the
// GROMACS workflow" — the timestep completion time of the Magnitude
// component as a function of the data size per Magnitude process, with the
// GROMACS and Histogram process counts held fixed.
//
// Substitution note: the paper traverses the x-axis (size per proc, MB) by
// varying Magnitude's process count on a cluster.  This container has a
// single core, so adding rank threads cannot shorten wall time; we traverse
// the same x-axis by varying the global atom count at a fixed process
// count, which probes the identical plotted relation — timestep completion
// time vs per-process size.  Shape to reproduce: a linear domain (time
// proportional to per-process size).  A second sweep varies the process
// count at fixed size and reports the (oversubscribed) times for
// completeness.
#include "bench_util.hpp"

namespace {

struct MagnitudeRun {
    double timestep_seconds = 0.0;
    /// Transport-stall share of the run's total process-time (see
    /// GtcpRunResult::backpressure_stall_percent).
    double stall_percent = 0.0;
};

/// Runs the GROMACS workflow and returns Magnitude's mean timestep time.
MagnitudeRun magnitude_timestep_seconds(std::uint64_t atoms, int mag_procs) {
    using namespace sb;
    sim::register_simulations();
    flexpath::Fabric fabric;
    core::Workflow wf(fabric);
    wf.add("gromacs", 2,
           {"atoms=" + std::to_string(atoms), "steps=8", "substeps=2"});
    auto mag = wf.add("magnitude", mag_procs, {"gmx.fp", "coords", "m.fp", "r"});
    wf.add("histogram", 1, {"m.fp", "r", "16", "/tmp/sb_bench_fig10.txt"});
    auto& reg = obs::Registry::global();
    const double bp0 = reg.total("flexpath.backpressure_wait_seconds");
    wf.run();
    MagnitudeRun out;
    const double proc_seconds = wf.elapsed_seconds() * wf.total_procs();
    if (proc_seconds > 0.0) {
        out.stall_percent =
            100.0 * (reg.total("flexpath.backpressure_wait_seconds") - bp0) /
            proc_seconds;
    }
    // Fastest steady-state step: the min over steps filters the scheduling
    // noise a shared single core injects into individual steps.
    const auto rows = mag->per_step();
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i < rows.size(); ++i) {
        best = std::min(best, rows[i].mean_seconds);
    }
    out.timestep_seconds = rows.size() > 1 ? best : mag->mean_step_seconds();
    return out;
}

}  // namespace

int main() {
    using namespace sb::bench;
    print_header("Figure 10 — Magnitude strong scaling in the GROMACS workflow",
                 "Fig. 10 of the paper (x-axis traversed by data size; see header)");

    // Sweep 1: per-process size from ~24 MB down to well below the paper's
    // ~6 MB lower end, at 1 Magnitude process.  The paper (§V.D) describes
    // "a linear domain of scalability, followed by a turning point and
    // eventual flattening": the large sizes trace the linear domain, the
    // small ones hit the per-step fixed-cost floor (the flattening).
    std::printf("%-22s %-22s %-22s %-10s\n", "Size per proc (MB)", "Timestep (s)",
                "time/size (s/MB)", "BP-stall%");
    JsonReport report("fig10_magnitude_strong_scaling");
    std::vector<double> sizes_mb, times;
    for (const std::uint64_t atoms : {1048576u, 786432u, 524288u, 393216u,
                                      262144u, 131072u, 65536u, 16384u}) {
        const double mb = static_cast<double>(atoms) * 3 * 8 / (1024.0 * 1024.0);
        const MagnitudeRun run = magnitude_timestep_seconds(atoms, 1);
        sizes_mb.push_back(mb);
        times.push_back(run.timestep_seconds);
        std::printf("%-22.2f %-22.4f %-22.5f %-10.2f\n", mb, run.timestep_seconds,
                    run.timestep_seconds / mb, run.stall_percent);
        report.add(std::to_string(atoms) + "_atoms_1proc", "timestep_seconds",
                   run.timestep_seconds);
    }

    // Linear-domain check over the large (out-of-cache) regime.
    const double slope_big = times[0] / sizes_mb[0];
    const double slope_mid = times[2] / sizes_mb[2];
    std::printf("\nlinear-domain check (24 MB vs 12 MB): time/size = %.5f vs "
                "%.5f s/MB (ratio %.2f; ~1 = linear).\nA second, lower "
                "constant slope appears once the working set fits in cache "
                "(<= ~9 MB), and the smallest\nsizes approach the per-step "
                "fixed cost — the 'turning point and eventual flattening' "
                "of paper §V.D.\n",
                slope_big, slope_mid, slope_mid > 0 ? slope_big / slope_mid : 0.0);

    // Sweep 2 (informational): the paper's actual knob — Magnitude process
    // count at fixed size.  On one core this cannot speed up; reported to
    // document the substitution.
    std::printf("\nprocess-count sweep at 524288 atoms (12 MB/step; single-core "
                "oversubscription — no speedup expected here):\n");
    std::printf("%-12s %-18s %-22s %-10s\n", "Mag procs", "MB per proc",
                "Timestep (s)", "BP-stall%");
    for (const int procs : {1, 2, 4}) {
        const MagnitudeRun run = magnitude_timestep_seconds(524288, procs);
        std::printf("%-12d %-18.1f %-22.4f %-10.2f\n", procs, 12.0 / procs,
                    run.timestep_seconds, run.stall_percent);
        report.add("524288_atoms_" + std::to_string(procs) + "proc",
                   "timestep_seconds", run.timestep_seconds);
    }
    report.write();
    return 0;
}
