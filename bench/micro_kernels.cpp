// Micro-benchmarks of the analysis kernels (google-benchmark): Dim-Reduce's
// layout transformation in its contiguous and strided regimes, the
// Histogram binning kernel, the Magnitude arithmetic, FFS record
// encode/decode of bulk arrays, and Scalar-vs-Simd A/Bs of the
// schedule-separated kernels in core/kernels.hpp (the vectorization half of
// the fusion + SIMD work; see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/dim_reduce.hpp"
#include "core/histogram.hpp"
#include "core/kernels.hpp"
#include "ffs/encode.hpp"

namespace core = sb::core;
namespace kn = sb::core::kernels;
namespace u = sb::util;

namespace {

// GTCP first reduce: remove the innermost dim — contiguous, a pure memcpy.
void bm_dim_reduce_contiguous(benchmark::State& state) {
    const std::uint64_t g = static_cast<std::uint64_t>(state.range(0));
    const u::NdShape shape{8, g, 7};
    std::vector<double> in(shape.volume(), 1.0), out(in.size());
    for (auto _ : state) {
        core::dim_reduce_copy(std::as_bytes(std::span(in)), shape, 2, 1,
                              std::as_writable_bytes(std::span(out)), 8);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(in.size() * 8));
}

// GTCP second reduce: remove dim 0 into dim 1 — an interleaving transpose.
void bm_dim_reduce_strided(benchmark::State& state) {
    const std::uint64_t g = static_cast<std::uint64_t>(state.range(0));
    const u::NdShape shape{8, g * 7};
    std::vector<double> in(shape.volume(), 1.0), out(in.size());
    for (auto _ : state) {
        core::dim_reduce_copy(std::as_bytes(std::span(in)), shape, 0, 1,
                              std::as_writable_bytes(std::span(out)), 8);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(in.size() * 8));
}

void bm_histogram_counts(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t bins = static_cast<std::size_t>(state.range(1));
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = std::sin(0.001 * double(i));
    for (auto _ : state) {
        auto counts = core::histogram_counts(v, -1.0, 1.0, bins);
        benchmark::DoNotOptimize(counts.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void bm_magnitude_kernel(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> vecs(n * 3, 1.5), mags(n);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i) {
            const double* v = &vecs[i * 3];
            mags[i] = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
        }
        benchmark::DoNotOptimize(mags.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void bm_ffs_encode_array(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    std::vector<double> data(n, 2.5);
    for (auto _ : state) {
        sb::ffs::Record rec(sb::ffs::TypeDescriptor{"bulk", {}});
        rec.add_array<double>("data", data, {n});
        auto wire = sb::ffs::encode(rec);
        benchmark::DoNotOptimize(wire.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * 8));
}

void bm_ffs_decode_array(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    std::vector<double> data(n, 2.5);
    sb::ffs::Record rec(sb::ffs::TypeDescriptor{"bulk", {}});
    rec.add_array<double>("data", data, {n});
    const auto wire = sb::ffs::encode(rec);
    for (auto _ : state) {
        auto back = sb::ffs::decode(wire);
        benchmark::DoNotOptimize(&back);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * 8));
}

// ---- Scalar vs Simd schedules of the core/kernels.hpp entry points ---------

void bm_sched_magnitude(benchmark::State& state, kn::Schedule s) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> vecs(n * 3), mags(n);
    for (std::size_t i = 0; i < vecs.size(); ++i) {
        vecs[i] = std::sin(0.001 * static_cast<double>(i));
    }
    for (auto _ : state) {
        kn::magnitude(vecs.data(), n, 3, mags.data(), s);
        benchmark::DoNotOptimize(mags.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void bm_sched_histogram(benchmark::State& state, kn::Schedule s) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t bins = static_cast<std::size_t>(state.range(1));
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = std::sin(0.001 * double(i));
    std::vector<std::uint64_t> counts(bins);
    for (auto _ : state) {
        std::fill(counts.begin(), counts.end(), 0);
        kn::histogram_accumulate(v, -1.0, 1.0, counts, s);
        benchmark::DoNotOptimize(counts.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void bm_sched_threshold(benchmark::State& state, kn::Schedule s) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> v(n), out(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = std::sin(0.001 * double(i));
    for (auto _ : state) {
        const std::size_t kept =
            kn::threshold_compact(v, kn::ThresholdOp::Above, 0.25, 0.0,
                                  out.data(), s);
        benchmark::DoNotOptimize(out.data());
        benchmark::DoNotOptimize(kept);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void bm_sched_moments(benchmark::State& state, kn::Schedule s) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = std::sin(0.001 * double(i));
    for (auto _ : state) {
        auto acc = kn::moments_accumulate(v, s);
        benchmark::DoNotOptimize(&acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK(bm_dim_reduce_contiguous)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_dim_reduce_strided)->Arg(1024)->Arg(65536)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_histogram_counts)->Args({65536, 16})->Args({65536, 1024})->Args({1048576, 16});
BENCHMARK(bm_magnitude_kernel)->Arg(65536)->Arg(1048576);
BENCHMARK(bm_ffs_encode_array)->Arg(1024)->Arg(1048576)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_ffs_decode_array)->Arg(1024)->Arg(1048576)->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(bm_sched_magnitude, scalar, kn::Schedule::Scalar)->Arg(1048576);
BENCHMARK_CAPTURE(bm_sched_magnitude, simd, kn::Schedule::Simd)->Arg(1048576);
BENCHMARK_CAPTURE(bm_sched_histogram, scalar, kn::Schedule::Scalar)->Args({1048576, 16});
BENCHMARK_CAPTURE(bm_sched_histogram, simd, kn::Schedule::Simd)->Args({1048576, 16});
BENCHMARK_CAPTURE(bm_sched_threshold, scalar, kn::Schedule::Scalar)->Arg(1048576);
BENCHMARK_CAPTURE(bm_sched_threshold, simd, kn::Schedule::Simd)->Arg(1048576);
BENCHMARK_CAPTURE(bm_sched_moments, scalar, kn::Schedule::Scalar)->Arg(1048576);
BENCHMARK_CAPTURE(bm_sched_moments, simd, kn::Schedule::Simd)->Arg(1048576);

BENCHMARK_MAIN();
