// Reproduces Table II of the paper: "LAMMPS: SmartBlock vs. All-In-One
// comparison" — start-to-end completion times of (a) LAMMPS + the custom
// fused AIO analysis, (b) LAMMPS + the full SmartBlock pipeline
// (Select -> Magnitude -> Histogram), and (c) the simulation alone with its
// output routines disabled, at five weak-scaled sizes.
//
// Shape to reproduce: the componentized SmartBlock workflow costs only a
// few percent over the fused custom code (the paper's maximum is +1.9%),
// because FlexPath's buffering overlaps the extra exchange points with the
// simulation's computation.
#include "bench_util.hpp"

namespace {

struct Row {
    double sim_mb;          // total simulation output over the run
    int lammps_procs;
    int analysis_procs;     // Select in SmartBlock; AIO gets the same
    std::uint64_t rows, cols, steps, substeps;
};

double run_lammps(const Row& r, const std::string& mode) {
    using namespace sb;
    sim::register_simulations();
    flexpath::Fabric fabric;
    core::Workflow wf(fabric);
    const std::vector<std::string> sim_args = {
        "rows=" + std::to_string(r.rows), "cols=" + std::to_string(r.cols),
        "steps=" + std::to_string(r.steps), "substeps=" + std::to_string(r.substeps),
        "output=" + std::string(mode == "simonly" ? "false" : "true")};
    wf.add("lammps", r.lammps_procs, sim_args);
    if (mode == "smartblock") {
        wf.add("select", r.analysis_procs,
               {"dump.custom.fp", "atoms", "1", "s.fp", "v", "vx", "vy", "vz"});
        wf.add("magnitude", std::max(1, r.analysis_procs / 2),
               {"s.fp", "v", "m.fp", "mag"});
        wf.add("histogram", 1, {"m.fp", "mag", "16", "/tmp/sb_bench_t2_sb.txt"});
    } else if (mode == "aio") {
        wf.add("aio", r.analysis_procs,
               {"dump.custom.fp", "atoms", "1", "16", "/tmp/sb_bench_t2_aio.txt",
                "vx", "vy", "vz"});
    }
    wf.run();
    return wf.elapsed_seconds();
}

}  // namespace

int main() {
    using namespace sb::bench;
    print_header("Table II — LAMMPS: SmartBlock vs. All-In-One",
                 "Table II of the paper (sizes scaled ~1/100)");

    // Paper: per-run output 20..5120 MB with ~constant per-process data.
    // Scaled: {0.2, 0.8, 3.2, 12.8, 51.2} MB over the run, procs doubling.
    const std::vector<Row> rows = {
        {0.2, 1, 1, 32, 41, 4, 60},     // 32x41x5x8x4   ~ 0.2 MB
        {0.8, 2, 1, 64, 82, 4, 60},     //               ~ 0.8 MB
        {3.2, 4, 2, 128, 164, 4, 60},   //               ~ 3.2 MB
        {12.8, 8, 4, 256, 328, 4, 60},  //               ~12.8 MB
        {51.2, 16, 8, 512, 655, 4, 60},  //              ~51.2 MB
    };

    std::printf("%-12s %-14s %-20s %-16s %-10s\n", "SIM output", "AIO time (s)",
                "SmartBlock time (s)", "LMP only (s)", "overhead");
    // Best of three repetitions per cell: at the paper's scale one run is
    // minutes and self-averaging; at this scale scheduler noise would
    // otherwise dominate the sub-second cells.
    const auto best_of = [](auto&& fn) {
        double best = fn();
        for (int i = 0; i < 2; ++i) best = std::min(best, fn());
        return best;
    };
    double worst = 0.0;
    for (const Row& r : rows) {
        const double aio = best_of([&] { return run_lammps(r, "aio"); });
        const double sb = best_of([&] { return run_lammps(r, "smartblock"); });
        const double lmp = best_of([&] { return run_lammps(r, "simonly"); });
        const double overhead = 100.0 * (sb - aio) / aio;
        // Summarize over cells long enough to measure: the paper's cells
        // run for minutes; our sub-10ms cells are pure scheduler noise.
        if (aio >= 0.1) worst = std::max(worst, overhead);
        char label[32];
        std::snprintf(label, sizeof label, "%.1f MB", r.sim_mb);
        std::printf("%-12s %-14.2f %-20.2f %-16.2f %+.1f%%\n", label, aio, sb, lmp,
                    overhead);
    }
    std::printf("\nworst-case SmartBlock overhead vs all-in-one (cells >= 0.1 s): "
                "%+.1f%% (paper: at most +1.9%%)\n", worst);
    return 0;
}
