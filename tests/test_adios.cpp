// Tests for the ADIOS layer: XML parsing, group definitions, and the
// writer/reader pair with named dimensions, labels, and attributes.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "adios/reader.hpp"
#include "adios/writer.hpp"
#include "adios/xml.hpp"
#include "mpi/runtime.hpp"

namespace a = sb::adios;
namespace fp = sb::flexpath;
namespace u = sb::util;

// ---- XML parser ------------------------------------------------------------

TEST(Xml, BasicDocument) {
    const auto root = a::parse_xml(
        "<?xml version=\"1.0\"?>\n"
        "<!-- header comment -->\n"
        "<config a=\"1\" b='two'>\n"
        "  <child/>\n"
        "  <child name=\"x\">text</child>\n"
        "  <!-- inner comment -->\n"
        "</config>\n");
    EXPECT_EQ(root.name, "config");
    EXPECT_EQ(root.attr("a"), "1");
    EXPECT_EQ(root.attr("b"), "two");
    EXPECT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children_named("child").size(), 2u);
    EXPECT_EQ(root.children[1].attr("name"), "x");
    EXPECT_NE(root.children[1].text.find("text"), std::string::npos);
    EXPECT_EQ(root.child("missing"), nullptr);
    EXPECT_EQ(root.attr_or("missing", "dflt"), "dflt");
    EXPECT_THROW((void)root.attr("missing"), std::runtime_error);
}

TEST(Xml, MalformedInputsThrowWithLineNumbers) {
    EXPECT_THROW((void)a::parse_xml(""), std::runtime_error);
    EXPECT_THROW((void)a::parse_xml("<a>"), std::runtime_error);
    EXPECT_THROW((void)a::parse_xml("<a></b>"), std::runtime_error);
    EXPECT_THROW((void)a::parse_xml("<a x=1/>"), std::runtime_error);
    EXPECT_THROW((void)a::parse_xml("<a x=\"1\" x=\"2\"/>"), std::runtime_error);
    EXPECT_THROW((void)a::parse_xml("<a/><b/>"), std::runtime_error);
    try {
        (void)a::parse_xml("<a>\n\n<b</a>");
        FAIL();
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Xml, SelfClosingAndNesting) {
    const auto root = a::parse_xml("<a><b><c deep=\"yes\"/></b></a>");
    ASSERT_NE(root.child("b"), nullptr);
    ASSERT_NE(root.child("b")->child("c"), nullptr);
    EXPECT_EQ(root.child("b")->child("c")->attr("deep"), "yes");
}

// ---- GroupDef --------------------------------------------------------------

namespace {

const char* kConfig = R"(<adios-config>
  <adios-group name="particles">
    <var name="natoms" type="unsigned long"/>
    <var name="nquant" type="unsigned long"/>
    <var name="atoms" type="double" dimensions="natoms,nquant"/>
    <attribute name="atoms.header.1" value="ID,Type,vx,vy,vz"/>
  </adios-group>
  <adios-group name="other">
    <var name="x" type="float"/>
  </adios-group>
  <transport group="particles" method="FLEXPATH"/>
</adios-config>)";

}  // namespace

TEST(GroupDef, FromXml) {
    const a::GroupDef def = a::GroupDef::from_xml(kConfig);
    EXPECT_EQ(def.name, "particles");
    EXPECT_EQ(def.transport, "FLEXPATH");
    ASSERT_EQ(def.vars.size(), 3u);
    const a::VarSpec* atoms = def.find("atoms");
    ASSERT_NE(atoms, nullptr);
    EXPECT_EQ(atoms->kind, a::DataKind::Float64);
    EXPECT_EQ(atoms->dimensions, (std::vector<std::string>{"natoms", "nquant"}));
    EXPECT_TRUE(def.find("natoms")->is_scalar());
    EXPECT_EQ(def.attributes.at("atoms.header.1"),
              (std::vector<std::string>{"ID", "Type", "vx", "vy", "vz"}));
    EXPECT_EQ(def.find("nope"), nullptr);
}

TEST(GroupDef, SelectGroupByName) {
    const a::GroupDef def = a::GroupDef::from_xml(kConfig, "other");
    EXPECT_EQ(def.name, "other");
    EXPECT_EQ(def.find("x")->kind, a::DataKind::Float32);
}

TEST(GroupDef, MissingGroupThrows) {
    EXPECT_THROW((void)a::GroupDef::from_xml(kConfig, "absent"), std::runtime_error);
    EXPECT_THROW((void)a::GroupDef::from_xml("<wrong/>"), std::runtime_error);
}

TEST(GroupDef, FromXmlFile) {
    const std::string path = ::testing::TempDir() + "/sb_group.xml";
    std::ofstream(path) << kConfig;
    const a::GroupDef def = a::GroupDef::from_xml_file(path);
    EXPECT_EQ(def.name, "particles");
    EXPECT_THROW((void)a::GroupDef::from_xml_file("/no/such/file.xml"),
                 std::runtime_error);
}

TEST(GroupDef, TypeNames) {
    EXPECT_EQ(a::parse_type_name("double"), a::DataKind::Float64);
    EXPECT_EQ(a::parse_type_name("float"), a::DataKind::Float32);
    EXPECT_EQ(a::parse_type_name("integer"), a::DataKind::Int32);
    EXPECT_EQ(a::parse_type_name("long"), a::DataKind::Int64);
    EXPECT_EQ(a::parse_type_name("unsigned long"), a::DataKind::UInt64);
    EXPECT_EQ(a::parse_type_name("byte"), a::DataKind::Byte);
    EXPECT_THROW((void)a::parse_type_name("quadruple"), std::runtime_error);
}

TEST(GroupDef, SplitCsvTrims) {
    EXPECT_EQ(a::split_csv(" a, b ,c "), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(a::split_csv("").empty());
    EXPECT_EQ(a::split_csv("one"), (std::vector<std::string>{"one"}));
}

// ---- Writer/Reader end-to-end ---------------------------------------------

TEST(AdiosIo, WriteReadWithLabelsAndAttributes) {
    fp::Fabric fabric;
    const a::GroupDef def = a::GroupDef::from_xml(kConfig);

    std::jthread writer_thread([&] {
        sb::mpi::run_ranks(2, [&](sb::mpi::Communicator& c) {
            a::Writer w(fabric, "adios.fp", def, c.rank(), c.size());
            for (std::uint64_t t = 0; t < 3; ++t) {
                w.begin_step();
                w.set_dimension("natoms", 6);
                w.set_dimension("nquant", 5);
                const u::Box box =
                    u::partition_along(u::NdShape{6, 5}, 0, c.rank(), c.size());
                std::vector<double> block(box.volume());
                for (std::size_t i = 0; i < block.size(); ++i) {
                    block[i] = static_cast<double>(box.offset[0] * 5 + i + t * 1000);
                }
                w.write<double>("atoms", block, box);
                w.write_attribute("step_parity", t % 2 == 0
                                                     ? std::vector<std::string>{"even"}
                                                     : std::vector<std::string>{"odd"});
                w.end_step();
            }
            w.close();
        });
    });

    a::Reader r(fabric, "adios.fp", 0, 1);
    std::uint64_t t = 0;
    while (r.begin_step()) {
        EXPECT_EQ(r.step(), t);
        const a::VarInfo info = r.inq_var("atoms");
        EXPECT_EQ(info.shape, (u::NdShape{6, 5}));
        EXPECT_EQ(info.dim_labels, (std::vector<std::string>{"natoms", "nquant"}));
        EXPECT_EQ(info.kind, a::DataKind::Float64);

        // Scalar dimension variables are published too.
        EXPECT_TRUE(r.has_var("natoms"));
        EXPECT_EQ(r.read_scalar<std::uint64_t>("natoms"), 6u);
        EXPECT_EQ(r.read_scalar<std::uint64_t>("nquant"), 5u);

        // Static group attribute rides on every step.
        EXPECT_EQ(r.attribute_strings("atoms.header.1"),
                  (std::vector<std::string>{"ID", "Type", "vx", "vy", "vz"}));
        // Per-step attribute.
        EXPECT_EQ(r.attribute_strings("step_parity"),
                  (std::vector<std::string>{t % 2 == 0 ? "even" : "odd"}));
        EXPECT_FALSE(r.attribute_strings("absent").has_value());
        EXPECT_FALSE(r.attribute_double("absent").has_value());

        const std::vector<double> all = r.read<double>("atoms", u::Box({0, 0}, {6, 5}));
        for (std::size_t i = 0; i < all.size(); ++i) {
            EXPECT_EQ(all[i], static_cast<double>(i + t * 1000));
        }
        const auto names = r.variable_names();
        EXPECT_EQ(names.size(), 3u);  // atoms, natoms, nquant
        r.end_step();
        ++t;
    }
    EXPECT_EQ(t, 3u);
}

TEST(AdiosWriter, LifecycleErrors) {
    fp::Fabric fabric;
    const a::GroupDef def = a::GroupDef::from_xml(kConfig);
    a::Writer w(fabric, "adios.errors", def, 0, 1);

    const std::vector<double> v(30);
    EXPECT_THROW(w.write<double>("atoms", v, u::Box({0, 0}, {6, 5})),
                 std::logic_error);  // outside a step
    EXPECT_THROW(w.set_dimension("natoms", 6), std::logic_error);
    EXPECT_THROW(w.end_step(), std::logic_error);

    w.begin_step();
    EXPECT_THROW(w.begin_step(), std::logic_error);  // already in a step
    EXPECT_THROW(w.set_dimension("atoms", 6), std::logic_error);   // not a scalar
    EXPECT_THROW(w.set_dimension("unknown", 6), std::logic_error);
    // Array write before its dimensions are set.
    EXPECT_THROW(w.write<double>("atoms", v, u::Box({0, 0}, {6, 5})),
                 std::logic_error);
    w.set_dimension("natoms", 6);
    EXPECT_THROW(w.set_dimension("natoms", 7), std::logic_error);  // conflict
    w.set_dimension("nquant", 5);
    EXPECT_THROW(w.write<double>("unknown", v, u::Box({0, 0}, {6, 5})),
                 std::logic_error);
    w.write<double>("atoms", v, u::Box({0, 0}, {6, 5}));
    w.end_step();
    w.close();
}

TEST(AdiosWriter, LiteralDimensionsResolve) {
    fp::Fabric fabric;
    a::GroupDef def;
    def.name = "g";
    def.vars.push_back(a::VarSpec{"fixed", a::DataKind::Float64, {"8", "3"}});

    std::jthread writer_thread([&] {
        a::Writer w(fabric, "adios.fixed", def, 0, 1);
        w.begin_step();
        std::vector<double> v(24, 1.0);
        w.write<double>("fixed", v, u::Box({0, 0}, {8, 3}));
        w.end_step();
        w.close();
    });

    a::Reader r(fabric, "adios.fixed", 0, 1);
    ASSERT_TRUE(r.begin_step());
    EXPECT_EQ(r.inq_var("fixed").shape, (u::NdShape{8, 3}));
    r.end_step();
    EXPECT_FALSE(r.begin_step());
}

TEST(AdiosReader, UnknownVariableThrows) {
    fp::Fabric fabric;
    std::jthread writer_thread([&] {
        a::GroupDef def;
        def.name = "g";
        def.vars.push_back(a::VarSpec{"x", a::DataKind::Float64, {"4"}});
        a::Writer w(fabric, "adios.unknown", def, 0, 1);
        w.begin_step();
        std::vector<double> v(4, 0.0);
        w.write<double>("x", v, u::Box({0}, {4}));
        w.end_step();
        w.close();
    });
    a::Reader r(fabric, "adios.unknown", 0, 1);
    ASSERT_TRUE(r.begin_step());
    EXPECT_THROW((void)r.inq_var("y"), std::runtime_error);
    r.end_step();
}
