// Tests for the Fig. 8 launch-script parser and workflow construction.
#include <gtest/gtest.h>

#include "core/launch_script.hpp"

namespace core = sb::core;
namespace u = sb::util;

TEST(LaunchScript, PaperFigure8) {
    const auto entries = core::parse_launch_script(
        "aprun -n 64 histogram velos.fp velocities 16 &\n"
        "aprun -n 256 magnitude lmpselect.fp lmpsel velos.fp velocities &\n"
        "aprun -n 256 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &\n"
        "aprun -n 1024 lammps < in.cracksm &\n"
        "wait\n");
    ASSERT_EQ(entries.size(), 4u);

    EXPECT_EQ(entries[0].nprocs, 64);
    EXPECT_EQ(entries[0].component, "histogram");
    EXPECT_EQ(entries[0].args,
              (std::vector<std::string>{"velos.fp", "velocities", "16"}));

    EXPECT_EQ(entries[1].nprocs, 256);
    EXPECT_EQ(entries[1].component, "magnitude");

    EXPECT_EQ(entries[2].args,
              (std::vector<std::string>{"dump.custom.fp", "atoms", "1",
                                        "lmpselect.fp", "lmpsel", "vx", "vy", "vz"}));

    // "< in.cracksm" folds into an argument for the simulation driver.
    EXPECT_EQ(entries[3].nprocs, 1024);
    EXPECT_EQ(entries[3].component, "lammps");
    EXPECT_EQ(entries[3].args, (std::vector<std::string>{"in.cracksm"}));
}

TEST(LaunchScript, CommentsAndBlankLines) {
    const auto entries = core::parse_launch_script(
        "# workflow for run 7\n"
        "\n"
        "mpirun -np 4 select a b 1 c d x  # trailing comment\n"
        "   \n");
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].nprocs, 4);
    EXPECT_EQ(entries[0].args,
              (std::vector<std::string>{"a", "b", "1", "c", "d", "x"}));
}

TEST(LaunchScript, BareComponentDefaultsToOneProc) {
    const auto entries = core::parse_launch_script("histogram h.fp vals 4\n");
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].nprocs, 1);
    EXPECT_EQ(entries[0].component, "histogram");
}

TEST(LaunchScript, GluedAmpersand) {
    const auto entries = core::parse_launch_script("aprun -n 2 lammps rows=8&\n");
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].args, (std::vector<std::string>{"rows=8"}));
}

TEST(LaunchScript, SrunAndMpiexecAccepted) {
    const auto entries = core::parse_launch_script(
        "srun -n 3 magnitude a b c d\nmpiexec -np 2 histogram x y 4\n");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].nprocs, 3);
    EXPECT_EQ(entries[1].nprocs, 2);
}

TEST(LaunchScript, Errors) {
    EXPECT_THROW((void)core::parse_launch_script("aprun histogram a b 4\n"),
                 u::ArgError);
    EXPECT_THROW((void)core::parse_launch_script("aprun -n zero histogram a b 4\n"),
                 u::ArgError);
    EXPECT_THROW((void)core::parse_launch_script("aprun -n -3 histogram a b 4\n"),
                 u::ArgError);
    EXPECT_THROW((void)core::parse_launch_script("aprun -n 4\n"), u::ArgError);
    EXPECT_THROW((void)core::parse_launch_script("aprun -n 4 lammps <\n"), u::ArgError);
}

TEST(LaunchScript, EmptyScriptParsesToNothing) {
    EXPECT_TRUE(core::parse_launch_script("").empty());
    EXPECT_TRUE(core::parse_launch_script("# only a comment\nwait\n").empty());
}

TEST(LaunchScript, BuildWorkflowResolvesComponents) {
    sb::flexpath::Fabric fabric;
    core::Workflow wf = core::build_workflow(
        fabric, "aprun -n 2 select a b 1 c d x\naprun -n 1 histogram c d 4\n");
    EXPECT_EQ(wf.size(), 2u);
    EXPECT_EQ(wf.total_procs(), 3);
    EXPECT_EQ(wf.describe(0), "select x2");
}

TEST(LaunchScript, BuildWorkflowRejectsUnknownComponent) {
    sb::flexpath::Fabric fabric;
    EXPECT_THROW((void)core::build_workflow(fabric, "aprun -n 2 frobnicate a b\n"),
                 std::runtime_error);
}
